"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.distances import (
    dist_dice,
    dist_jaccard,
    dist_scaled_dice,
    dist_scaled_hellinger,
)
from repro.core.signature import Signature
from repro.graph.comm_graph import CommGraph
from repro.perturb.edge_perturbation import delete_weight_units, insert_random_edges
from repro.streaming.countmin import CountMinSketch
from repro.streaming.fm import FlajoletMartin
from repro.streaming.spacesaving import SpaceSaving

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
node_labels = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=6
)

weights = st.floats(
    min_value=0.001, max_value=1000.0, allow_nan=False, allow_infinity=False
)

signature_entries = st.dictionaries(node_labels, weights, min_size=0, max_size=12)


def make_signature(owner, entries):
    entries = {node: weight for node, weight in entries.items() if node != owner}
    return Signature(owner, entries)


edge_lists = st.lists(
    st.tuples(node_labels, node_labels, st.integers(min_value=1, max_value=20)),
    min_size=1,
    max_size=40,
)


# ----------------------------------------------------------------------
# Signature invariants
# ----------------------------------------------------------------------
class TestSignatureProperties:
    @given(entries=signature_entries, k=st.integers(min_value=1, max_value=15))
    def test_from_relevance_length_bounded(self, entries, k):
        signature = Signature.from_relevance("owner", entries, k)
        assert len(signature) <= k
        assert "owner" not in signature

    @given(entries=signature_entries, k=st.integers(min_value=1, max_value=15))
    def test_from_relevance_keeps_heaviest(self, entries, k):
        signature = Signature.from_relevance("owner", entries, k)
        kept = signature.nodes
        dropped = {
            node
            for node in entries
            if node != "owner" and entries[node] > 0 and node not in kept
        }
        if kept and dropped:
            assert min(entries[node] for node in kept) >= max(
                entries[node] for node in dropped
            ) - 1e-12

    @given(entries=signature_entries)
    def test_entries_sorted_descending(self, entries):
        signature = make_signature("OWNER", entries)
        sig_weights = [weight for _node, weight in signature.entries]
        assert sig_weights == sorted(sig_weights, reverse=True)

    @given(entries=signature_entries)
    def test_normalized_sums_to_one(self, entries):
        signature = make_signature("OWNER", entries)
        assume(len(signature) > 0)
        total = sum(weight for _node, weight in signature.normalized())
        assert total == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Distance function invariants (the paper claims all lie in [0, 1])
# ----------------------------------------------------------------------
ALL_DISTANCES = [dist_jaccard, dist_dice, dist_scaled_dice, dist_scaled_hellinger]


class TestDistanceProperties:
    @given(a=signature_entries, b=signature_entries)
    def test_range_and_symmetry(self, a, b):
        first = make_signature("U", a)
        second = make_signature("V", b)
        for distance in ALL_DISTANCES:
            value = distance(first, second)
            assert 0.0 <= value <= 1.0 + 1e-12
            assert value == pytest.approx(distance(second, first))

    @given(a=signature_entries)
    def test_self_distance_zero(self, a):
        first = make_signature("U", a)
        second = make_signature("V", a)
        for distance in ALL_DISTANCES:
            assert distance(first, second) == pytest.approx(0.0)

    @given(a=signature_entries, b=signature_entries)
    def test_disjoint_supports_give_distance_one(self, a, b):
        a_prefixed = {f"a-{node}": weight for node, weight in a.items()}
        b_prefixed = {f"b-{node}": weight for node, weight in b.items()}
        assume(a_prefixed and b_prefixed)
        first = make_signature("U", a_prefixed)
        second = make_signature("V", b_prefixed)
        for distance in ALL_DISTANCES:
            assert distance(first, second) == pytest.approx(1.0)

    @given(a=signature_entries, b=signature_entries)
    def test_shel_at_most_sdice(self, a, b):
        """sqrt(xy) >= min(x, y) pointwise, so SHel <= SDice always."""
        first = make_signature("U", a)
        second = make_signature("V", b)
        assert dist_scaled_hellinger(first, second) <= dist_scaled_dice(
            first, second
        ) + 1e-12

    @given(a=signature_entries, b=signature_entries, scale=weights)
    def test_weighted_distances_scale_invariant(self, a, b, scale):
        """Scaling both signatures by one positive constant changes nothing."""
        first = make_signature("U", a)
        second = make_signature("V", b)
        first_scaled = make_signature(
            "U", {node: weight * scale for node, weight in a.items()}
        )
        second_scaled = make_signature(
            "V", {node: weight * scale for node, weight in b.items()}
        )
        for distance in ALL_DISTANCES:
            assert distance(first, second) == pytest.approx(
                distance(first_scaled, second_scaled), abs=1e-9
            )


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(edges=edge_lists)
    def test_total_weight_is_edge_sum(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        assert graph.total_weight == pytest.approx(sum(graph.edge_weights()))

    @given(edges=edge_lists)
    def test_in_out_degree_sums_match(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        out_total = sum(graph.out_degree(node) for node in graph.nodes())
        in_total = sum(graph.in_degree(node) for node in graph.nodes())
        assert out_total == in_total == graph.num_edges

    @given(edges=edge_lists)
    def test_copy_equals_original(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        assert graph.copy() == graph

    @given(edges=edge_lists)
    def test_transition_rows_stochastic(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        transition = graph.to_transition_csr()
        row_sums = np.asarray(transition.sum(axis=1)).ravel()
        for node, row_sum in zip(graph.nodes(), row_sums):
            if graph.out_degree(node):
                assert row_sum == pytest.approx(1.0)
            else:
                assert row_sum == 0.0


# ----------------------------------------------------------------------
# Perturbation invariants
# ----------------------------------------------------------------------
class TestPerturbationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        edges=edge_lists,
        count=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_deletion_reduces_weight_by_count(self, edges, count, seed):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        assume(graph.num_edges > 0)
        perturbed = delete_weight_units(graph, count, rng=seed)
        expected = max(0.0, graph.total_weight - min(count, graph.total_weight))
        assert perturbed.total_weight == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        edges=edge_lists,
        count=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_insertion_uses_pool_weights_and_is_bounded(self, edges, count, seed):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        assume(graph.num_edges > 0)
        nodes = graph.nodes()
        out_support = [n for n in nodes if graph.out_degree(n) > 0]
        in_support = [n for n in nodes if graph.in_degree(n) > 0]
        assume(not (len(out_support) == 1 and out_support == in_support))
        perturbed = insert_random_edges(graph, count, rng=seed)
        assert perturbed.num_edges <= graph.num_edges + count
        pool = set(graph.edge_weights())
        new_edges = {
            (s, d): w
            for s, d, w in perturbed.edges()
            if graph.weight(s, d) != w
        }
        assert all(weight in pool for weight in new_edges.values())


# ----------------------------------------------------------------------
# Sketch invariants
# ----------------------------------------------------------------------
count_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=5)),
    min_size=1,
    max_size=200,
)


class TestSketchProperties:
    @settings(max_examples=30, deadline=None)
    @given(stream=count_streams)
    def test_countmin_never_underestimates(self, stream):
        sketch = CountMinSketch(width=30, depth=3, seed=0)
        truth = {}
        for key_id, count in stream:
            key = f"key-{key_id}"
            sketch.update(key, count)
            truth[key] = truth.get(key, 0) + count
        for key, count in truth.items():
            assert sketch.estimate(key) >= count - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(stream=count_streams)
    def test_spacesaving_count_bounds(self, stream):
        counter = SpaceSaving(8)
        truth = {}
        for key_id, count in stream:
            key = f"key-{key_id}"
            counter.update(key, count)
            truth[key] = truth.get(key, 0) + count
        assert len(counter) <= 8
        for item, estimate, error in counter.items():
            assert estimate >= truth.get(item, 0) - 1e-9
            assert estimate - error <= truth.get(item, 0) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        items=st.sets(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300)
    )
    def test_fm_estimate_in_coarse_band(self, items):
        sketch = FlajoletMartin(num_registers=64, seed=0)
        for item in items:
            sketch.add(item)
        estimate = sketch.estimate()
        if not items:
            assert estimate == 0.0
        else:
            assert 0.4 * len(items) <= estimate <= 2.5 * len(items) + 2

    @settings(max_examples=20, deadline=None)
    @given(
        left=st.sets(st.integers(min_value=0, max_value=500), max_size=100),
        right=st.sets(st.integers(min_value=0, max_value=500), max_size=100),
    )
    def test_fm_merge_commutes(self, left, right):
        a = FlajoletMartin(num_registers=32, seed=1)
        b = FlajoletMartin(num_registers=32, seed=1)
        for item in left:
            a.add(item)
        for item in right:
            b.add(item)
        assert a.merge(b).estimate() == b.merge(a).estimate()


# ----------------------------------------------------------------------
# MinHash estimator property
# ----------------------------------------------------------------------
class TestMinHashProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        a=st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=40),
        b=st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=40),
    )
    def test_estimate_within_hoeffding_band(self, a, b):
        from repro.matching.minhash import MinHasher, estimate_jaccard_distance

        hasher = MinHasher(num_hashes=256, seed=0)
        truth = 1.0 - len(a & b) / len(a | b)
        estimate = estimate_jaccard_distance(hasher.sketch(a), hasher.sketch(b))
        # 256 draws: a 0.25 absolute band is ~16 sigma; failures indicate bugs.
        assert abs(estimate - truth) < 0.25
