"""Shared fixtures: small hand-built graphs and miniature datasets."""

from __future__ import annotations

import pytest

from repro.datasets.enterprise import EnterpriseFlowGenerator, EnterpriseParams
from repro.datasets.querylog import QueryLogGenerator, QueryLogParams
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph


@pytest.fixture
def triangle_graph() -> CommGraph:
    """Three nodes, weighted cycle plus one chord; handy exact-arithmetic case."""
    return CommGraph(
        [
            ("a", "b", 5.0),
            ("a", "c", 2.0),
            ("b", "c", 1.0),
            ("c", "a", 3.0),
        ]
    )


@pytest.fixture
def star_graph() -> CommGraph:
    """Hub 'h' talking to five spokes with distinct weights."""
    return CommGraph([("h", f"s{i}", float(i + 1)) for i in range(5)])


@pytest.fixture
def small_bipartite() -> BipartiteGraph:
    """Two left hosts sharing one destination, one private destination each."""
    return BipartiteGraph(
        [
            ("u1", "d-shared", 4.0),
            ("u1", "d-private1", 2.0),
            ("u2", "d-shared", 3.0),
            ("u2", "d-private2", 5.0),
        ]
    )


# ----------------------------------------------------------------------
# Miniature generated datasets (session-scoped: generation is deterministic
# but not free, and tests only read them).
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def tiny_enterprise():
    """A very small enterprise dataset with alias ground truth."""
    params = EnterpriseParams(
        num_hosts=40,
        num_external=400,
        num_services=8,
        num_windows=3,
        num_alias_users=5,
        seed=3,
    )
    return EnterpriseFlowGenerator(params).generate()


@pytest.fixture(scope="session")
def tiny_querylog():
    """A very small query-log dataset."""
    params = QueryLogParams(
        num_users=50,
        num_tables=80,
        num_windows=3,
        mean_queries=40.0,
        seed=5,
    )
    return QueryLogGenerator(params).generate()
