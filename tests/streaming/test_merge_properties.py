"""Property tests: merged per-bucket sketches == one sketch over the
concatenated stream.

This is the contract the sketch tier's window advance and the fleet-wide
shard combination both lean on: observing a stream bucket-by-bucket and
merging must be indistinguishable (exactly, where the structure allows;
within the published bounds otherwise) from observing the whole stream.
Weights are integer-valued so float addition order cannot blur the exact
comparisons.
"""

import numpy as np
import pytest

from repro.exceptions import StreamingError
from repro.streaming.countmin import CountMinSketch
from repro.streaming.fm import FlajoletMartin
from repro.streaming.spacesaving import SpaceSaving
from repro.streaming.stream_schemes import (
    StreamingTopTalkers,
    StreamingUnexpectedTalkers,
)


def random_stream(rng, length, num_sources=12, num_destinations=40):
    """Random (src, dst, weight) triples with integer weights (incl. a few
    self-loops and zero weights, which builders must treat consistently)."""
    stream = []
    for _ in range(length):
        src = f"s{rng.integers(0, num_sources)}"
        if rng.random() < 0.05:
            dst = src
        else:
            dst = f"d{rng.integers(0, num_destinations)}"
        weight = float(rng.integers(0, 6))
        stream.append((src, dst, weight))
    return stream


def split_buckets(stream, num_buckets, rng):
    cuts = sorted(rng.choice(len(stream), size=num_buckets - 1, replace=False))
    buckets, start = [], 0
    for cut in list(cuts) + [len(stream)]:
        buckets.append(stream[start:cut])
        start = cut
    return buckets


class TestCountMinMerge:
    @pytest.mark.parametrize("seed", range(5))
    def test_merged_equals_concatenated(self, seed):
        rng = np.random.default_rng(seed)
        stream = [
            (f"item-{rng.integers(0, 50)}", float(rng.integers(1, 10)))
            for _ in range(600)
        ]
        buckets = split_buckets(stream, 4, rng)
        whole = CountMinSketch(epsilon=0.01, delta=0.01, seed=3)
        for item, count in stream:
            whole.update(item, count)
        parts = []
        for bucket in buckets:
            sketch = CountMinSketch(epsilon=0.01, delta=0.01, seed=3)
            for item, count in bucket:
                sketch.update(item, count)
            parts.append(sketch)
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert merged.total == whole.total
        assert np.array_equal(merged._table, whole._table)
        for item in {item for item, _count in stream}:
            assert merged.estimate(item) == whole.estimate(item)

    def test_mismatched_shape_rejected(self):
        with pytest.raises(StreamingError):
            CountMinSketch(width=16, depth=4).merge(CountMinSketch(width=32, depth=4))

    def test_mismatched_seed_rejected(self):
        with pytest.raises(StreamingError):
            CountMinSketch(seed=0).merge(CountMinSketch(seed=1))


class TestFlajoletMartinMerge:
    @pytest.mark.parametrize("seed", range(5))
    def test_merged_equals_concatenated(self, seed):
        rng = np.random.default_rng(seed)
        items = [f"item-{rng.integers(0, 400)}" for _ in range(500)]
        buckets = split_buckets(items, 3, rng)
        whole = FlajoletMartin(num_registers=32, seed=7)
        for item in items:
            whole.add(item)
        parts = []
        for bucket in buckets:
            sketch = FlajoletMartin(num_registers=32, seed=7)
            for item in bucket:
                sketch.add(item)
            parts.append(sketch)
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert np.array_equal(merged._bitmaps, whole._bitmaps)
        assert merged.estimate() == whole.estimate()

    def test_mismatched_registers_rejected(self):
        with pytest.raises(StreamingError):
            FlajoletMartin(num_registers=16).merge(FlajoletMartin(num_registers=32))

    def test_mismatched_seed_rejected(self):
        with pytest.raises(StreamingError):
            FlajoletMartin(seed=0).merge(FlajoletMartin(seed=5))


class TestSpaceSavingMerge:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_when_no_evictions(self, seed):
        """With capacity above the distinct-item count neither side ever
        evicts, so the merge must equal counting the concatenated stream."""
        rng = np.random.default_rng(seed)
        stream = [
            (f"item-{rng.integers(0, 30)}", float(rng.integers(1, 8)))
            for _ in range(400)
        ]
        buckets = split_buckets(stream, 3, rng)
        whole = SpaceSaving(64)
        for item, count in stream:
            whole.update(item, count)
        merged = None
        for bucket in buckets:
            counter = SpaceSaving(64)
            for item, count in bucket:
                counter.update(item, count)
            merged = counter if merged is None else merged.merge(counter)
        assert merged.total == whole.total
        assert sorted(merged.items()) == sorted(whole.items())
        assert merged.top(10) == whole.top(10)

    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_survive_evictions(self, seed):
        """Under eviction pressure the merge stays a valid summary: counts
        never underestimate and count - error never overestimates."""
        rng = np.random.default_rng(100 + seed)
        truth = {}
        merged = None
        for _bucket in range(4):
            counter = SpaceSaving(8)
            for _ in range(300):
                if rng.random() < 0.6:
                    item = f"heavy-{rng.integers(0, 4)}"
                else:
                    item = f"light-{rng.integers(0, 120)}"
                counter.update(item)
                truth[item] = truth.get(item, 0) + 1
            merged = counter if merged is None else merged.merge(counter)
        assert len(merged) <= 8
        assert merged.total == sum(truth.values())
        for item, count, error in merged.items():
            assert count >= truth.get(item, 0)
            assert count - error <= truth.get(item, 0)

    def test_heavy_hitters_survive_merging(self):
        rng = np.random.default_rng(42)
        merged = None
        for _bucket in range(5):
            counter = SpaceSaving(16)
            for _ in range(1000):
                if rng.random() < 0.5:
                    counter.update(f"heavy-{rng.integers(0, 3)}")
                else:
                    counter.update(f"light-{rng.integers(0, 400)}")
            merged = counter if merged is None else merged.merge(counter)
        top = [item for item, _count in merged.top(3)]
        assert set(top) == {"heavy-0", "heavy-1", "heavy-2"}

    def test_mismatched_capacity_rejected(self):
        with pytest.raises(StreamingError):
            SpaceSaving(8).merge(SpaceSaving(16))


class TestBuilderMerge:
    @pytest.mark.parametrize("builder_cls", [StreamingTopTalkers, StreamingUnexpectedTalkers])
    @pytest.mark.parametrize("seed", range(3))
    def test_merged_signatures_equal_concatenated(self, builder_cls, seed):
        rng = np.random.default_rng(seed)
        stream = random_stream(rng, 800)
        buckets = split_buckets(stream, 4, rng)

        def build(records):
            builder = builder_cls(k=5, epsilon=0.01, candidate_capacity=80, seed=2)
            builder.observe_stream(records)
            return builder

        whole = build(stream)
        merged = None
        for bucket in buckets:
            part = build(bucket)
            merged = part if merged is None else merged.merge(part)
        assert sorted(merged.sources, key=str) == sorted(whole.sources, key=str)
        for node in whole.sources:
            assert merged.signature(node) == whole.signature(node)
        assert merged.memory_cells() == whole.memory_cells()

    def test_ut_merge_combines_in_degrees(self):
        left = StreamingUnexpectedTalkers(k=3, seed=0)
        right = StreamingUnexpectedTalkers(k=3, seed=0)
        left.observe("a", "hub", 1.0)
        left.observe("b", "hub", 1.0)
        right.observe("c", "hub", 1.0)
        right.observe("d", "hub", 1.0)
        merged = left.merge(right)
        whole = StreamingUnexpectedTalkers(k=3, seed=0)
        for src in ("a", "b", "c", "d"):
            whole.observe(src, "hub", 1.0)
        assert merged.estimated_in_degree("hub") == whole.estimated_in_degree("hub")

    def test_merge_does_not_alias_inputs(self):
        left = StreamingTopTalkers(k=3, seed=0)
        left.observe("a", "b", 2.0)
        right = StreamingTopTalkers(k=3, seed=0)
        merged = left.merge(right)
        before = merged.signature("a")
        left.observe("a", "b", 10.0)
        left.observe("a", "c", 4.0)
        assert merged.signature("a") == before
        assert merged.estimated_edge_weight("a", "b") == 2.0

    def test_mismatched_config_rejected(self):
        base = StreamingTopTalkers(k=5, seed=0)
        for other in (
            StreamingTopTalkers(k=6, seed=0),
            StreamingTopTalkers(k=5, seed=1),
            StreamingTopTalkers(k=5, epsilon=0.5, seed=0),
            StreamingTopTalkers(k=5, candidate_capacity=99, seed=0),
        ):
            with pytest.raises(StreamingError):
                base.merge(other)

    def test_type_mismatch_rejected(self):
        with pytest.raises(StreamingError):
            StreamingTopTalkers(k=5).merge(StreamingUnexpectedTalkers(k=5))
        with pytest.raises(StreamingError):
            StreamingUnexpectedTalkers(k=5).merge(StreamingTopTalkers(k=5))

    def test_ut_fm_registers_mismatch_rejected(self):
        with pytest.raises(StreamingError):
            StreamingUnexpectedTalkers(fm_registers=32).merge(
                StreamingUnexpectedTalkers(fm_registers=64)
            )
