"""Unit tests for the memory-budgeted sketch tier engine."""

import pytest

from repro import obs
from repro.core.scheme import create_scheme
from repro.exceptions import SchemeError, StreamingError
from repro.graph.comm_graph import CommGraph
from repro.streaming.tier import (
    DEFAULT_BUDGET_BYTES,
    SketchTierEngine,
    default_engine,
)


@pytest.fixture
def dataset():
    from repro.datasets.enterprise import EnterpriseFlowGenerator, EnterpriseParams

    return EnterpriseFlowGenerator(
        EnterpriseParams(
            num_hosts=80, num_external=1500, num_windows=2, num_alias_users=5, seed=5
        )
    ).generate()


def mean_topk_overlap(exact, approx, hosts):
    overlaps = [
        len(exact[h].nodes & approx[h].nodes) / len(exact[h].nodes)
        for h in hosts
        if exact[h].nodes
    ]
    return sum(overlaps) / len(overlaps)


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(StreamingError):
            SketchTierEngine(budget_bytes=0)

    def test_hot_fraction_range(self):
        with pytest.raises(StreamingError):
            SketchTierEngine(hot_fraction=1.5)

    def test_sketch_delta_range(self):
        with pytest.raises(StreamingError):
            SketchTierEngine(sketch_delta=0.0)

    def test_engine_with_serial_strategy_rejected(self, dataset):
        scheme = create_scheme("tt", k=5)
        with pytest.raises(SchemeError):
            scheme.compute_all(
                dataset.graphs[0],
                dataset.local_hosts,
                engine=SketchTierEngine(),
            )

    def test_unknown_strategy_names_sketch(self, dataset):
        scheme = create_scheme("tt", k=5)
        with pytest.raises(SchemeError, match="sketch"):
            scheme.compute_all(
                dataset.graphs[0], dataset.local_hosts, strategy="warp"
            )


class TestComputeBatch:
    def test_answers_every_target(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        engine = SketchTierEngine(budget_bytes=1 << 15)
        result = scheme.compute_all(graph, hosts, strategy="sketch", engine=engine)
        assert list(result) == list(hosts)
        assert all(result[h] is not None for h in hosts)
        stats = engine.last_stats
        assert stats["hot_nodes"] + stats["tail_nodes"] == len(hosts)
        assert stats["tail_nodes"] > 0  # budget tight enough to force a tail

    def test_hot_set_is_exact(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        engine = SketchTierEngine(budget_bytes=1 << 15)
        result = scheme.compute_all(graph, hosts, strategy="sketch", engine=engine)
        exact = scheme.compute_all(graph, hosts)
        # Hot nodes are the top out-volume sources; the heaviest source
        # must be among them and answered byte-identically.
        heaviest = max(hosts, key=graph.out_strength)
        assert result[heaviest] == exact[heaviest]

    def test_generous_budget_matches_exact(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        engine = SketchTierEngine(budget_bytes=1 << 22)
        result = scheme.compute_all(graph, hosts, strategy="sketch", engine=engine)
        exact = scheme.compute_all(graph, hosts)
        assert mean_topk_overlap(exact, result, hosts) == pytest.approx(1.0)

    def test_accuracy_degrades_gracefully_with_budget(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        exact = scheme.compute_all(graph, hosts)
        overlaps = []
        for budget in (1 << 13, 1 << 22):
            engine = SketchTierEngine(budget_bytes=budget)
            approx = scheme.compute_all(
                graph, hosts, strategy="sketch", engine=engine
            )
            overlaps.append(mean_topk_overlap(exact, approx, hosts))
        assert overlaps[0] <= overlaps[1]
        assert overlaps[0] > 0.5  # even a starved tier stays useful

    def test_one_fat_node_does_not_starve_the_hot_set(self):
        """Regression: hot selection is a greedy knapsack, not a scan that
        stops at the first candidate that does not fit.  A scanner-style
        source (huge volume, one-off destinations) outranks everything by
        volume but costs more than the whole hot budget; it must be
        *skipped* so the cheap repeat-talker hosts still fill the hot set
        and get exact answers."""
        graph = CommGraph()
        for i in range(400):
            graph.add_edge("scan", f"probe-{i}", 1.0)
        cheap = [f"cheap-{i}" for i in range(30)]
        for host in cheap:
            for j in range(4):
                graph.add_edge(host, f"svc-{j}", 20.0)
        scheme = create_scheme("tt", k=3)
        engine = SketchTierEngine(budget_bytes=8192, hot_fraction=0.5)
        result = scheme.compute_all(
            graph, ["scan", *cheap], strategy="sketch", engine=engine
        )
        # Budget 4096 < the scanner's 400 * 16 adjacency; every cheap
        # host (64 bytes each) fits behind it.
        assert engine.last_stats["hot_nodes"] == len(cheap)
        exact = scheme.compute_all(graph, cheap)
        assert all(result[host] == exact[host] for host in cheap)

    def test_ut_counts_hot_sources_in_tail_in_degrees(self):
        """A tail owner's candidate popularity must include hot traffic:
        |I(j)| counts every source, not just tail ones."""
        graph = CommGraph()
        # "big" is hot by volume; it also inflates hub's in-degree.
        graph.add_edge("big", "hub", 500.0)
        for i in range(4):
            graph.add_edge(f"filler-{i}", "hub", 1.0)
        # "small" (tail) talks to hub and to an obscure destination.
        graph.add_edge("small", "hub", 3.0)
        graph.add_edge("small", "obscure", 3.0)
        scheme = create_scheme("ut", k=1)
        engine = SketchTierEngine(budget_bytes=4096, hot_fraction=0.2)
        result = scheme.compute_all(
            graph, ["big", "small"], strategy="sketch", engine=engine
        )
        exact = scheme.compute_all(graph, ["big", "small"])
        # Exact: obscure (3/1) beats hub (3/6) for "small"; the sketch
        # must agree even when some of hub's sources are hot or untargeted.
        assert exact["small"].nodes == {"obscure"}
        assert result["small"].nodes == {"obscure"}

    def test_unsketchable_scheme_falls_back_to_exact(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("rwr", k=5, max_hops=2)
        engine = SketchTierEngine(budget_bytes=1 << 14)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = scheme.compute_all(
                graph, hosts[:6], strategy="sketch", engine=engine
            )
        exact = scheme.compute_all(graph, hosts[:6])
        assert result == exact
        assert registry.counter_total("sketch.fallback") == 1.0

    def test_sketch_strategy_bypasses_incremental_reuse(self, dataset):
        """delta/previous reuse is a byte-identity feature; under the
        accuracy contract the batch is recomputed whole."""
        from repro.graph.delta import WindowDelta

        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        engine = SketchTierEngine(budget_bytes=1 << 15)
        plain = scheme.compute_all(graph, hosts, strategy="sketch", engine=engine)
        # Poisoned previous: if reuse happened, these would leak through.
        from repro.core.signature import Signature

        poisoned = {h: Signature(h, {"bogus": 1.0}) for h in hosts}
        empty_delta = WindowDelta.from_graphs(graph, graph)
        with_delta = scheme.compute_all(
            graph,
            hosts,
            delta=empty_delta,
            previous=poisoned,
            strategy="sketch",
            engine=engine,
        )
        assert with_delta == plain

    def test_obs_metrics_recorded(self, dataset):
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        engine = SketchTierEngine(budget_bytes=1 << 15)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            scheme.compute_all(graph, hosts, strategy="sketch", engine=engine)
        assert registry.counter_total("sketch.hot_nodes") == engine.last_stats[
            "hot_nodes"
        ]
        assert registry.counter_total("sketch.tail_nodes") == engine.last_stats[
            "tail_nodes"
        ]
        gauges = {name: value for name, _labels, value in registry.snapshot()["gauges"]}
        assert gauges["sketch.bytes_budgeted"] == 1 << 15
        assert gauges["sketch.bytes_used"] == engine.last_stats["bytes_used"]

    def test_budget_bounds_tail_state(self, dataset):
        """The whole point: tier state tracks the budget, not the universe."""
        graph, hosts = dataset.graphs[0], dataset.local_hosts
        scheme = create_scheme("tt", k=10)
        small = SketchTierEngine(budget_bytes=1 << 15)
        large = SketchTierEngine(budget_bytes=1 << 19)
        scheme.compute_all(graph, hosts, strategy="sketch", engine=small)
        small_used = small.last_stats["bytes_used"]
        scheme.compute_all(graph, hosts, strategy="sketch", engine=large)
        large_used = large.last_stats["bytes_used"]
        assert small_used < large_used
        assert small_used <= (1 << 15) * 2  # floors may overshoot, boundedly


class TestDefaultEngine:
    def test_shared_until_budget_changes(self):
        first = default_engine()
        assert first is default_engine()
        assert first.budget_bytes == DEFAULT_BUDGET_BYTES
        other = default_engine(budget_bytes=1 << 16)
        assert other is not first
        assert other.budget_bytes == 1 << 16
        # Restore the module default for other tests.
        assert default_engine(DEFAULT_BUDGET_BYTES).budget_bytes == DEFAULT_BUDGET_BYTES
