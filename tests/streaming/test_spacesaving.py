"""Unit tests for the SpaceSaving heavy-hitter counter."""

import numpy as np
import pytest

from repro.exceptions import StreamingError
from repro.streaming.spacesaving import SpaceSaving


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(StreamingError):
            SpaceSaving(0)

    def test_exact_below_capacity(self):
        counter = SpaceSaving(10)
        for i in range(5):
            for _ in range(i + 1):
                counter.update(f"key-{i}")
        for i in range(5):
            assert counter.estimate(f"key-{i}") == i + 1
            assert counter.guaranteed_count(f"key-{i}") == i + 1

    def test_untracked_key_estimates_zero(self):
        counter = SpaceSaving(2)
        counter.update("a")
        assert counter.estimate("missing") == 0.0
        assert counter.guaranteed_count("missing") == 0.0

    def test_len_and_contains(self):
        counter = SpaceSaving(5)
        counter.update("a")
        counter.update("b", 2)
        assert len(counter) == 2
        assert "a" in counter and "c" not in counter

    def test_zero_update_noop(self):
        counter = SpaceSaving(5)
        counter.update("a", 0.0)
        assert len(counter) == 0

    def test_negative_update_rejected(self):
        with pytest.raises(StreamingError):
            SpaceSaving(5).update("a", -1.0)


class TestEvictionGuarantees:
    def test_size_never_exceeds_capacity(self):
        counter = SpaceSaving(8)
        rng = np.random.default_rng(0)
        for _ in range(1000):
            counter.update(f"key-{rng.integers(0, 100)}")
        assert len(counter) <= 8

    def test_never_underestimates(self):
        counter = SpaceSaving(16)
        truth = {}
        rng = np.random.default_rng(1)
        # Skewed stream: a few heavy keys, many light ones.
        for _ in range(3000):
            if rng.random() < 0.6:
                key = f"heavy-{rng.integers(0, 4)}"
            else:
                key = f"light-{rng.integers(0, 300)}"
            counter.update(key)
            truth[key] = truth.get(key, 0) + 1
        for item, count, error in counter.items():
            assert count >= truth.get(item, 0)
            assert count - error <= truth.get(item, 0)

    def test_heavy_hitters_retained(self):
        counter = SpaceSaving(16)
        rng = np.random.default_rng(2)
        for _ in range(5000):
            if rng.random() < 0.5:
                counter.update(f"heavy-{rng.integers(0, 3)}")
            else:
                counter.update(f"light-{rng.integers(0, 500)}")
        top = [item for item, _count in counter.top(3)]
        assert set(top) == {"heavy-0", "heavy-1", "heavy-2"}

    def test_frequency_guarantee(self):
        """Any item with true count > total/capacity must be tracked."""
        capacity = 10
        counter = SpaceSaving(capacity)
        truth = {}
        rng = np.random.default_rng(3)
        for _ in range(2000):
            key = f"key-{int(rng.zipf(1.5)) % 50}"
            counter.update(key)
            truth[key] = truth.get(key, 0) + 1
        threshold = counter.total / capacity
        for key, count in truth.items():
            if count > threshold:
                assert key in counter, (key, count, threshold)


class TestHeapCompaction:
    def test_heap_stays_bounded_on_long_skewed_stream(self):
        """Regression: every update pushes a fresh heap tuple and stale ones
        were only discarded during eviction, so a long stream of updates to
        already-tracked items grew the heap linearly — unbounded memory in a
        structure whose whole point is a capacity bound."""
        capacity = 16
        counter = SpaceSaving(capacity)
        rng = np.random.default_rng(11)
        # Skewed stream dominated by repeat hits on the tracked set: almost
        # every update re-pushes an existing entry without triggering an
        # eviction (the only place stale tuples used to be dropped).
        for step in range(20000):
            if rng.random() < 0.97:
                counter.update(f"heavy-{rng.integers(0, capacity // 2)}")
            else:
                counter.update(f"light-{step}")
        assert len(counter._heap) <= 2 * capacity

    def test_compaction_preserves_guarantees(self):
        """Compaction must not disturb the SpaceSaving invariants: counts
        never underestimate, count - error never overestimates, and the
        eviction path keeps finding the true minimum entry."""
        capacity = 8
        counter = SpaceSaving(capacity)
        truth = {}
        rng = np.random.default_rng(12)
        for step in range(5000):
            if rng.random() < 0.9:
                item, count = f"heavy-{rng.integers(0, 4)}", float(1 + step % 3)
            else:
                item, count = f"light-{rng.integers(0, 200)}", 1.0
            counter.update(item, count)
            truth[item] = truth.get(item, 0.0) + count
        assert len(counter) <= capacity
        minimum = min(count for _item, count, _error in counter.items())
        for item, count, error in counter.items():
            assert count >= truth.get(item, 0.0)
            assert count - error <= truth.get(item, 0.0)
        # The eviction path must still find the true minimum entry.
        counter.update("brand-new-item", 1.0)
        assert counter.estimate("brand-new-item") == minimum + 1.0


class TestTop:
    def test_top_ordering(self):
        counter = SpaceSaving(10)
        counter.update("a", 5)
        counter.update("b", 10)
        counter.update("c", 1)
        assert [item for item, _count in counter.top(3)] == ["b", "a", "c"]

    def test_top_k_validation(self):
        with pytest.raises(StreamingError):
            SpaceSaving(5).top(0)

    def test_memory_cells(self):
        assert SpaceSaving(7).memory_cells() == 7
