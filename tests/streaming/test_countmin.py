"""Unit tests for the Count-Min sketch."""

import numpy as np
import pytest

from repro.exceptions import StreamingError
from repro.streaming.countmin import CountMinSketch


class TestSizing:
    def test_from_guarantees(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        assert sketch.width >= np.e / 0.01 - 1
        assert sketch.depth >= np.log(1 / 0.01) - 1

    def test_explicit_dimensions(self):
        sketch = CountMinSketch(width=100, depth=4)
        assert sketch.width == 100
        assert sketch.depth == 4
        assert sketch.memory_cells() == 400

    def test_partial_dimensions_rejected(self):
        with pytest.raises(StreamingError):
            CountMinSketch(width=100)

    @pytest.mark.parametrize("kwargs", [
        {"epsilon": 0.0}, {"epsilon": 1.0}, {"delta": 0.0},
        {"width": 0, "depth": 4},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(StreamingError):
            CountMinSketch(**kwargs)


class TestEstimates:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=50, depth=4)
        truth = {}
        rng = np.random.default_rng(0)
        for _ in range(2000):
            key = f"key-{rng.integers(0, 200)}"
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_error_within_bound(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        truth = {}
        rng = np.random.default_rng(1)
        for _ in range(5000):
            key = f"key-{rng.integers(0, 500)}"
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        bound = sketch.error_bound()
        violations = sum(
            1 for key, count in truth.items() if sketch.estimate(key) > count + bound
        )
        # Guarantee holds per-query with prob 1-delta; allow slack.
        assert violations <= 0.05 * len(truth)

    def test_unseen_key_can_be_zero(self):
        sketch = CountMinSketch(width=1000, depth=4)
        sketch.update("only-key", 5)
        assert sketch.estimate("some-other-key") <= 5

    def test_weighted_updates(self):
        sketch = CountMinSketch(width=100, depth=4)
        sketch.update("k", 2.5)
        sketch.update("k", 0.5)
        assert sketch.estimate("k") >= 3.0
        assert sketch.total == pytest.approx(3.0)

    def test_zero_update_noop(self):
        sketch = CountMinSketch(width=10, depth=2)
        sketch.update("k", 0.0)
        assert sketch.total == 0.0

    def test_negative_update_rejected(self):
        sketch = CountMinSketch(width=10, depth=2)
        with pytest.raises(StreamingError):
            sketch.update("k", -1.0)


class TestMerge:
    def test_merge_equals_combined_stream(self):
        left = CountMinSketch(width=50, depth=4, seed=9)
        right = CountMinSketch(width=50, depth=4, seed=9)
        combined = CountMinSketch(width=50, depth=4, seed=9)
        for i in range(100):
            left.update(f"a-{i % 10}")
            combined.update(f"a-{i % 10}")
        for i in range(100):
            right.update(f"b-{i % 7}")
            combined.update(f"b-{i % 7}")
        merged = left.merge(right)
        for key in [f"a-{i}" for i in range(10)] + [f"b-{i}" for i in range(7)]:
            assert merged.estimate(key) == combined.estimate(key)
        assert merged.total == combined.total

    def test_merge_requires_same_configuration(self):
        with pytest.raises(StreamingError):
            CountMinSketch(width=50, depth=4).merge(CountMinSketch(width=60, depth=4))
        with pytest.raises(StreamingError):
            CountMinSketch(width=50, depth=4, seed=1).merge(
                CountMinSketch(width=50, depth=4, seed=2)
            )

    def test_repr(self):
        sketch = CountMinSketch(width=10, depth=2)
        assert "CountMinSketch" in repr(sketch)
