"""Unit tests for the deterministic hash utilities."""

import pytest

from repro.exceptions import StreamingError
from repro.streaming.hashing import MERSENNE_61, HashFamily, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("alice") == stable_hash64("alice")

    def test_distinct_items_distinct_hashes(self):
        values = {stable_hash64(f"item-{i}") for i in range(1000)}
        assert len(values) == 1000

    def test_type_qualified(self):
        assert stable_hash64("1") != stable_hash64(1)

    def test_64_bit_range(self):
        value = stable_hash64("anything")
        assert 0 <= value < 2**64


class TestHashFamily:
    def test_output_range_respected(self):
        family = HashFamily(4, output_range=100, seed=0)
        for index in range(4):
            for item in ("a", "b", 12345):
                assert 0 <= family.hash_item(index, item) < 100

    def test_members_differ(self):
        family = HashFamily(8, output_range=1_000_000, seed=0)
        outputs = {family.hash_item(i, "same-item") for i in range(8)}
        assert len(outputs) > 1

    def test_seed_determinism(self):
        first = HashFamily(4, 1000, seed=7)
        second = HashFamily(4, 1000, seed=7)
        assert first.hash_all("x") == second.hash_all("x")
        third = HashFamily(4, 1000, seed=8)
        assert first.hash_all("x") != third.hash_all("x")

    def test_hash_all_matches_individual(self):
        family = HashFamily(5, 777, seed=1)
        assert family.hash_all("item") == [
            family.hash_item(i, "item") for i in range(5)
        ]

    def test_roughly_uniform(self):
        family = HashFamily(1, output_range=10, seed=3)
        buckets = [0] * 10
        for i in range(5000):
            buckets[family.hash_item(0, f"key-{i}")] += 1
        assert min(buckets) > 300  # each bucket near 500

    def test_invalid_parameters(self):
        with pytest.raises(StreamingError):
            HashFamily(0, 10)
        with pytest.raises(StreamingError):
            HashFamily(1, 0)
        family = HashFamily(2, 10)
        with pytest.raises(StreamingError):
            family.hash_value(5, 1)

    def test_modulus_is_mersenne_prime(self):
        assert MERSENNE_61 == 2**61 - 1
