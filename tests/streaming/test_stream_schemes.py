"""Unit and integration tests for the semi-streaming signature builders."""

import pytest

from repro.core.distances import dist_jaccard
from repro.core.scheme import create_scheme
from repro.exceptions import StreamingError
from repro.streaming.stream_schemes import (
    StreamingTopTalkers,
    StreamingUnexpectedTalkers,
)


class TestParameters:
    def test_invalid_k(self):
        with pytest.raises(StreamingError):
            StreamingTopTalkers(k=0)

    def test_capacity_below_k_rejected(self):
        with pytest.raises(StreamingError):
            StreamingTopTalkers(k=10, candidate_capacity=5)

    def test_invalid_fm_registers(self):
        with pytest.raises(StreamingError):
            StreamingUnexpectedTalkers(fm_registers=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(StreamingError):
            StreamingTopTalkers().observe("a", "b", -1.0)


class TestStreamingTopTalkers:
    def test_unknown_source_empty_signature(self):
        builder = StreamingTopTalkers(k=3)
        assert len(builder.signature("ghost")) == 0

    def test_self_loops_and_zero_weights_skipped(self):
        builder = StreamingTopTalkers(k=3)
        builder.observe("a", "a", 5.0)
        builder.observe("a", "b", 0.0)
        assert builder.sources == ()

    def test_matches_exact_on_small_graph(self, triangle_graph):
        builder = StreamingTopTalkers(k=3, epsilon=0.001)
        builder.observe_stream(triangle_graph.edges())
        exact = create_scheme("tt", k=3)
        for node in triangle_graph.nodes():
            streamed = builder.signature(node)
            reference = exact.compute(triangle_graph, node)
            assert streamed.nodes == reference.nodes
            for member in reference.nodes:
                assert streamed.weight(member) == pytest.approx(
                    reference.weight(member)
                )

    def test_matches_exact_on_generated_window(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        builder = StreamingTopTalkers(k=10, epsilon=0.002)
        builder.observe_stream(graph.edges())
        exact = create_scheme("tt", k=10).compute_all(
            graph, tiny_enterprise.local_hosts
        )
        distances = [
            dist_jaccard(builder.signature(host), exact[host])
            for host in tiny_enterprise.local_hosts
        ]
        assert sum(distances) / len(distances) < 0.05

    def test_estimated_edge_weight_overestimates(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        builder = StreamingTopTalkers(k=10, epsilon=0.01)
        builder.observe_stream(graph.edges())
        host = tiny_enterprise.local_hosts[0]
        for destination, weight in graph.out_neighbors(host).items():
            assert builder.estimated_edge_weight(host, destination) >= weight

    def test_memory_grows_with_sources_not_stream_length(self):
        builder = StreamingTopTalkers(k=5, epsilon=0.01)
        for _ in range(50):
            builder.observe("src", "dst", 1.0)
        cells_one_source = builder.memory_cells()
        for _ in range(5000):
            builder.observe("src", "dst2", 1.0)
        assert builder.memory_cells() == cells_one_source


class TestStreamingUnexpectedTalkers:
    def test_indegree_estimation(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        builder = StreamingUnexpectedTalkers(k=10)
        builder.observe_stream(graph.edges())
        # Spot-check a popular service node's in-degree estimate.
        services = [n for n in graph.right_nodes if str(n).startswith("svc-")]
        busiest = max(services, key=graph.in_degree)
        true_degree = graph.in_degree(busiest)
        assert builder.estimated_in_degree(busiest) == pytest.approx(
            true_degree, rel=0.5
        )

    def test_unseen_destination_zero_degree(self):
        builder = StreamingUnexpectedTalkers()
        assert builder.estimated_in_degree("never-seen") == 0.0

    def test_close_to_exact_ut(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        builder = StreamingUnexpectedTalkers(k=10, epsilon=0.002)
        builder.observe_stream(graph.edges())
        exact = create_scheme("ut", k=10).compute_all(
            graph, tiny_enterprise.local_hosts
        )
        distances = [
            dist_jaccard(builder.signature(host), exact[host])
            for host in tiny_enterprise.local_hosts
        ]
        assert sum(distances) / len(distances) < 0.25

    def test_signature_prefers_novel_destinations(self):
        builder = StreamingUnexpectedTalkers(k=1)
        # hub: contacted by many; obscure: only by v, same volume from v.
        for source in ("x1", "x2", "x3", "x4", "x5"):
            builder.observe(source, "hub", 1.0)
        builder.observe("v", "hub", 6.0)
        builder.observe("v", "obscure", 6.0)
        assert builder.signature("v").nodes == {"obscure"}

    def test_memory_includes_indegree_sketches(self):
        ut_builder = StreamingUnexpectedTalkers(k=5)
        tt_builder = StreamingTopTalkers(k=5)
        for src, dst in (("a", "b"), ("a", "c"), ("b", "c")):
            ut_builder.observe(src, dst)
            tt_builder.observe(src, dst)
        assert ut_builder.memory_cells() > tt_builder.memory_cells()


class TestSelfLoopParity:
    """Filtering parity between the streaming builders and the exact schemes.

    Exact TT/UT exclude the self-loop from the numerator (Definition 1),
    but exact ``CommGraph.in_degree`` counts a self-loop source — so the
    streaming UT in-degree sketch must too, or exact-vs-sketch accuracy
    gates get skewed by filtering differences rather than sketch error.
    """

    def edges(self):
        return [
            ("i", "x", 5.0),
            ("i", "y", 6.0),
            ("z", "x", 1.0),
            ("z", "y", 1.0),
            ("y", "y", 1.0),
        ]

    def exact_graph(self):
        from repro.graph.comm_graph import CommGraph

        graph = CommGraph()
        for src, dst, weight in self.edges():
            graph.add_edge(src, dst, weight)
        return graph

    def test_self_loop_counts_toward_streaming_in_degree(self):
        """Regression: the streaming UT builder dropped ``src == dst``
        before the FM add, so a destination's self-loop never reached its
        in-degree estimate while exact ``in_degree`` counts it."""
        graph = self.exact_graph()
        assert graph.in_degree("y") == 3  # {i, z, y} — self-loop included
        builder = StreamingUnexpectedTalkers(k=2, epsilon=0.001)
        builder.observe_stream(graph.edges())
        assert builder.estimated_in_degree("y") == pytest.approx(
            graph.in_degree("y"), rel=0.2
        )

    def test_streamed_ranking_matches_exact(self):
        """Exact: |I(x)| = 2, |I(y)| = 3, so x (5/2) outranks y (6/3) for
        owner i.  Pre-fix the sketch saw |I(y)| ~= 2 and inverted the order."""
        graph = self.exact_graph()
        exact = create_scheme("ut", k=2).compute(graph, "i")
        assert exact.weight("x") > exact.weight("y")
        builder = StreamingUnexpectedTalkers(k=2, epsilon=0.001)
        builder.observe_stream(graph.edges())
        streamed = builder.signature("i")
        assert streamed.nodes == exact.nodes
        assert streamed.weight("x") > streamed.weight("y")

    def test_self_loop_still_excluded_from_numerator(self):
        builder = StreamingUnexpectedTalkers(k=3)
        builder.observe("a", "a", 5.0)
        assert builder.sources == ()  # no TT state from a pure self-loop
        builder.observe("a", "b", 1.0)
        assert "a" not in builder.signature("a").nodes

    def test_zero_weight_parity(self):
        """Zero-weight records materialise endpoints in the exact graph but
        contribute no edge and no in-neighbour entry; the streaming side
        drops them entirely — both yield empty signatures."""
        from repro.graph.comm_graph import CommGraph

        graph = CommGraph()
        graph.add_edge("a", "b", 0.0)
        exact = create_scheme("ut", k=3).compute(graph, "a")
        builder = StreamingUnexpectedTalkers(k=3)
        builder.observe("a", "b", 0.0)
        assert len(exact) == 0
        assert len(builder.signature("a")) == 0
        assert builder.estimated_in_degree("b") == 0.0


class TestObserveRecords:
    def test_records_match_triple_stream(self):
        from repro.graph.stream import EdgeRecord

        triples = [("a", "b", 2.0), ("a", "c", 1.0), ("b", "c", 3.0)]
        records = [
            EdgeRecord(time=0.0, src=s, dst=d, weight=w) for s, d, w in triples
        ]
        via_stream = StreamingTopTalkers(k=5, seed=1)
        via_stream.observe_stream(triples)
        via_records = StreamingTopTalkers(k=5, seed=1)
        via_records.observe_records(records)
        for node in ("a", "b"):
            assert via_stream.signature(node) == via_records.signature(node)
