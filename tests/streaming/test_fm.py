"""Unit tests for the Flajolet-Martin distinct counter."""

import pytest

from repro.exceptions import StreamingError
from repro.streaming.fm import FlajoletMartin


class TestBasics:
    def test_empty_estimate_zero(self):
        assert FlajoletMartin().estimate() == 0.0

    def test_duplicates_do_not_inflate(self):
        sketch = FlajoletMartin(num_registers=64, seed=0)
        for _ in range(100):
            sketch.add("same-item")
        assert sketch.estimate() == pytest.approx(1.0, abs=0.5)

    def test_invalid_registers(self):
        with pytest.raises(StreamingError):
            FlajoletMartin(num_registers=0)

    def test_repr(self):
        assert "FlajoletMartin" in repr(FlajoletMartin())


class TestAccuracy:
    @pytest.mark.parametrize("true_count", [1, 5, 20, 100, 1000])
    def test_relative_error_reasonable(self, true_count):
        sketch = FlajoletMartin(num_registers=64, seed=0)
        for i in range(true_count):
            sketch.add(f"item-{i}")
        estimate = sketch.estimate()
        assert 0.5 * true_count <= estimate <= 2.0 * true_count, (
            true_count,
            estimate,
        )

    def test_small_range_uses_linear_counting(self):
        """In-degree-scale cardinalities (1-20) must be near-exact, since
        the streaming UT signature divides by these estimates."""
        for true_count in range(1, 21):
            sketch = FlajoletMartin(num_registers=64, seed=3)
            for i in range(true_count):
                sketch.add(f"src-{i}")
            assert sketch.estimate() == pytest.approx(true_count, rel=0.35, abs=1.0)

    def test_monotone_in_cardinality_on_average(self):
        estimates = []
        for true_count in (10, 100, 1000):
            sketch = FlajoletMartin(num_registers=64, seed=1)
            for i in range(true_count):
                sketch.add(f"x-{i}")
            estimates.append(sketch.estimate())
        assert estimates[0] < estimates[1] < estimates[2]


class TestMerge:
    def test_merge_estimates_union(self):
        left = FlajoletMartin(num_registers=64, seed=5)
        right = FlajoletMartin(num_registers=64, seed=5)
        for i in range(100):
            left.add(f"l-{i}")
        for i in range(100):
            right.add(f"r-{i}")
        # 50 items shared between streams.
        for i in range(50):
            left.add(f"shared-{i}")
            right.add(f"shared-{i}")
        merged = left.merge(right)
        assert 125 <= merged.estimate() <= 500  # union is 250

    def test_merge_idempotent_on_same_stream(self):
        left = FlajoletMartin(num_registers=32, seed=2)
        for i in range(200):
            left.add(f"x-{i}")
        merged = left.merge(left)
        assert merged.estimate() == left.estimate()

    def test_merge_requires_same_configuration(self):
        with pytest.raises(StreamingError):
            FlajoletMartin(num_registers=32).merge(FlajoletMartin(num_registers=64))
        with pytest.raises(StreamingError):
            FlajoletMartin(seed=1).merge(FlajoletMartin(seed=2))

    def test_memory_cells(self):
        assert FlajoletMartin(num_registers=16).memory_cells() == 16
