"""Unit and integration tests for sequence monitoring and lag persistence."""

import numpy as np
import pytest

from repro.apps.monitor import SequenceMonitor, persistence_by_lag
from repro.core.distances import dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError
from repro.graph.windows import GraphSequence


@pytest.fixture
def monitor():
    # The miniature dataset has a wide persistence spread, so the tests use
    # the absolute-threshold mode: a complete behaviour break scores ~0.
    return SequenceMonitor(
        create_scheme("tt", k=10), dist_scaled_hellinger, threshold=0.05
    )


def replace_behaviour(graph, node, seed=0):
    rng = np.random.default_rng(seed)
    modified = graph.copy()
    for destination in list(modified.out_neighbors(node)):
        modified.remove_edge(node, destination)
    # Seed-qualified destination names: repeated breaks of the same node
    # produce genuinely different behaviours each time.
    for index in range(25):
        modified.add_edge(node, f"strange-{seed}-{index}", float(rng.integers(1, 6)))
    return modified


class TestSequenceMonitor:
    def test_report_per_transition(self, monitor, tiny_enterprise):
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        assert len(result.reports) == len(tiny_enterprise.graphs) - 1
        for node, series in result.trajectories.items():
            assert len(series) == len(result.reports)
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_needs_two_windows(self, monitor, tiny_enterprise):
        single = GraphSequence(graphs=[tiny_enterprise.graphs[0]])
        with pytest.raises(ExperimentError):
            monitor.run(single)

    def test_default_population_common_nodes(self, monitor, tiny_enterprise):
        result = monitor.run(tiny_enterprise.graphs)
        assert set(tiny_enterprise.local_hosts) <= set(result.trajectories)

    def test_injected_break_is_flagged_in_right_transition(
        self, monitor, tiny_enterprise
    ):
        victim = tiny_enterprise.local_hosts[2]
        graphs = list(tiny_enterprise.graphs)
        graphs[2] = replace_behaviour(graphs[2], victim, seed=6)
        result = monitor.run(
            GraphSequence(graphs=graphs), population=tiny_enterprise.local_hosts
        )
        assert result.first_flag_window(victim) == 1  # transition 1 -> 2
        assert result.flag_counts[victim] >= 1

    def test_first_flag_none_for_quiet_node(self, monitor, tiny_enterprise):
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        quiet = [
            node
            for node, count in result.flag_counts.items()
            if count == 0
        ]
        assert quiet  # most hosts behave
        assert result.first_flag_window(quiet[0]) is None

    def test_chronic_offenders(self, monitor, tiny_enterprise):
        victim = tiny_enterprise.local_hosts[4]
        graphs = list(tiny_enterprise.graphs)
        # Break the victim in every window after the first: each transition
        # sees a different random behaviour.
        graphs[1] = replace_behaviour(graphs[1], victim, seed=10)
        graphs[2] = replace_behaviour(graphs[2], victim, seed=11)
        result = monitor.run(
            GraphSequence(graphs=graphs), population=tiny_enterprise.local_hosts
        )
        assert victim in result.chronic_offenders(min_flags=2)


class TestPersistenceByLag:
    def test_lag_keys_and_range(self, tiny_enterprise):
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
        )
        assert set(by_lag) == {1, 2}
        assert all(0.0 <= value <= 1.0 for value in by_lag.values())

    def test_persistence_decays_with_lag(self, tiny_enterprise):
        """Profiles drift monotonically, so longer lags are less persistent."""
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
        )
        assert by_lag[2] <= by_lag[1] + 0.02

    def test_max_lag_caps_horizon(self, tiny_enterprise):
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
            max_lag=1,
        )
        assert set(by_lag) == {1}

    def test_validation(self, tiny_enterprise):
        scheme = create_scheme("tt", k=10)
        single = GraphSequence(graphs=[tiny_enterprise.graphs[0]])
        with pytest.raises(ExperimentError):
            persistence_by_lag(scheme, dist_scaled_hellinger, single)
        with pytest.raises(ExperimentError):
            persistence_by_lag(
                scheme, dist_scaled_hellinger, tiny_enterprise.graphs, population=[]
            )


def steady_graph():
    from repro.graph.comm_graph import CommGraph

    graph = CommGraph()
    for index in range(6):
        node = f"host{index}"
        for peer in range(4):
            graph.add_edge(node, f"peer{peer}", 3.0)
    return graph


def broken_graph(tag):
    """Every host talks to a fresh peer set: persistence collapses to ~0."""
    from repro.graph.comm_graph import CommGraph

    graph = CommGraph()
    for index in range(6):
        node = f"host{index}"
        for peer in range(4):
            graph.add_edge(node, f"odd-{tag}-{peer}", 3.0)
    return graph


class TestMonitorAlerting:
    """Acceptance: a sustained persistence drop fires exactly one alert."""

    POPULATION = [f"host{index}" for index in range(6)]

    def drop_sequence(self):
        # median persistence per transition: [1, ~0, ~0, ~0, ~0, 1]
        graphs = [
            steady_graph(),
            steady_graph(),
            broken_graph("a"),
            broken_graph("b"),
            broken_graph("c"),
            steady_graph(),
            steady_graph(),
        ]
        return GraphSequence(graphs=graphs)

    def alerting_monitor(self, rules):
        from repro.obs import persistence_drop_rule  # noqa: F401 - re-export check

        return SequenceMonitor(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            threshold=0.05,
            alert_rules=rules,
        )

    def test_sustained_drop_fires_exactly_one_alert(self):
        from repro.obs import persistence_drop_rule

        monitor = self.alerting_monitor([persistence_drop_rule(0.5)])
        result = monitor.run(self.drop_sequence(), population=self.POPULATION)
        # Four consecutive breached transitions -> one fired event, then one
        # cleared event on recovery.  No re-fire while still below threshold.
        assert [event.kind for event in result.alerts] == ["fired", "cleared"]
        assert len(result.fired_alerts) == 1
        fired = result.fired_alerts[0]
        assert fired.metric == "monitor.persistence.median"
        assert fired.time == 1.0  # first broken transition
        assert fired.value < 0.5

    def test_no_alerts_when_sequence_is_steady(self, tiny_enterprise):
        from repro.obs import persistence_drop_rule

        monitor = self.alerting_monitor([persistence_drop_rule(0.05)])
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        assert result.alerts == ()

    def test_per_node_rule_targets_one_trajectory(self, tiny_enterprise):
        from repro.apps.monitor import node_persistence_key
        from repro.obs import AlertRule

        victim = tiny_enterprise.local_hosts[2]
        graphs = list(tiny_enterprise.graphs)
        graphs[2] = replace_behaviour(graphs[2], victim, seed=6)
        rule = AlertRule(
            name="victim-drop",
            metric=node_persistence_key(victim),
            threshold=0.3,
        )
        monitor = self.alerting_monitor([rule])
        result = monitor.run(
            GraphSequence(graphs=graphs), population=tiny_enterprise.local_hosts
        )
        assert [event.kind for event in result.alerts] == ["fired"]
        assert result.alerts[0].time == 1.0  # transition 1 -> 2

    def test_series_recorded_per_transition(self, monitor, tiny_enterprise):
        from repro.apps.monitor import (
            PERSISTENCE_MEAN,
            PERSISTENCE_MEDIAN,
            PERSISTENCE_MIN,
            node_persistence_key,
        )

        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        transitions = len(tiny_enterprise.graphs) - 1
        for key in (PERSISTENCE_MEAN, PERSISTENCE_MEDIAN, PERSISTENCE_MIN):
            points = result.series[key]
            assert [point[0] for point in points] == [
                float(index) for index in range(transitions)
            ]
        node = tiny_enterprise.local_hosts[0]
        node_series = result.series[node_persistence_key(node)]
        assert [value for _t, value in node_series] == result.trajectories[node]

    def test_transitions_emit_structured_events_and_metrics(
        self, monitor, tiny_enterprise
    ):
        import io
        import json

        from repro import obs

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="m", clock=lambda: 0.0)
        registry = obs.MetricsRegistry()
        with obs.use_event_log(log), obs.use_registry(registry):
            monitor.run(
                tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
            )
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        transition_events = [
            event for event in events if event["event"] == "monitor.transition"
        ]
        assert len(transition_events) == len(tiny_enterprise.graphs) - 1
        assert all(
            event["span"].startswith("monitor.run") for event in transition_events
        )
        assert registry.counter_value("monitor.transitions") == len(
            tiny_enterprise.graphs
        ) - 1

    def test_alert_events_reach_event_log(self):
        import io
        import json

        from repro import obs
        from repro.obs import persistence_drop_rule

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="m", clock=lambda: 0.0)
        monitor = self.alerting_monitor([persistence_drop_rule(0.5)])
        with obs.use_event_log(log):
            monitor.run(self.drop_sequence(), population=self.POPULATION)
        kinds = [
            json.loads(line)["event"]
            for line in buffer.getvalue().splitlines()
            if json.loads(line)["event"].startswith("alert.")
        ]
        assert kinds == ["alert.fired", "alert.cleared"]
