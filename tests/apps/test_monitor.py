"""Unit and integration tests for sequence monitoring and lag persistence."""

import numpy as np
import pytest

from repro.apps.monitor import SequenceMonitor, persistence_by_lag
from repro.core.distances import dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError
from repro.graph.windows import GraphSequence


@pytest.fixture
def monitor():
    # The miniature dataset has a wide persistence spread, so the tests use
    # the absolute-threshold mode: a complete behaviour break scores ~0.
    return SequenceMonitor(
        create_scheme("tt", k=10), dist_scaled_hellinger, threshold=0.05
    )


def replace_behaviour(graph, node, seed=0):
    rng = np.random.default_rng(seed)
    modified = graph.copy()
    for destination in list(modified.out_neighbors(node)):
        modified.remove_edge(node, destination)
    # Seed-qualified destination names: repeated breaks of the same node
    # produce genuinely different behaviours each time.
    for index in range(25):
        modified.add_edge(node, f"strange-{seed}-{index}", float(rng.integers(1, 6)))
    return modified


class TestSequenceMonitor:
    def test_report_per_transition(self, monitor, tiny_enterprise):
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        assert len(result.reports) == len(tiny_enterprise.graphs) - 1
        for node, series in result.trajectories.items():
            assert len(series) == len(result.reports)
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_needs_two_windows(self, monitor, tiny_enterprise):
        single = GraphSequence(graphs=[tiny_enterprise.graphs[0]])
        with pytest.raises(ExperimentError):
            monitor.run(single)

    def test_default_population_common_nodes(self, monitor, tiny_enterprise):
        result = monitor.run(tiny_enterprise.graphs)
        assert set(tiny_enterprise.local_hosts) <= set(result.trajectories)

    def test_injected_break_is_flagged_in_right_transition(
        self, monitor, tiny_enterprise
    ):
        victim = tiny_enterprise.local_hosts[2]
        graphs = list(tiny_enterprise.graphs)
        graphs[2] = replace_behaviour(graphs[2], victim, seed=6)
        result = monitor.run(
            GraphSequence(graphs=graphs), population=tiny_enterprise.local_hosts
        )
        assert result.first_flag_window(victim) == 1  # transition 1 -> 2
        assert result.flag_counts[victim] >= 1

    def test_first_flag_none_for_quiet_node(self, monitor, tiny_enterprise):
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        quiet = [
            node
            for node, count in result.flag_counts.items()
            if count == 0
        ]
        assert quiet  # most hosts behave
        assert result.first_flag_window(quiet[0]) is None

    def test_chronic_offenders(self, monitor, tiny_enterprise):
        victim = tiny_enterprise.local_hosts[4]
        graphs = list(tiny_enterprise.graphs)
        # Break the victim in every window after the first: each transition
        # sees a different random behaviour.
        graphs[1] = replace_behaviour(graphs[1], victim, seed=10)
        graphs[2] = replace_behaviour(graphs[2], victim, seed=11)
        result = monitor.run(
            GraphSequence(graphs=graphs), population=tiny_enterprise.local_hosts
        )
        assert victim in result.chronic_offenders(min_flags=2)


class TestPersistenceByLag:
    def test_lag_keys_and_range(self, tiny_enterprise):
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
        )
        assert set(by_lag) == {1, 2}
        assert all(0.0 <= value <= 1.0 for value in by_lag.values())

    def test_persistence_decays_with_lag(self, tiny_enterprise):
        """Profiles drift monotonically, so longer lags are less persistent."""
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
        )
        assert by_lag[2] <= by_lag[1] + 0.02

    def test_max_lag_caps_horizon(self, tiny_enterprise):
        by_lag = persistence_by_lag(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            tiny_enterprise.graphs,
            population=tiny_enterprise.local_hosts,
            max_lag=1,
        )
        assert set(by_lag) == {1}

    def test_validation(self, tiny_enterprise):
        scheme = create_scheme("tt", k=10)
        single = GraphSequence(graphs=[tiny_enterprise.graphs[0]])
        with pytest.raises(ExperimentError):
            persistence_by_lag(scheme, dist_scaled_hellinger, single)
        with pytest.raises(ExperimentError):
            persistence_by_lag(
                scheme, dist_scaled_hellinger, tiny_enterprise.graphs, population=[]
            )
