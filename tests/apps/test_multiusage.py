"""Unit and integration tests for multiusage detection."""

import pytest

from repro.apps.multiusage import MultiusageDetector, MultiusagePair, MultiusageReport
from repro.core.distances import dist_jaccard, dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError
from repro.graph.bipartite import BipartiteGraph


@pytest.fixture
def alias_window():
    """Two labels of the same individual plus two unrelated hosts."""
    return BipartiteGraph(
        [
            # alias pair: same favourites with slightly different volumes
            ("alias-a", "siteX", 9.0),
            ("alias-a", "siteY", 4.0),
            ("alias-a", "siteZ", 2.0),
            ("alias-b", "siteX", 7.0),
            ("alias-b", "siteY", 5.0),
            ("alias-b", "siteZ", 1.0),
            # unrelated hosts
            ("other-1", "siteP", 8.0),
            ("other-1", "siteQ", 3.0),
            ("other-2", "siteR", 6.0),
            ("other-2", "siteS", 2.0),
            ("other-2", "siteX", 1.0),
        ]
    )


class TestDetect:
    def test_alias_pair_detected_first(self, alias_window):
        detector = MultiusageDetector(
            create_scheme("tt", k=5), dist_scaled_hellinger, threshold=0.8
        )
        report = detector.detect(alias_window)
        assert report.pairs
        best = report.pairs[0]
        assert {best.first, best.second} == {"alias-a", "alias-b"}

    def test_population_restriction(self, alias_window):
        detector = MultiusageDetector(
            create_scheme("tt", k=5), dist_scaled_hellinger, threshold=1.0
        )
        report = detector.detect(alias_window, population=["other-1", "other-2"])
        for pair in report.pairs:
            assert {pair.first, pair.second} <= {"other-1", "other-2"}

    def test_zero_threshold_detects_nothing(self, alias_window):
        detector = MultiusageDetector(
            create_scheme("tt", k=5), dist_scaled_hellinger, threshold=0.0
        )
        assert detector.detect(alias_window).pairs == ()

    def test_invalid_threshold(self):
        with pytest.raises(ExperimentError):
            MultiusageDetector(create_scheme("tt"), dist_jaccard, threshold=1.5)

    def test_pairs_sorted_by_distance(self, alias_window):
        detector = MultiusageDetector(
            create_scheme("tt", k=5), dist_scaled_hellinger, threshold=1.0
        )
        report = detector.detect(alias_window)
        distances = [pair.distance for pair in report.pairs]
        assert distances == sorted(distances)


class TestReportGroups:
    def test_as_sets_unions_transitively(self):
        report = MultiusageReport(
            pairs=(
                MultiusagePair("a", "b", 0.1),
                MultiusagePair("b", "c", 0.2),
                MultiusagePair("x", "y", 0.3),
            ),
            threshold=0.5,
        )
        groups = {frozenset(group) for group in report.as_sets()}
        assert groups == {frozenset({"a", "b", "c"}), frozenset({"x", "y"})}

    def test_as_sets_empty(self):
        assert MultiusageReport(pairs=(), threshold=0.5).as_sets() == []


class TestEvaluate:
    def test_on_generated_dataset(self, tiny_enterprise):
        detector = MultiusageDetector(
            create_scheme("tt", k=10), dist_scaled_hellinger
        )
        result = detector.evaluate(
            tiny_enterprise.graphs[0],
            tiny_enterprise.positives_by_query(),
            population=tiny_enterprise.local_hosts,
        )
        # Alias siblings share a profile: far better than chance.
        assert result.mean_auc > 0.8
        assert set(result.per_query_auc) == set(tiny_enterprise.aliased_hosts)

    def test_tt_beats_random_labels(self, tiny_enterprise):
        """Sanity control: random 'ground truth' yields ~0.5 AUC."""
        detector = MultiusageDetector(
            create_scheme("tt", k=10), dist_scaled_hellinger
        )
        hosts = tiny_enterprise.local_hosts
        fake_truth = {hosts[0]: [hosts[1]], hosts[1]: [hosts[0]]}
        real = detector.evaluate(
            tiny_enterprise.graphs[0],
            tiny_enterprise.positives_by_query(),
            population=hosts,
        )
        fake = detector.evaluate(
            tiny_enterprise.graphs[0], fake_truth, population=hosts
        )
        assert real.mean_auc > fake.mean_auc
