"""Unit and integration tests for Algorithm 1 (masquerading detection)."""

import pytest

from repro.apps.masquerading import (
    MasqueradeDetectionResult,
    MasqueradeDetector,
    masquerade_accuracy,
)
from repro.core.distances import dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError
from repro.perturb.masquerade import MasqueradePlan, apply_masquerade


@pytest.fixture
def detector():
    return MasqueradeDetector(
        create_scheme("tt", k=10),
        dist_scaled_hellinger,
        top_matches=3,
        threshold_scale=3,
    )


class TestParameters:
    def test_invalid_top_matches(self):
        with pytest.raises(ExperimentError):
            MasqueradeDetector(
                create_scheme("tt"), dist_scaled_hellinger, top_matches=0
            )

    def test_invalid_threshold_scale(self):
        with pytest.raises(ExperimentError):
            MasqueradeDetector(
                create_scheme("tt"), dist_scaled_hellinger, threshold_scale=0
            )


class TestDetect:
    def test_no_masquerade_mostly_cleared(self, detector, tiny_enterprise):
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        result = detector.detect(g0, g1, population=tiny_enterprise.local_hosts)
        cleared_fraction = len(result.non_suspects) / len(result.population)
        assert cleared_fraction > 0.9
        plan = MasqueradePlan(mapping={}, perturbed_nodes=frozenset())
        assert masquerade_accuracy(result, plan) > 0.9

    def test_detects_injected_masquerade(self, detector, tiny_enterprise):
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        masqueraded, plan = apply_masquerade(
            g1, fraction=0.2, candidates=hosts, seed=3
        )
        result = detector.detect(g0, masqueraded, population=hosts)
        accuracy = masquerade_accuracy(result, plan)
        # Clearly better than declaring everyone innocent (1 - f).
        assert accuracy > 1.0 - 0.2
        # Most masqueraded pairs recovered exactly.
        correct = sum(
            1 for old, new in result.detected_pairs.items() if plan.mapping.get(old) == new
        )
        assert correct >= len(plan.mapping) // 2

    def test_empty_population_rejected(self, detector):
        from repro.graph.comm_graph import CommGraph

        with pytest.raises(ExperimentError):
            detector.detect(CommGraph(), CommGraph(), population=[])

    def test_precomputed_signatures_match_inline(self, detector, tiny_enterprise):
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        inline = detector.detect(g0, g1, population=hosts)
        precomputed = detector.detect(
            g0,
            g1,
            population=hosts,
            signatures_now=detector.scheme.compute_all(g0, hosts),
            signatures_next=detector.scheme.compute_all(g1, hosts),
        )
        assert inline.detected_pairs == precomputed.detected_pairs
        assert inline.non_suspects == precomputed.non_suspects
        assert inline.delta == pytest.approx(precomputed.delta)

    def test_missing_precomputed_signature_rejected(self, detector, tiny_enterprise):
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        with pytest.raises(ExperimentError):
            detector.detect(
                g0, g1, population=hosts, signatures_now={}, signatures_next={}
            )

    def test_every_node_classified_exactly_once(self, detector, tiny_enterprise):
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        masqueraded, _plan = apply_masquerade(
            g1, fraction=0.2, candidates=hosts, seed=8
        )
        result = detector.detect(g0, masqueraded, population=hosts)
        paired = set(result.detected_pairs)
        assert paired.isdisjoint(result.non_suspects)
        assert paired | set(result.non_suspects) == set(result.population)


class TestAccuracy:
    def test_accuracy_formula(self):
        result = MasqueradeDetectionResult(
            non_suspects=frozenset({"clean-1", "clean-2", "v"}),
            detected_pairs={"a": "b"},
            delta=0.1,
            population=("clean-1", "clean-2", "a", "b", "v"),
        )
        plan = MasqueradePlan(
            mapping={"a": "b", "b": "a"}, perturbed_nodes=frozenset({"a", "b"})
        )
        # Correct clears: clean-1, clean-2, v (3); correct pairs: (a, b) -> 4/5.
        assert masquerade_accuracy(result, plan) == pytest.approx(0.8)

    def test_wrong_pair_scores_zero(self):
        result = MasqueradeDetectionResult(
            non_suspects=frozenset(),
            detected_pairs={"a": "x"},
            delta=0.1,
            population=("a", "b", "x"),
        )
        plan = MasqueradePlan(
            mapping={"a": "b", "b": "a"}, perturbed_nodes=frozenset({"a", "b"})
        )
        assert masquerade_accuracy(result, plan) == 0.0

    def test_empty_population_rejected(self):
        result = MasqueradeDetectionResult(
            non_suspects=frozenset(), detected_pairs={}, delta=0.0, population=()
        )
        plan = MasqueradePlan(mapping={}, perturbed_nodes=frozenset())
        with pytest.raises(ExperimentError):
            masquerade_accuracy(result, plan)


class TestApproximateMatching:
    def test_lsh_path_close_to_exact(self, tiny_enterprise):
        """The LSH candidate path recovers (almost) the same pairs as the
        brute-force scan on the small dataset."""
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        masqueraded, plan = apply_masquerade(
            g1, fraction=0.2, candidates=hosts, seed=3
        )
        exact_detector = MasqueradeDetector(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            top_matches=3,
            threshold_scale=3,
        )
        approx_detector = MasqueradeDetector(
            create_scheme("tt", k=10),
            dist_scaled_hellinger,
            top_matches=3,
            threshold_scale=3,
            approximate_matching=True,
            lsh_bands=64,
            lsh_rows_per_band=2,
        )
        exact = exact_detector.detect(g0, masqueraded, population=hosts)
        approx = approx_detector.detect(g0, masqueraded, population=hosts)
        assert exact.delta == pytest.approx(approx.delta)
        exact_accuracy = masquerade_accuracy(exact, plan)
        approx_accuracy = masquerade_accuracy(approx, plan)
        # Approximate candidates may drop a borderline match but must stay
        # within a small accuracy band of the exact scan.
        assert approx_accuracy >= exact_accuracy - 0.1

    def test_approximate_flag_default_off(self):
        detector = MasqueradeDetector(create_scheme("tt"), dist_scaled_hellinger)
        assert detector.approximate_matching is False
