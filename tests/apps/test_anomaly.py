"""Unit and integration tests for anomaly detection."""

import numpy as np
import pytest

from repro.apps.anomaly import AnomalyDetector
from repro.core.distances import dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError


@pytest.fixture
def detector():
    return AnomalyDetector(
        create_scheme("tt", k=10), dist_scaled_hellinger, zscore_cutoff=3.0
    )


def inject_behaviour_replacement(graph, node, seed=0, contacts=25):
    """Replace a node's outgoing edges with fresh random destinations."""
    rng = np.random.default_rng(seed)
    modified = graph.copy()
    for destination in list(modified.out_neighbors(node)):
        modified.remove_edge(node, destination)
    for index in range(contacts):
        modified.add_edge(node, f"anomalous-dst-{index}", float(rng.integers(1, 6)))
    return modified


class TestParameters:
    def test_invalid_threshold(self):
        with pytest.raises(ExperimentError):
            AnomalyDetector(create_scheme("tt"), dist_scaled_hellinger, threshold=2.0)

    def test_invalid_zscore(self):
        with pytest.raises(ExperimentError):
            AnomalyDetector(
                create_scheme("tt"), dist_scaled_hellinger, zscore_cutoff=0.0
            )

    def test_empty_population(self, detector):
        from repro.graph.comm_graph import CommGraph

        with pytest.raises(ExperimentError):
            detector.detect(CommGraph(), CommGraph(), population=[])


class TestDetect:
    def test_quiet_population_few_flags(self, detector, tiny_enterprise):
        report = detector.detect(
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            population=tiny_enterprise.local_hosts,
        )
        assert len(report.anomalies) <= 0.1 * len(tiny_enterprise.local_hosts)

    def test_injected_anomaly_flagged(self, detector, tiny_enterprise):
        hosts = tiny_enterprise.local_hosts
        victim = hosts[3]
        modified = inject_behaviour_replacement(
            tiny_enterprise.graphs[1], victim, seed=1
        )
        report = detector.detect(
            tiny_enterprise.graphs[0], modified, population=hosts
        )
        assert victim in report.flagged_nodes
        # And it is the worst offender.
        assert report.anomalies[0].node == victim

    def test_absolute_threshold_mode(self, tiny_enterprise):
        detector = AnomalyDetector(
            create_scheme("tt", k=10), dist_scaled_hellinger, threshold=0.99
        )
        report = detector.detect(
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            population=tiny_enterprise.local_hosts,
        )
        # Nearly everyone has persistence below 0.99 -> nearly all flagged.
        assert len(report.anomalies) > 0.9 * len(tiny_enterprise.local_hosts)

    def test_report_statistics_consistent(self, detector, tiny_enterprise):
        report = detector.detect(
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            population=tiny_enterprise.local_hosts,
        )
        values = list(report.persistence_by_node.values())
        assert report.median_persistence == pytest.approx(float(np.median(values)))
        assert all(0 <= value <= 1 for value in values)

    def test_anomalies_sorted_worst_first(self, detector, tiny_enterprise):
        hosts = tiny_enterprise.local_hosts
        modified = inject_behaviour_replacement(
            tiny_enterprise.graphs[1], hosts[0], seed=2
        )
        modified = inject_behaviour_replacement(modified, hosts[1], seed=3)
        report = detector.detect(tiny_enterprise.graphs[0], modified, population=hosts)
        scores = [anomaly.persistence for anomaly in report.anomalies]
        assert scores == sorted(scores)


class TestRank:
    def test_rank_covers_population(self, detector, tiny_enterprise):
        ranked = detector.rank(
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            population=tiny_enterprise.local_hosts,
        )
        assert len(ranked) == len(tiny_enterprise.local_hosts)
        values = [value for _node, value in ranked]
        assert values == sorted(values)

    def test_injected_anomaly_ranks_first(self, detector, tiny_enterprise):
        hosts = tiny_enterprise.local_hosts
        victim = hosts[5]
        modified = inject_behaviour_replacement(
            tiny_enterprise.graphs[1], victim, seed=4
        )
        ranked = detector.rank(tiny_enterprise.graphs[0], modified, population=hosts)
        assert ranked[0][0] == victim
