"""Unit and integration tests for signature-based de-anonymization."""

import pytest

from repro.apps.deanonymize import (
    AnonymizedRelease,
    Deanonymizer,
    anonymize_graph,
)
from repro.core.distances import dist_scaled_hellinger
from repro.core.scheme import create_scheme
from repro.exceptions import ExperimentError, PerturbationError


class TestAnonymizeGraph:
    def test_population_relabelled(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        release = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=0)
        for identity, pseudonym in release.pseudonyms.items():
            assert identity not in release.graph
            assert pseudonym in release.graph
        assert len(set(release.pseudonyms.values())) == len(release.pseudonyms)

    def test_destinations_untouched(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        release = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=0)
        original_destinations = {
            dst for _src, dst, _w in graph.edges()
        }
        released_destinations = {dst for _src, dst, _w in release.graph.edges()}
        assert original_destinations == released_destinations

    def test_edge_structure_preserved(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        release = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=0)
        host = tiny_enterprise.local_hosts[0]
        pseudonym = release.pseudonyms[host]
        assert dict(release.graph.out_neighbors(pseudonym)) == dict(
            graph.out_neighbors(host)
        )

    def test_deterministic(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        first = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=9)
        second = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=9)
        assert first.pseudonyms == second.pseudonyms

    def test_unknown_population_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            anonymize_graph(triangle_graph, ["ghost"], seed=0)


class TestDeanonymizer:
    @pytest.fixture
    def attacker(self):
        return Deanonymizer(
            create_scheme("tt", k=10), dist_scaled_hellinger, strategy="optimal"
        )

    def test_invalid_strategy(self):
        with pytest.raises(ExperimentError):
            Deanonymizer(create_scheme("tt"), dist_scaled_hellinger, strategy="magic")

    def test_recovers_most_identities(self, attacker, tiny_enterprise):
        reference = tiny_enterprise.graphs[0]
        release = anonymize_graph(
            tiny_enterprise.graphs[1], tiny_enterprise.local_hosts, seed=1
        )
        result = attacker.attack(reference, release)
        # A random assignment scores ~1/n (2.5%); signatures must crush that.
        assert result.accuracy > 0.5
        assert len(result.assignment) == len(tiny_enterprise.local_hosts)
        assert 0.0 <= result.mean_matched_distance <= 1.0

    def test_same_window_attack_is_perfect(self, attacker, tiny_enterprise):
        """With the release built from the attacker's own window, every
        pseudonym's signature is identical to its identity's: accuracy 1."""
        graph = tiny_enterprise.graphs[0]
        release = anonymize_graph(graph, tiny_enterprise.local_hosts, seed=2)
        result = attacker.attack(graph, release)
        assert result.accuracy == 1.0
        assert result.mean_matched_distance == pytest.approx(0.0, abs=1e-9)

    def test_greedy_close_to_optimal(self, tiny_enterprise):
        reference = tiny_enterprise.graphs[0]
        release = anonymize_graph(
            tiny_enterprise.graphs[1], tiny_enterprise.local_hosts, seed=3
        )
        optimal = Deanonymizer(
            create_scheme("tt", k=10), dist_scaled_hellinger, strategy="optimal"
        ).attack(reference, release)
        greedy = Deanonymizer(
            create_scheme("tt", k=10), dist_scaled_hellinger, strategy="greedy"
        ).attack(reference, release)
        # The optimal assignment minimises total distance by construction.
        assert optimal.mean_matched_distance <= greedy.mean_matched_distance + 1e-9
        assert greedy.accuracy > 0.4

    def test_identity_subset(self, attacker, tiny_enterprise):
        reference = tiny_enterprise.graphs[0]
        subset = tiny_enterprise.local_hosts[:10]
        release = anonymize_graph(
            tiny_enterprise.graphs[1], tiny_enterprise.local_hosts, seed=4
        )
        result = attacker.attack(reference, release, identities=subset)
        assert set(result.assignment) == set(subset)

    def test_empty_rejected(self, attacker, tiny_enterprise):
        release = AnonymizedRelease(graph=tiny_enterprise.graphs[1], pseudonyms={})
        with pytest.raises(ExperimentError):
            attacker.attack(tiny_enterprise.graphs[0], release)

    def test_masquerade_link(self, tiny_enterprise):
        """The paper: a user 'effectively unable to masquerade is
        susceptible to anonymity intrusion' — schemes with better
        cross-window identification de-anonymize better than UT."""
        reference = tiny_enterprise.graphs[0]
        release = anonymize_graph(
            tiny_enterprise.graphs[1], tiny_enterprise.local_hosts, seed=5
        )
        strong = Deanonymizer(
            create_scheme("tt", k=10), dist_scaled_hellinger
        ).attack(reference, release)
        weak = Deanonymizer(
            create_scheme("ut", k=10), dist_scaled_hellinger
        ).attack(reference, release)
        assert strong.accuracy > weak.accuracy
