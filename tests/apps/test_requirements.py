"""Unit tests for the framework tables and scheme recommendation."""

import pytest

from repro.apps.requirements import (
    APPLICATION_REQUIREMENTS,
    CHARACTERISTIC_PROPERTIES,
    Requirement,
    recommend_schemes,
    scheme_property_profile,
)
from repro.core.scheme import create_scheme


class TestTables:
    def test_table1_covers_three_applications(self):
        assert set(APPLICATION_REQUIREMENTS) == {
            "multiusage_detection",
            "label_masquerading",
            "anomaly_detection",
        }

    def test_every_application_rates_all_properties(self):
        for levels in APPLICATION_REQUIREMENTS.values():
            assert set(levels) == {"persistence", "uniqueness", "robustness"}
            assert all(isinstance(level, Requirement) for level in levels.values())

    def test_table2_vocabulary(self):
        assert set(CHARACTERISTIC_PROPERTIES) == {
            "engagement",
            "novelty",
            "locality",
            "transitivity",
        }

    def test_requirement_str(self):
        assert str(Requirement.HIGH) == "high"


class TestRecommendation:
    def test_multiusage_includes_tt(self):
        assert "tt" in recommend_schemes("multiusage_detection")

    def test_masquerading_needs_hop_limited_rwr(self):
        assert recommend_schemes("label_masquerading") == ("rwr^h",)

    def test_anomaly_includes_rwr(self):
        recommendations = recommend_schemes("anomaly_detection")
        assert "rwr" in recommendations and "rwr^h" in recommendations

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            recommend_schemes("teleportation")

    def test_scheme_property_profile(self):
        assert set(scheme_property_profile(create_scheme("ut"))) == {"uniqueness"}
