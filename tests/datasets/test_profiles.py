"""Unit tests for behaviour profiles and Zipf weights."""

import numpy as np
import pytest

from repro.datasets.profiles import BehaviorProfile, zipf_weights
from repro.exceptions import DatasetError


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(10, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert len(weights) == 10

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(5, 0.0)
        assert np.allclose(weights, 0.2)

    def test_single_element(self):
        assert zipf_weights(1, 2.0)[0] == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(DatasetError):
            zipf_weights(0)
        with pytest.raises(DatasetError):
            zipf_weights(5, -1.0)


class TestProfileValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(DatasetError):
            BehaviorProfile(personal_pool=[])

    def test_duplicate_pool_rejected(self):
        with pytest.raises(DatasetError):
            BehaviorProfile(personal_pool=["a", "a"])

    def test_share_bounds(self):
        with pytest.raises(DatasetError):
            BehaviorProfile(personal_pool=["a"], noise_share=-0.1)
        with pytest.raises(DatasetError):
            BehaviorProfile(
                personal_pool=["a"],
                service_pool=["s"],
                service_share=0.7,
                noise_share=0.5,
            )

    def test_service_share_requires_pool(self):
        with pytest.raises(DatasetError):
            BehaviorProfile(personal_pool=["a"], service_share=0.2)

    def test_nonpositive_activity(self):
        with pytest.raises(DatasetError):
            BehaviorProfile(personal_pool=["a"], activity=0.0)


class TestSampleWindow:
    def make_profile(self, **overrides):
        defaults = dict(
            personal_pool=[f"p{i}" for i in range(10)],
            service_pool=["s0", "s1"],
            service_share=0.3,
            noise_share=0.1,
            activity=200.0,
            zipf_exponent=1.0,
        )
        defaults.update(overrides)
        return BehaviorProfile(**defaults)

    def test_counts_follow_activity(self):
        profile = self.make_profile()
        rng = np.random.default_rng(0)
        counts = profile.sample_window(rng, noise_universe=["n0", "n1", "n2"])
        assert 100 < sum(counts.values()) < 320  # Poisson(200) plausible range

    def test_favourites_dominate(self):
        profile = self.make_profile(service_share=0.0, service_pool=[], noise_share=0.0)
        rng = np.random.default_rng(1)
        counts = profile.sample_window(rng)
        assert counts["p0"] == max(counts.values())

    def test_noise_requires_universe(self):
        profile = self.make_profile()
        rng = np.random.default_rng(2)
        counts = profile.sample_window(rng)  # no universe -> no noise draws
        assert all(key.startswith(("p", "s")) for key in counts)

    def test_activity_scale(self):
        profile = self.make_profile()
        rng = np.random.default_rng(3)
        scaled = profile.sample_window(rng, activity_scale=0.1)
        assert sum(scaled.values()) < 60

    def test_invalid_scale(self):
        profile = self.make_profile()
        with pytest.raises(DatasetError):
            profile.sample_window(np.random.default_rng(0), activity_scale=0.0)

    def test_deterministic_given_rng_state(self):
        profile = self.make_profile()
        first = profile.sample_window(np.random.default_rng(7), noise_universe=["n"])
        second = profile.sample_window(np.random.default_rng(7), noise_universe=["n"])
        assert first == second


class TestWindowView:
    def make_profile(self):
        return BehaviorProfile(personal_pool=[f"p{i}" for i in range(20)])

    def test_zero_churn_is_same_object_semantics(self):
        profile = self.make_profile()
        view = profile.window_view(np.random.default_rng(0), 0.0)
        assert view.personal_pool == profile.personal_pool

    def test_full_churn_preserves_membership(self):
        profile = self.make_profile()
        view = profile.window_view(np.random.default_rng(0), 1.0)
        assert set(view.personal_pool) == set(profile.personal_pool)
        assert view.personal_pool != profile.personal_pool

    def test_partial_churn_keeps_head_mostly_stable(self):
        profile = self.make_profile()
        rng = np.random.default_rng(5)
        overlaps = []
        for _ in range(20):
            view = profile.window_view(rng, 0.2)
            overlaps.append(
                len(set(view.personal_pool[:5]) & set(profile.personal_pool[:5]))
            )
        assert np.mean(overlaps) > 3.0

    def test_invalid_churn(self):
        with pytest.raises(DatasetError):
            self.make_profile().window_view(np.random.default_rng(0), 1.5)


class TestDrift:
    def make_profile(self):
        return BehaviorProfile(personal_pool=[f"p{i}" for i in range(10)])

    def test_zero_drift_identity(self):
        profile = self.make_profile()
        drifted = profile.drifted(np.random.default_rng(0), ["x1", "x2"], 0.0)
        assert drifted.personal_pool == profile.personal_pool

    def test_drift_replaces_expected_count(self):
        profile = self.make_profile()
        replacements = [f"x{i}" for i in range(20)]
        drifted = profile.drifted(np.random.default_rng(0), replacements, 0.3)
        changed = sum(
            1
            for old, new in zip(profile.personal_pool, drifted.personal_pool)
            if old != new
        )
        assert changed == 3
        assert len(set(drifted.personal_pool)) == len(drifted.personal_pool)

    def test_drift_needs_enough_candidates(self):
        profile = self.make_profile()
        with pytest.raises(DatasetError):
            profile.drifted(np.random.default_rng(0), ["x1"], 0.5)

    def test_invalid_drift(self):
        with pytest.raises(DatasetError):
            self.make_profile().drifted(np.random.default_rng(0), ["x"], 1.5)

    def test_replacements_exclude_current_members(self):
        profile = self.make_profile()
        # Candidates overlapping the pool are skipped as replacements.
        candidates = profile.personal_pool + ["fresh-1", "fresh-2", "fresh-3"]
        drifted = profile.drifted(np.random.default_rng(1), candidates, 0.2)
        new_members = set(drifted.personal_pool) - set(profile.personal_pool)
        assert new_members <= {"fresh-1", "fresh-2", "fresh-3"}
