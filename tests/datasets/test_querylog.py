"""Unit and integration tests for the query-log generator."""

import pytest

from repro.datasets.querylog import QueryLogGenerator, QueryLogParams
from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph


SMALL = QueryLogParams(
    num_users=30, num_tables=50, num_windows=2, mean_queries=40.0, seed=2
)


@pytest.fixture(scope="module")
def dataset():
    return QueryLogGenerator(SMALL).generate()


class TestParams:
    def test_defaults_validate(self):
        QueryLogParams().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_users": 1},
            {"num_tables": 3, "tables_per_user": (4, 8)},
            {"num_windows": 1},
            {"noise_share": 1.0},
        ],
    )
    def test_invalid_params(self, overrides):
        with pytest.raises(DatasetError):
            QueryLogParams(**overrides).validate()

    def test_params_plus_overrides_rejected(self):
        with pytest.raises(DatasetError):
            QueryLogGenerator(SMALL, num_users=5)


class TestGeneratedStructure:
    def test_shape(self, dataset):
        assert len(dataset.graphs) == SMALL.num_windows
        assert len(dataset.users) == SMALL.num_users
        assert len(dataset.tables) == SMALL.num_tables
        assert all(isinstance(graph, BipartiteGraph) for graph in dataset.graphs)

    def test_users_left_tables_right(self, dataset):
        graph = dataset.graphs[0]
        users = set(dataset.users)
        for src, dst, _weight in graph.edges():
            assert src in users
            assert dst.startswith("table-")

    def test_all_users_present(self, dataset):
        for graph in dataset.graphs:
            assert set(dataset.users) <= set(graph.left_nodes)

    def test_determinism(self):
        first = QueryLogGenerator(SMALL).generate()
        second = QueryLogGenerator(SMALL).generate()
        for g1, g2 in zip(first.graphs, second.graphs):
            assert g1 == g2


class TestHabitualBehaviour:
    def test_small_per_user_table_sets(self, dataset):
        graph = dataset.graphs[0]
        degrees = [graph.out_degree(user) for user in dataset.users]
        # Users hit a handful of tables each (pool 4-8 plus rare noise).
        assert max(degrees) <= 12
        assert sum(degrees) / len(degrees) >= 3

    def test_users_extremely_persistent(self, dataset):
        """The paper's premise for Fig 3(b): analysts re-query the same tables."""
        g0, g1 = dataset.graphs[0], dataset.graphs[1]
        overlaps = []
        for user in dataset.users:
            now = set(g0.out_neighbors(user))
            later = set(g1.out_neighbors(user))
            if now and later:
                overlaps.append(len(now & later) / len(now | later))
        assert sum(overlaps) / len(overlaps) > 0.6

    def test_self_identification_near_perfect(self, dataset):
        from repro.core.distances import get_distance
        from repro.core.roc import roc_identity
        from repro.core.scheme import create_scheme

        scheme = create_scheme("tt", k=3)
        signatures_now = scheme.compute_all(dataset.graphs[0], dataset.users)
        signatures_next = scheme.compute_all(dataset.graphs[1], dataset.users)
        result = roc_identity(
            signatures_now,
            signatures_next,
            get_distance("shel"),
            queries=dataset.users,
            candidates=dataset.users,
        )
        assert result.mean_auc > 0.95
