"""Unit tests for graph-sequence CSV persistence."""

import pytest

from repro.datasets.loaders import load_graph_sequence_csv, save_graph_sequence_csv
from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph
from repro.graph.stream import EdgeRecord, write_edge_records
from repro.graph.windows import GraphSequence


def make_sequence():
    return GraphSequence(
        graphs=[
            CommGraph([("a", "b", 2.0), ("b", "c", 1.0)]),
            CommGraph([("a", "b", 3.0)]),
        ]
    )


class TestRoundTrip:
    def test_basic_round_trip(self, tmp_path):
        sequence = make_sequence()
        path = tmp_path / "sequence.csv"
        written = save_graph_sequence_csv(sequence, path)
        assert written == 3
        loaded = load_graph_sequence_csv(path)
        assert len(loaded) == 2
        assert loaded[0].weight("a", "b") == pytest.approx(2.0)
        assert loaded[1].weight("a", "b") == pytest.approx(3.0)

    def test_bipartite_round_trip(self, tmp_path, tiny_enterprise):
        path = tmp_path / "enterprise.csv"
        save_graph_sequence_csv(tiny_enterprise.graphs, path)
        loaded = load_graph_sequence_csv(path, bipartite=True)
        assert len(loaded) == len(tiny_enterprise.graphs)
        assert isinstance(loaded[0], BipartiteGraph)
        # Edge weights survive exactly (node labels were strings already).
        original = tiny_enterprise.graphs[0]
        for src, dst, weight in original.edges():
            assert loaded[0].weight(src, dst) == pytest.approx(weight)

    def test_gap_produces_empty_window(self, tmp_path):
        records = [
            EdgeRecord(time=0.0, src="a", dst="b", weight=1.0),
            EdgeRecord(time=2.0, src="c", dst="d", weight=1.0),
        ]
        path = tmp_path / "gap.csv"
        write_edge_records(records, path)
        loaded = load_graph_sequence_csv(path)
        assert len(loaded) == 3
        assert loaded[1].num_edges == 0

    def test_isolated_nodes_documented_loss(self, tmp_path):
        graph = CommGraph([("a", "b", 1.0)])
        graph.add_node("lonely")
        path = tmp_path / "iso.csv"
        save_graph_sequence_csv(GraphSequence(graphs=[graph]), path)
        loaded = load_graph_sequence_csv(path)
        assert "lonely" not in loaded[0]


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_edge_records([], path)
        with pytest.raises(DatasetError):
            load_graph_sequence_csv(path)

    def test_fractional_window_index_rejected(self, tmp_path):
        path = tmp_path / "frac.csv"
        write_edge_records([EdgeRecord(time=0.5, src="a", dst="b")], path)
        with pytest.raises(DatasetError):
            load_graph_sequence_csv(path)

    def test_negative_window_index_rejected(self, tmp_path):
        path = tmp_path / "neg.csv"
        write_edge_records([EdgeRecord(time=-1.0, src="a", dst="b")], path)
        with pytest.raises(DatasetError):
            load_graph_sequence_csv(path)
