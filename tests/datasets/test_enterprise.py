"""Unit and integration tests for the enterprise flow generator."""

import pytest

from repro.datasets.enterprise import (
    EnterpriseDataset,
    EnterpriseFlowGenerator,
    EnterpriseParams,
)
from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph


SMALL = EnterpriseParams(
    num_hosts=30,
    num_external=300,
    num_services=8,
    num_windows=2,
    num_alias_users=4,
    seed=1,
)


@pytest.fixture(scope="module")
def dataset():
    return EnterpriseFlowGenerator(SMALL).generate()


class TestParams:
    def test_defaults_validate(self):
        EnterpriseParams().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_hosts": 1},
            {"num_external": 5, "personal_pool_size": 40},
            {"num_windows": 1},
            {"num_services": 4, "services_per_host": (3, 8)},
            {"aliases_per_user": (1, 2)},
            {"num_alias_users": 200},
            {"pool_tail_fraction": 1.5},
            {"rank_correlation": -0.1},
            {"favorite_churn": 2.0},
        ],
    )
    def test_invalid_params_rejected(self, overrides):
        with pytest.raises(DatasetError):
            params = EnterpriseParams(**overrides)
            params.validate()

    def test_generator_rejects_params_plus_overrides(self):
        with pytest.raises(DatasetError):
            EnterpriseFlowGenerator(SMALL, num_hosts=10)

    def test_generator_accepts_keyword_overrides(self):
        generator = EnterpriseFlowGenerator(
            num_hosts=20, num_external=200, num_services=8, num_alias_users=3
        )
        assert generator.params.num_hosts == 20


class TestGeneratedStructure:
    def test_window_count_and_type(self, dataset):
        assert len(dataset.graphs) == SMALL.num_windows
        assert all(isinstance(graph, BipartiteGraph) for graph in dataset.graphs)

    def test_all_hosts_present_each_window(self, dataset):
        for graph in dataset.graphs:
            assert set(dataset.local_hosts) <= set(graph.left_nodes)

    def test_host_count(self, dataset):
        assert len(dataset.local_hosts) == SMALL.num_hosts

    def test_edges_point_host_to_external(self, dataset):
        hosts = set(dataset.local_hosts)
        for src, dst, weight in dataset.graphs[0].edges():
            assert src in hosts
            assert dst not in hosts
            assert weight > 0

    def test_alias_groups_structure(self, dataset):
        assert len(dataset.alias_groups) == SMALL.num_alias_users
        for labels in dataset.alias_groups.values():
            assert SMALL.aliases_per_user[0] <= len(labels) <= SMALL.aliases_per_user[1]
        assert len(dataset.aliased_hosts) == len(set(dataset.aliased_hosts))

    def test_positives_by_query_symmetric(self, dataset):
        positives = dataset.positives_by_query()
        for query, siblings in positives.items():
            for sibling in siblings:
                assert query in positives[sibling]
                assert query != sibling

    def test_popular_services_have_high_indegree(self, dataset):
        graph = dataset.graphs[0]
        service_degrees = [
            graph.in_degree(node)
            for node in graph.right_nodes
            if str(node).startswith("svc-")
        ]
        external_degrees = [
            graph.in_degree(node)
            for node in graph.right_nodes
            if str(node).startswith("ext-")
        ]
        assert max(service_degrees) > 3 * (
            sum(external_degrees) / len(external_degrees)
        )

    def test_determinism(self):
        first = EnterpriseFlowGenerator(SMALL).generate()
        second = EnterpriseFlowGenerator(SMALL).generate()
        assert first.alias_groups == second.alias_groups
        for g1, g2 in zip(first.graphs, second.graphs):
            assert g1 == g2

    def test_different_seed_different_data(self):
        from dataclasses import replace

        other = EnterpriseFlowGenerator(replace(SMALL, seed=2)).generate()
        base = EnterpriseFlowGenerator(SMALL).generate()
        assert any(g1 != g2 for g1, g2 in zip(base.graphs, other.graphs))


class TestBehaviouralProperties:
    def test_hosts_persist_across_windows(self, dataset):
        """A host's destination set overlaps heavily across windows."""
        g0, g1 = dataset.graphs[0], dataset.graphs[1]
        overlaps = []
        for host in dataset.local_hosts:
            now = set(g0.out_neighbors(host))
            later = set(g1.out_neighbors(host))
            if now and later:
                overlaps.append(len(now & later) / len(now | later))
        assert sum(overlaps) / len(overlaps) > 0.15

    def test_alias_siblings_more_similar_than_strangers(self, dataset):
        from repro.core.distances import dist_scaled_hellinger
        from repro.core.scheme import create_scheme

        graph = dataset.graphs[0]
        signatures = create_scheme("tt", k=10).compute_all(graph, dataset.local_hosts)
        positives = dataset.positives_by_query()
        sibling_distances = [
            dist_scaled_hellinger(signatures[query], signatures[sibling])
            for query, siblings in positives.items()
            for sibling in siblings
        ]
        hosts = dataset.local_hosts
        stranger_distances = [
            dist_scaled_hellinger(signatures[hosts[i]], signatures[hosts[i + 5]])
            for i in range(0, 20)
            if hosts[i + 5] not in positives.get(hosts[i], [])
        ]
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(sibling_distances) < mean(stranger_distances) - 0.15
