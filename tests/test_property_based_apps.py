"""Property-based tests for application-level invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.distances import dist_jaccard, dist_scaled_hellinger
from repro.core.roc import auc_from_scores, roc_from_scores
from repro.core.scheme import create_scheme
from repro.graph.comm_graph import CommGraph
from repro.matching.lsh import LshIndex
from repro.perturb.masquerade import apply_masquerade

node_labels = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=5
)

edge_lists = st.lists(
    st.tuples(node_labels, node_labels, st.integers(min_value=1, max_value=9)),
    min_size=2,
    max_size=30,
)

scores = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=30
)


class TestRocConsistency:
    @settings(max_examples=40, deadline=None)
    @given(positive=scores, negative=scores)
    def test_curve_auc_equals_mann_whitney(self, positive, negative):
        """The gridded curve's trapezoid area approximates the exact AUC."""
        curve = roc_from_scores(positive, negative, grid_size=2001)
        trapezoid = float(np.trapezoid(curve.tpr, curve.fpr))
        exact = auc_from_scores(positive, negative)
        assert curve.auc == exact
        # Dense grid: interpolation error stays small.
        assert abs(trapezoid - exact) < 0.02

    @settings(max_examples=40, deadline=None)
    @given(positive=scores, negative=scores)
    def test_auc_complementary_under_swap(self, positive, negative):
        """Swapping classes mirrors the AUC around one half."""
        forward = auc_from_scores(positive, negative)
        backward = auc_from_scores(negative, positive)
        assert forward + backward == pytest.approx(1.0)


class TestMasqueradeInvariants:
    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists, seed=st.integers(min_value=0, max_value=10_000))
    def test_relabelled_graph_preserves_structure(self, edges, seed):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        nodes = graph.nodes()
        assume(len(nodes) >= 4)
        relabelled, plan = apply_masquerade(
            graph, nodes=nodes[:4], seed=seed
        )
        # Same global shape: node/edge counts and weight multiset.
        assert relabelled.num_nodes == graph.num_nodes
        assert relabelled.num_edges == graph.num_edges
        assert sorted(relabelled.edge_weights()) == pytest.approx(
            sorted(graph.edge_weights())
        )
        # Mapping is a derangement of the selected nodes.
        assert set(plan.mapping) == set(nodes[:4])
        assert all(a != b for a, b in plan.mapping.items())

    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists, seed=st.integers(min_value=0, max_value=10_000))
    def test_signatures_travel_with_individuals(self, edges, seed):
        """After relabelling, the individual's signature appears under the
        new label, not the old one (TT, set view; modulo self-exclusion,
        which can differ because the owner changes)."""
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        nodes = graph.nodes()
        assume(len(nodes) >= 4)
        selected = nodes[:4]
        relabelled, plan = apply_masquerade(graph, nodes=selected, seed=seed)
        scheme = create_scheme("tt", k=10)
        for old_label, new_label in plan.mapping.items():
            original = scheme.compute(graph, old_label)
            moved = scheme.compute(relabelled, new_label)
            # Identity only guaranteed for members untouched by the relabel
            # map, since member labels inside P move too.
            untouched = {
                node for node in original.nodes if node not in plan.mapping
            }
            expected = {plan.mapping.get(node, node) for node in original.nodes}
            assert untouched - {new_label} <= moved.nodes | {new_label}
            assert moved.nodes <= expected | {old_label}


class TestLshProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        bands=st.integers(min_value=1, max_value=16),
        rows=st.integers(min_value=1, max_value=8),
        similarity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_candidate_probability_bounds(self, bands, rows, similarity):
        index = LshIndex(bands=bands, rows_per_band=rows)
        probability = index.candidate_probability(similarity)
        assert 0.0 <= probability <= 1.0
        # More bands can only increase the candidate probability.
        wider = LshIndex(bands=bands + 1, rows_per_band=rows)
        assert wider.candidate_probability(similarity) >= probability - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        similarity_low=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        similarity_high=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_candidate_probability_monotone(self, similarity_low, similarity_high):
        low, high = sorted((similarity_low, similarity_high))
        index = LshIndex(bands=8, rows_per_band=4)
        assert index.candidate_probability(low) <= index.candidate_probability(
            high
        ) + 1e-12


class TestSchemeInvariantsOnRandomGraphs:
    @settings(max_examples=20, deadline=None)
    @given(edges=edge_lists)
    def test_all_schemes_produce_valid_signatures(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        for name in ("tt", "ut", "it"):
            scheme = create_scheme(name, k=5)
            for node in graph.nodes():
                signature = scheme.compute(graph, node)
                assert node not in signature
                assert len(signature) <= 5
                assert all(weight > 0 for _n, weight in signature)

    @settings(max_examples=10, deadline=None)
    @given(edges=edge_lists)
    def test_rwr_signatures_valid(self, edges):
        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        scheme = create_scheme("rwr", k=5, reset_probability=0.2, max_hops=3)
        batch = scheme.compute_all(graph)
        for node, signature in batch.items():
            assert node not in signature
            assert len(signature) <= 5

    @settings(max_examples=15, deadline=None)
    @given(edges=edge_lists)
    def test_properties_in_unit_interval(self, edges):
        from repro.core.properties import persistence, robustness, uniqueness

        graph = CommGraph((s, d, float(w)) for s, d, w in edges)
        nodes = graph.nodes()
        assume(len(nodes) >= 2)
        scheme = create_scheme("tt", k=5)
        sig_a = scheme.compute(graph, nodes[0])
        sig_b = scheme.compute(graph, nodes[1])
        for distance in (dist_jaccard, dist_scaled_hellinger):
            assert 0.0 <= persistence(sig_a, sig_b, distance) <= 1.0
            assert 0.0 <= uniqueness(sig_a, sig_b, distance) <= 1.0
            assert 0.0 <= robustness(sig_a, sig_b, distance) <= 1.0
