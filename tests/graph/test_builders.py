"""Unit tests for record aggregation and decay combination."""

import pytest

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import aggregate_records, combine_with_decay, graph_from_edges
from repro.graph.comm_graph import CommGraph
from repro.graph.stream import EdgeRecord


class TestAggregateRecords:
    def test_sums_weights_per_pair(self):
        records = [
            EdgeRecord(time=0.0, src="a", dst="b", weight=2.0),
            EdgeRecord(time=1.0, src="a", dst="b", weight=3.0),
            EdgeRecord(time=2.0, src="a", dst="c", weight=1.0),
        ]
        graph = aggregate_records(records)
        assert graph.weight("a", "b") == pytest.approx(5.0)
        assert graph.weight("a", "c") == pytest.approx(1.0)
        assert graph.num_edges == 2

    def test_empty_records(self):
        graph = aggregate_records([])
        assert graph.num_nodes == 0

    def test_bipartite_flag(self):
        records = [EdgeRecord(time=0.0, src="u", dst="t", weight=1.0)]
        graph = aggregate_records(records, bipartite=True)
        assert isinstance(graph, BipartiteGraph)
        assert graph.side("u") == "left"


class TestGraphFromEdges:
    def test_plain(self):
        graph = graph_from_edges([("a", "b", 1.0)])
        assert isinstance(graph, CommGraph)
        assert not isinstance(graph, BipartiteGraph)

    def test_bipartite(self):
        graph = graph_from_edges([("a", "b", 1.0)], bipartite=True)
        assert isinstance(graph, BipartiteGraph)


class TestCombineWithDecay:
    def test_single_graph_identity(self, triangle_graph):
        combined = combine_with_decay([triangle_graph], decay=0.5)
        assert combined == triangle_graph

    def test_two_windows_decay(self):
        old = CommGraph([("a", "b", 4.0)])
        new = CommGraph([("a", "b", 2.0), ("a", "c", 2.0)])
        combined = combine_with_decay([old, new], decay=0.5)
        # old contributes 0.5 * 4 = 2; new contributes full weight.
        assert combined.weight("a", "b") == pytest.approx(4.0)
        assert combined.weight("a", "c") == pytest.approx(2.0)

    def test_decay_one_is_plain_sum(self):
        old = CommGraph([("a", "b", 4.0)])
        new = CommGraph([("a", "b", 2.0)])
        combined = combine_with_decay([old, new], decay=1.0)
        assert combined.weight("a", "b") == pytest.approx(6.0)

    def test_preserves_isolated_nodes(self):
        old = CommGraph()
        old.add_node("silent")
        new = CommGraph([("a", "b", 1.0)])
        combined = combine_with_decay([old, new])
        assert "silent" in combined

    def test_bipartite_inputs_give_bipartite_output(self):
        old = BipartiteGraph([("u", "t", 1.0)])
        new = BipartiteGraph([("u", "s", 1.0)])
        combined = combine_with_decay([old, new])
        assert isinstance(combined, BipartiteGraph)

    def test_mixed_inputs_give_plain_graph(self):
        old = BipartiteGraph([("u", "t", 1.0)])
        new = CommGraph([("x", "y", 1.0)])
        combined = combine_with_decay([old, new])
        assert not isinstance(combined, BipartiteGraph)

    def test_empty_sequence_rejected(self):
        with pytest.raises(GraphError):
            combine_with_decay([])

    @pytest.mark.parametrize("decay", [0.0, -0.5, 1.5])
    def test_invalid_decay_rejected(self, decay, triangle_graph):
        with pytest.raises(GraphError):
            combine_with_decay([triangle_graph], decay=decay)
