"""Unit tests for edge records and CSV round-tripping."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.stream import (
    EdgeRecord,
    iter_sorted,
    read_edge_records,
    write_edge_records,
)


class TestEdgeRecord:
    def test_defaults_and_ordering(self):
        early = EdgeRecord(time=1.0, src="a", dst="b")
        late = EdgeRecord(time=2.0, src="a", dst="b", weight=3.0)
        assert early.weight == 1.0
        assert early < late

    def test_negative_weight_rejected(self):
        with pytest.raises(DatasetError):
            EdgeRecord(time=0.0, src="a", dst="b", weight=-1.0)

    def test_frozen(self):
        record = EdgeRecord(time=0.0, src="a", dst="b")
        with pytest.raises(AttributeError):
            record.weight = 2.0

    def test_iter_sorted(self):
        records = [
            EdgeRecord(time=3.0, src="a", dst="b"),
            EdgeRecord(time=1.0, src="c", dst="d"),
            EdgeRecord(time=2.0, src="e", dst="f"),
        ]
        assert [r.time for r in iter_sorted(records)] == [1.0, 2.0, 3.0]


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            EdgeRecord(time=0.0, src="alice", dst="bob", weight=2.0),
            EdgeRecord(time=1.5, src="bob", dst="carol", weight=1.0),
        ]
        path = tmp_path / "trace.csv"
        written = write_edge_records(records, path)
        assert written == 2
        loaded = read_edge_records(path)
        assert loaded == records

    def test_empty_file_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_edge_records([], path) == 0
        assert read_edge_records(path) == []

    def test_header_validation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header,entirely,nope\n1,a,b,1\n")
        with pytest.raises(DatasetError):
            read_edge_records(path)

    def test_column_count_validation(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time,src,dst,weight\n1,a,b\n")
        with pytest.raises(DatasetError) as excinfo:
            read_edge_records(path)
        assert ":2:" in str(excinfo.value)

    def test_bad_number_reports_line(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("time,src,dst,weight\nnot-a-time,a,b,1\n")
        with pytest.raises(DatasetError) as excinfo:
            read_edge_records(path)
        assert ":2:" in str(excinfo.value)

    def test_truly_empty_file(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("")
        assert read_edge_records(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("time,src,dst,weight\n1,a,b,1\n\n2,c,d,2\n")
        loaded = read_edge_records(path)
        assert len(loaded) == 2


class TestErrorPolicies:
    def dirty_csv(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text(
            "time,src,dst,weight\n"
            "1,a,b,1\n"
            "bad-time,c,d,1\n"
            "2,e,f\n"
            "3,g,h,-4\n"
            "4,i,j,2\n"
        )
        return path

    def test_unknown_policy_rejected(self, tmp_path):
        path = self.dirty_csv(tmp_path)
        with pytest.raises(DatasetError):
            read_edge_records(path, errors="lenient")

    def test_strict_is_default_and_raises(self, tmp_path):
        path = self.dirty_csv(tmp_path)
        with pytest.raises(DatasetError):
            read_edge_records(path)

    def test_skip_collects_rejections_with_reasons(self, tmp_path):
        path = self.dirty_csv(tmp_path)
        report = read_edge_records(path, errors="skip")
        assert len(report) == 2
        assert report.num_rejected == 3
        assert [item.line_number for item in report.rejected] == [3, 4, 5]
        reasons = " / ".join(item.reason for item in report.rejected)
        assert "columns" in reasons and "non-negative" in reasons

    def test_report_is_list_compatible(self, tmp_path):
        path = self.dirty_csv(tmp_path)
        report = read_edge_records(path, errors="skip")
        assert isinstance(report, list)
        assert report == [
            EdgeRecord(time=1.0, src="a", dst="b", weight=1.0),
            EdgeRecord(time=4.0, src="i", dst="j", weight=2.0),
        ]
        assert report.rejected_fraction() == pytest.approx(3 / 5)

    def test_quarantine_writes_rejected_rows(self, tmp_path):
        path = self.dirty_csv(tmp_path)
        quarantine = tmp_path / "quarantine.csv"
        report = read_edge_records(path, errors="quarantine", quarantine_path=quarantine)
        assert report.num_rejected == 3
        text = quarantine.read_text()
        assert "line_number,reason,raw_row" in text
        assert "bad-time" in text

    def test_clean_file_reports_zero_rejections(self, tmp_path):
        path = tmp_path / "clean.csv"
        write_edge_records([EdgeRecord(time=0.0, src="a", dst="b")], path)
        report = read_edge_records(path, errors="skip")
        assert report.num_rejected == 0
        assert report.rejected_fraction() == 0.0

    def test_wrong_header_raises_under_every_policy(self, tmp_path):
        path = tmp_path / "bad_header.csv"
        path.write_text("completely,wrong,header,row\n1,a,b,1\n")
        for policy in ("strict", "skip", "quarantine"):
            with pytest.raises(DatasetError):
                read_edge_records(path, errors=policy)


class TestAtomicWrites:
    def test_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_edge_records([EdgeRecord(time=0.0, src="a", dst="b")], path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_preserves_previous_content(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_edge_records([EdgeRecord(time=0.0, src="a", dst="b")], path)
        before = path.read_text()

        def exploding_records():
            yield EdgeRecord(time=1.0, src="x", dst="y")
            raise RuntimeError("crash mid-write")

        with pytest.raises(RuntimeError):
            write_edge_records(exploding_records(), path)
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []
