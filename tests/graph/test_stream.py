"""Unit tests for edge records and CSV round-tripping."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.stream import (
    EdgeRecord,
    iter_sorted,
    read_edge_records,
    write_edge_records,
)


class TestEdgeRecord:
    def test_defaults_and_ordering(self):
        early = EdgeRecord(time=1.0, src="a", dst="b")
        late = EdgeRecord(time=2.0, src="a", dst="b", weight=3.0)
        assert early.weight == 1.0
        assert early < late

    def test_negative_weight_rejected(self):
        with pytest.raises(DatasetError):
            EdgeRecord(time=0.0, src="a", dst="b", weight=-1.0)

    def test_frozen(self):
        record = EdgeRecord(time=0.0, src="a", dst="b")
        with pytest.raises(AttributeError):
            record.weight = 2.0

    def test_iter_sorted(self):
        records = [
            EdgeRecord(time=3.0, src="a", dst="b"),
            EdgeRecord(time=1.0, src="c", dst="d"),
            EdgeRecord(time=2.0, src="e", dst="f"),
        ]
        assert [r.time for r in iter_sorted(records)] == [1.0, 2.0, 3.0]


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            EdgeRecord(time=0.0, src="alice", dst="bob", weight=2.0),
            EdgeRecord(time=1.5, src="bob", dst="carol", weight=1.0),
        ]
        path = tmp_path / "trace.csv"
        written = write_edge_records(records, path)
        assert written == 2
        loaded = read_edge_records(path)
        assert loaded == records

    def test_empty_file_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_edge_records([], path) == 0
        assert read_edge_records(path) == []

    def test_header_validation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header,entirely,nope\n1,a,b,1\n")
        with pytest.raises(DatasetError):
            read_edge_records(path)

    def test_column_count_validation(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time,src,dst,weight\n1,a,b\n")
        with pytest.raises(DatasetError) as excinfo:
            read_edge_records(path)
        assert ":2:" in str(excinfo.value)

    def test_bad_number_reports_line(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("time,src,dst,weight\nnot-a-time,a,b,1\n")
        with pytest.raises(DatasetError) as excinfo:
            read_edge_records(path)
        assert ":2:" in str(excinfo.value)

    def test_truly_empty_file(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text("")
        assert read_edge_records(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("time,src,dst,weight\n1,a,b,1\n\n2,c,d,2\n")
        loaded = read_edge_records(path)
        assert len(loaded) == 2
