"""Unit tests for the weighted directed communication graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.comm_graph import CommGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = CommGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.total_weight == 0.0
        assert graph.nodes() == []
        assert list(graph.edges()) == []

    def test_from_edge_list(self, triangle_graph):
        assert triangle_graph.num_nodes == 3
        assert triangle_graph.num_edges == 4
        assert triangle_graph.total_weight == pytest.approx(11.0)

    def test_add_node_is_idempotent(self):
        graph = CommGraph()
        graph.add_node("x")
        graph.add_node("x")
        assert graph.num_nodes == 1
        assert graph.out_degree("x") == 0

    def test_add_edge_accumulates_weight(self):
        graph = CommGraph()
        graph.add_edge("a", "b", 2.0)
        graph.add_edge("a", "b", 3.0)
        assert graph.weight("a", "b") == pytest.approx(5.0)
        assert graph.num_edges == 1

    def test_zero_weight_edge_creates_nodes_only(self):
        graph = CommGraph()
        graph.add_edge("a", "b", 0.0)
        assert graph.num_nodes == 2
        assert graph.num_edges == 0
        assert not graph.has_edge("a", "b")

    def test_negative_weight_rejected(self):
        graph = CommGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", -1.0)

    def test_self_loop_allowed_at_graph_level(self):
        graph = CommGraph([("a", "a", 2.0)])
        assert graph.weight("a", "a") == 2.0
        assert graph.in_degree("a") == 1


class TestQueries:
    def test_membership_and_iteration(self, triangle_graph):
        assert "a" in triangle_graph
        assert "zzz" not in triangle_graph
        assert set(iter(triangle_graph)) == {"a", "b", "c"}
        assert len(triangle_graph) == 3

    def test_neighbour_views(self, triangle_graph):
        assert dict(triangle_graph.out_neighbors("a")) == {"b": 5.0, "c": 2.0}
        assert dict(triangle_graph.in_neighbors("c")) == {"a": 2.0, "b": 1.0}

    def test_degrees_and_strengths(self, triangle_graph):
        assert triangle_graph.out_degree("a") == 2
        assert triangle_graph.in_degree("c") == 2
        assert triangle_graph.out_strength("a") == pytest.approx(7.0)
        assert triangle_graph.in_strength("a") == pytest.approx(3.0)

    def test_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.out_neighbors("nope")
        with pytest.raises(NodeNotFoundError):
            triangle_graph.in_neighbors("nope")

    def test_weight_of_absent_edge_is_zero(self, triangle_graph):
        assert triangle_graph.weight("b", "a") == 0.0
        assert triangle_graph.weight("nope", "a") == 0.0

    def test_edge_weights_list(self, triangle_graph):
        assert sorted(triangle_graph.edge_weights()) == [1.0, 2.0, 3.0, 5.0]


class TestMutation:
    def test_set_edge_weight_replaces(self, triangle_graph):
        triangle_graph.set_edge_weight("a", "b", 10.0)
        assert triangle_graph.weight("a", "b") == 10.0
        assert triangle_graph.total_weight == pytest.approx(16.0)

    def test_set_edge_weight_zero_removes(self, triangle_graph):
        triangle_graph.set_edge_weight("a", "b", 0.0)
        assert not triangle_graph.has_edge("a", "b")
        assert triangle_graph.num_edges == 3
        # Endpoints survive removal.
        assert "a" in triangle_graph and "b" in triangle_graph

    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge("a", "b")
        assert not triangle_graph.has_edge("a", "b")
        with pytest.raises(GraphError):
            triangle_graph.remove_edge("a", "b")

    def test_decrement_edge_partial(self, triangle_graph):
        triangle_graph.decrement_edge("a", "b", 2.0)
        assert triangle_graph.weight("a", "b") == pytest.approx(3.0)
        assert triangle_graph.total_weight == pytest.approx(9.0)

    def test_decrement_edge_to_zero_removes(self, triangle_graph):
        triangle_graph.decrement_edge("b", "c", 1.0)
        assert not triangle_graph.has_edge("b", "c")

    def test_decrement_below_zero_clamps_at_removal(self, triangle_graph):
        before = triangle_graph.total_weight
        triangle_graph.decrement_edge("b", "c", 5.0)
        assert not triangle_graph.has_edge("b", "c")
        assert triangle_graph.total_weight == pytest.approx(before - 1.0)

    def test_decrement_missing_edge_raises(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.decrement_edge("b", "a", 1.0)

    def test_remove_node_strips_incident_edges(self, triangle_graph):
        triangle_graph.remove_node("c")
        assert "c" not in triangle_graph
        assert triangle_graph.num_edges == 1
        assert triangle_graph.weight("a", "b") == 5.0

    def test_remove_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.remove_node("nope")


class TestCopyAndEquality:
    def test_copy_is_deep(self, triangle_graph):
        clone = triangle_graph.copy()
        assert clone == triangle_graph
        clone.add_edge("a", "b", 1.0)
        assert clone != triangle_graph
        assert triangle_graph.weight("a", "b") == 5.0

    def test_copy_preserves_isolated_nodes(self):
        graph = CommGraph()
        graph.add_node("lonely")
        graph.add_edge("a", "b", 1.0)
        clone = graph.copy()
        assert "lonely" in clone

    def test_equality_ignores_insertion_order(self):
        first = CommGraph([("a", "b", 1.0), ("c", "d", 2.0)])
        second = CommGraph([("c", "d", 2.0), ("a", "b", 1.0)])
        assert first == second

    def test_equality_other_type(self, triangle_graph):
        assert triangle_graph != 42


class TestMatrixConversion:
    def test_adjacency_matches_weights(self, triangle_graph):
        ordering, position = triangle_graph.node_index()
        adjacency = triangle_graph.to_adjacency_csr()
        for src, dst, weight in triangle_graph.edges():
            assert adjacency[position[src], position[dst]] == pytest.approx(weight)
        assert adjacency.sum() == pytest.approx(triangle_graph.total_weight)

    def test_transition_rows_are_stochastic_or_zero(self, triangle_graph):
        transition = triangle_graph.to_transition_csr()
        row_sums = np.asarray(transition.sum(axis=1)).ravel()
        ordering, _ = triangle_graph.node_index()
        for node, row_sum in zip(ordering, row_sums):
            if triangle_graph.out_degree(node) > 0:
                assert row_sum == pytest.approx(1.0)
            else:
                assert row_sum == 0.0

    def test_external_position_mapping(self, triangle_graph):
        ordering, position = triangle_graph.node_index()
        # Reverse the ordering and verify weights land where requested.
        reversed_position = {node: len(ordering) - 1 - i for node, i in position.items()}
        adjacency = triangle_graph.to_adjacency_csr(reversed_position)
        assert adjacency[reversed_position["a"], reversed_position["b"]] == pytest.approx(5.0)


class TestNetworkxBridge:
    def test_round_trip(self, triangle_graph):
        nx_graph = triangle_graph.to_networkx()
        back = CommGraph.from_networkx(nx_graph)
        assert back == triangle_graph

    def test_from_networkx_default_weight(self):
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_edge("x", "y")
        graph = CommGraph.from_networkx(nx_graph)
        assert graph.weight("x", "y") == 1.0

    def test_repr_mentions_sizes(self, triangle_graph):
        text = repr(triangle_graph)
        assert "|V|=3" in text and "|E|=4" in text
