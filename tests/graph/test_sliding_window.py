"""Sliding-window aggregator, delta journal and boundary-safe bucketing.

The exactness contract under test: a sequence built by
:meth:`GraphSequence.from_sliding_records` is *identical* — same node
set, same edge weights bit-for-bit, and (for ``window_buckets=1``) even
the same adjacency-row iteration order — to the stateless
:func:`split_records_into_windows` path, while additionally carrying one
:class:`WindowDelta` per transition.
"""

import random

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import aggregate_records
from repro.graph.comm_graph import CommGraph
from repro.graph.delta import WindowDelta
from repro.graph.stream import EdgeRecord
from repro.graph.windows import (
    GraphSequence,
    SlidingWindowAggregator,
    split_records_into_windows,
    window_index_of,
)


def random_trace(seed, num_windows=6, nodes=16, per_window=30, zero_weight_rate=0.1):
    """A churny trace: edges come and go, weights change, nodes churn."""
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    records = []
    for window in range(num_windows):
        # A shifting subset of nodes is active each window -> node churn.
        active = rng.sample(names, rng.randint(nodes // 2, nodes))
        for _ in range(per_window):
            src, dst = rng.sample(active, 2)
            weight = 0.0 if rng.random() < zero_weight_rate else rng.uniform(0.1, 5.0)
            records.append(
                EdgeRecord(time=window + rng.random() * 0.9, src=src, dst=dst, weight=weight)
            )
    records.sort()
    return records


class TestWindowIndexOf:
    # Regression cases found by randomized search: the naive
    # int((t - start) / width) rounds a record sitting exactly on a
    # float-evaluated boundary into the *earlier* window.
    BOUNDARY_CASES = [
        (0.0, 0.7, 6),  # 6 * 0.7 == 4.199999999999999; naive index = 5
        (84.4421851525048, 0.21201704712207997, 32),
        (0.0, 0.7, 29),
        (49.35778664653247, 0.3, 46),
    ]

    @pytest.mark.parametrize("start,width,index", BOUNDARY_CASES)
    def test_boundary_goes_to_later_window(self, start, width, index):
        boundary = start + index * width
        assert window_index_of(boundary, start, width) == index

    def test_interior_times(self):
        assert window_index_of(0.35, 0.0, 0.7) == 0
        assert window_index_of(1.05, 0.0, 0.7) == 1

    def test_randomized_invariant(self):
        # The returned index must satisfy the half-open interval property
        # against the float-evaluated boundaries themselves.
        rng = random.Random(99)
        for _ in range(500):
            start = rng.uniform(-100, 100)
            width = rng.uniform(0.05, 3.0)
            time = start + rng.uniform(0, 50)
            index = window_index_of(time, start, width)
            assert start + index * width <= time
            assert time < start + (index + 1) * width


class TestDeltaJournal:
    def test_coalesces_add_then_remove(self):
        graph = CommGraph([("a", "b", 1.0)])
        graph.begin_delta_journal()
        graph.add_edge("a", "c", 2.0)
        graph.remove_edge("a", "c")
        delta = graph.end_delta_journal()
        assert not delta.changes
        # The endpoint "c" was created and survives as an isolated node.
        assert delta.added_nodes == frozenset({"c"})

    def test_reweight_records_old_and_new(self):
        graph = CommGraph([("a", "b", 1.0)])
        graph.begin_delta_journal()
        graph.set_edge_weight("a", "b", 3.0)
        delta = graph.end_delta_journal()
        (change,) = delta.changes
        assert (change.old_weight, change.new_weight) == (1.0, 3.0)
        assert change.kind == "reweight"
        assert not change.structural

    def test_noop_rewrite_produces_empty_delta(self):
        graph = CommGraph([("a", "b", 1.5)])
        graph.begin_delta_journal()
        graph.set_edge_weight("a", "b", 1.5)
        delta = graph.end_delta_journal()
        assert delta.is_empty

    def test_node_churn_recorded(self):
        graph = CommGraph([("a", "b", 1.0)])
        graph.begin_delta_journal()
        graph.remove_node("b")
        graph.add_node("c")
        delta = graph.end_delta_journal()
        assert delta.removed_nodes == frozenset({"b"})
        assert delta.added_nodes == frozenset({"c"})

    def test_matches_from_graphs_diff(self):
        records = random_trace(7)
        sequence = GraphSequence.from_sliding_records(records, num_windows=6)
        for i, delta in enumerate(sequence.deltas):
            reference = WindowDelta.from_graphs(sequence[i], sequence[i + 1])
            assert set(delta.changes) == set(reference.changes)
            assert delta.added_nodes == reference.added_nodes
            assert delta.removed_nodes == reference.removed_nodes


class TestSlidingEqualsStateless:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_single_bucket_bitwise_and_row_order(self, seed):
        records = random_trace(seed)
        stateless = split_records_into_windows(records, num_windows=6)
        sliding = GraphSequence.from_sliding_records(records, num_windows=6)
        assert len(sliding) == len(stateless)
        for fresh, slid in zip(stateless, sliding):
            assert set(fresh.nodes()) == set(slid.nodes())
            # Same out-rows *in the same iteration order* with bitwise-equal
            # weights: order-sensitive float reductions over the rows must
            # agree across the two construction paths.
            for node in fresh.nodes():
                assert list(fresh.out_neighbors(node).items()) == list(
                    slid.out_neighbors(node).items()
                )
                assert list(fresh.in_neighbors(node).items()) == list(
                    slid.in_neighbors(node).items()
                )

    @pytest.mark.parametrize("seed", [11, 12])
    def test_multi_bucket_matches_reaggregation(self, seed):
        records = random_trace(seed, num_windows=8)
        from repro.graph.windows import _bucketize

        buckets, _ = _bucketize(records, 8, None)
        aggregator = SlidingWindowAggregator(window_buckets=3)
        for index, bucket in enumerate(buckets):
            aggregator.advance(bucket)
            window_records = [
                record
                for chunk in buckets[max(0, index - 2) : index + 1]
                for record in chunk
            ]
            reference = aggregate_records(window_records)
            live = aggregator.graph
            assert set(live.nodes()) == set(reference.nodes())
            for node in reference.nodes():
                assert dict(live.out_neighbors(node)) == dict(
                    reference.out_neighbors(node)
                )

    def test_bipartite_sliding(self):
        rng = random.Random(31)
        records = []
        for window in range(4):
            for _ in range(25):
                records.append(
                    EdgeRecord(
                        time=float(window),
                        src=f"u{rng.randint(0, 7)}",
                        dst=f"t{rng.randint(0, 11)}",
                        weight=rng.uniform(0.5, 2.0),
                    )
                )
        records.sort()
        sliding = GraphSequence.from_sliding_records(
            records, num_windows=4, bipartite=True
        )
        stateless = split_records_into_windows(records, num_windows=4, bipartite=True)
        for fresh, slid in zip(stateless, sliding):
            assert isinstance(slid, BipartiteGraph)
            # Surviving nodes keep their original insertion positions in
            # the maintained graph, so compare partitions as sets.
            assert set(slid.left_nodes) == set(fresh.left_nodes)
            assert set(slid.right_nodes) == set(fresh.right_nodes)
            for node in fresh.nodes():
                assert dict(slid.out_neighbors(node)) == dict(
                    fresh.out_neighbors(node)
                )


class TestStructuralCopy:
    def test_copy_preserves_row_iteration_order(self):
        graph = CommGraph()
        graph.add_edge("a", "z", 1.0)
        graph.add_edge("b", "z", 2.0)
        graph.add_edge("a", "y", 3.0)
        graph.remove_edge("a", "z")
        graph.add_edge("a", "z", 4.0)  # repositioned to the end of a's row
        clone = graph.copy()
        for node in graph.nodes():
            assert list(clone.out_neighbors(node).items()) == list(
                graph.out_neighbors(node).items()
            )
            assert list(clone.in_neighbors(node).items()) == list(
                graph.in_neighbors(node).items()
            )

    def test_copy_is_independent(self):
        graph = CommGraph([("a", "b", 1.0)])
        clone = graph.copy()
        clone.add_edge("a", "c", 2.0)
        assert not graph.has_edge("a", "c")

    def test_bipartite_copy_keeps_partitions(self):
        graph = BipartiteGraph([("u1", "t1", 1.0), ("u2", "t2", 2.0)])
        clone = graph.copy()
        assert isinstance(clone, BipartiteGraph)
        assert clone.left_nodes == graph.left_nodes
        assert clone.right_nodes == graph.right_nodes


class TestCommonNodes:
    def test_delta_tracked_matches_bruteforce(self):
        records = random_trace(21)
        sliding = GraphSequence.from_sliding_records(records, num_windows=6)
        stateless = split_records_into_windows(records, num_windows=6)
        assert sliding.common_nodes() == stateless.common_nodes()

    def test_returns_list_in_first_window_order(self):
        records = random_trace(22)
        sequence = GraphSequence.from_sliding_records(records, num_windows=5)
        common = sequence.common_nodes()
        assert isinstance(common, list)
        order = {node: i for i, node in enumerate(sequence[0].nodes())}
        assert common == sorted(common, key=order.__getitem__)
