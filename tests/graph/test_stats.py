"""Unit tests for graph summary statistics."""

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph.comm_graph import CommGraph
from repro.graph.stats import (
    gini_coefficient,
    in_degree_distribution,
    out_degree_distribution,
    summarize_graph,
)


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_concentrated_values_high(self):
        concentrated = gini_coefficient([0.0, 0.0, 0.0, 100.0])
        assert concentrated == pytest.approx(0.75)

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])

    def test_scale_invariant(self):
        values = [1.0, 2.0, 5.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values])
        )


class TestSummarize:
    def test_triangle_summary(self, triangle_graph):
        summary = summarize_graph(triangle_graph)
        assert summary.num_nodes == 3
        assert summary.num_edges == 4
        assert summary.total_weight == pytest.approx(11.0)
        assert summary.max_out_degree == 2
        assert summary.max_in_degree == 2
        assert summary.mean_edge_weight == pytest.approx(11.0 / 4)
        assert summary.max_edge_weight == 5.0

    def test_as_dict_roundtrip(self, triangle_graph):
        as_dict = summarize_graph(triangle_graph).as_dict()
        assert as_dict["num_nodes"] == 3
        assert set(as_dict) >= {"mean_out_degree", "degree_gini"}

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            summarize_graph(CommGraph())

    def test_isolated_node_graph(self):
        graph = CommGraph()
        graph.add_node("x")
        summary = summarize_graph(graph)
        assert summary.num_edges == 0
        assert summary.mean_edge_weight == 0.0

    def test_enterprise_dataset_is_heavy_tailed(self, tiny_enterprise):
        # The generator must produce the skewed in-degree structure the
        # paper attributes to communication graphs (popular services exist).
        summary = summarize_graph(tiny_enterprise.graphs[0])
        assert summary.degree_gini > 0.4
        assert summary.max_in_degree > 5 * summary.mean_in_degree


class TestDegreeDistributions:
    def test_in_degree_histogram(self, triangle_graph):
        histogram = in_degree_distribution(triangle_graph)
        assert sum(histogram.values()) == 3
        assert histogram[2] == 1  # node 'c' has two in-edges

    def test_out_degree_histogram(self, star_graph):
        histogram = out_degree_distribution(star_graph)
        assert histogram[5] == 1  # the hub
        assert histogram[0] == 5  # the spokes


class TestEffectiveDiameter:
    def test_chain_diameter(self):
        from repro.graph.stats import estimate_effective_diameter

        chain = CommGraph(
            [(f"n{i}", f"n{i+1}", 1.0) for i in range(6)]
        )
        diameter = estimate_effective_diameter(chain, sample_size=7, quantile=1.0)
        assert diameter == 6

    def test_star_diameter(self, star_graph):
        from repro.graph.stats import estimate_effective_diameter

        assert estimate_effective_diameter(star_graph, quantile=1.0) == 2

    def test_symmetrised_distances(self):
        from repro.graph.stats import estimate_effective_diameter

        # Directed chain is traversed as if undirected.
        graph = CommGraph([("a", "b", 1.0), ("c", "b", 1.0)])
        assert estimate_effective_diameter(graph, quantile=1.0) == 2

    def test_enterprise_small_world(self, tiny_enterprise):
        from repro.graph.stats import estimate_effective_diameter

        diameter = estimate_effective_diameter(
            tiny_enterprise.graphs[0], sample_size=10
        )
        # Hosts share popular services: everything is a few hops away.
        assert 2 <= diameter <= 6

    def test_validation(self):
        from repro.exceptions import EmptyGraphError
        from repro.graph.stats import estimate_effective_diameter

        with pytest.raises(EmptyGraphError):
            estimate_effective_diameter(CommGraph())
        with pytest.raises(ValueError):
            estimate_effective_diameter(CommGraph([("a", "b", 1.0)]), quantile=0.0)
