"""Unit tests for time-window splitting and graph sequences."""

import pytest

from repro.exceptions import GraphError
from repro.graph.comm_graph import CommGraph
from repro.graph.stream import EdgeRecord
from repro.graph.windows import GraphSequence, split_records_into_windows


def make_records():
    return [
        EdgeRecord(time=0.0, src="a", dst="b"),
        EdgeRecord(time=1.0, src="a", dst="c"),
        EdgeRecord(time=2.0, src="b", dst="c"),
        EdgeRecord(time=3.0, src="b", dst="d"),
    ]


class TestGraphSequence:
    def test_default_labels(self):
        sequence = GraphSequence(graphs=[CommGraph(), CommGraph()])
        assert sequence.labels == ["window-0", "window-1"]
        assert len(sequence) == 2

    def test_label_mismatch_rejected(self):
        with pytest.raises(GraphError):
            GraphSequence(graphs=[CommGraph()], labels=["a", "b"])

    def test_iteration_and_indexing(self):
        graphs = [CommGraph([("a", "b", 1.0)]), CommGraph([("c", "d", 1.0)])]
        sequence = GraphSequence(graphs=graphs)
        assert sequence[1].weight("c", "d") == 1.0
        assert [g.num_edges for g in sequence] == [1, 1]

    def test_consecutive_pairs(self):
        graphs = [CommGraph(), CommGraph(), CommGraph()]
        sequence = GraphSequence(graphs=graphs)
        pairs = list(sequence.consecutive_pairs())
        assert len(pairs) == 2
        assert pairs[0] == (graphs[0], graphs[1])

    def test_common_nodes(self):
        first = CommGraph([("a", "b", 1.0), ("c", "d", 1.0)])
        second = CommGraph([("a", "b", 1.0), ("x", "y", 1.0)])
        sequence = GraphSequence(graphs=[first, second])
        assert sequence.common_nodes() == ["a", "b"]

    def test_common_nodes_empty_sequence(self):
        assert GraphSequence(graphs=[]).common_nodes() == []


class TestSplitRecords:
    def test_split_by_num_windows(self):
        sequence = split_records_into_windows(make_records(), num_windows=2)
        assert len(sequence) == 2
        # Times 0, 1 go to window 0 (boundary at 1.5); 2, 3 to window 1.
        assert sequence[0].has_edge("a", "b")
        assert sequence[0].has_edge("a", "c")
        assert sequence[1].has_edge("b", "c")
        assert sequence[1].has_edge("b", "d")

    def test_split_by_window_length(self):
        sequence = split_records_into_windows(make_records(), window_length=2.0)
        assert len(sequence) == 2
        assert sequence[0].num_edges == 2

    def test_final_record_lands_in_last_window(self):
        sequence = split_records_into_windows(make_records(), num_windows=4)
        assert sequence[3].has_edge("b", "d")

    def test_single_timestamp_trace(self):
        records = [EdgeRecord(time=5.0, src="a", dst="b")]
        sequence = split_records_into_windows(records, num_windows=3)
        assert len(sequence) == 3
        assert sequence[0].has_edge("a", "b")
        assert sequence[1].num_edges == 0

    def test_bipartite_split(self):
        from repro.graph.bipartite import BipartiteGraph

        sequence = split_records_into_windows(
            make_records()[:2], num_windows=1, bipartite=True
        )
        assert isinstance(sequence[0], BipartiteGraph)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(GraphError):
            split_records_into_windows(make_records())
        with pytest.raises(GraphError):
            split_records_into_windows(make_records(), num_windows=2, window_length=1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(GraphError):
            split_records_into_windows([], num_windows=2)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_num_windows(self, bad):
        with pytest.raises(GraphError):
            split_records_into_windows(make_records(), num_windows=bad)

    @pytest.mark.parametrize("bad", [0.0, -2.0])
    def test_bad_window_length(self, bad):
        with pytest.raises(GraphError):
            split_records_into_windows(make_records(), window_length=bad)

    def test_weights_aggregate_within_window(self):
        records = [
            EdgeRecord(time=0.0, src="a", dst="b", weight=1.0),
            EdgeRecord(time=0.1, src="a", dst="b", weight=2.0),
        ]
        sequence = split_records_into_windows(records, num_windows=1)
        assert sequence[0].weight("a", "b") == pytest.approx(3.0)
