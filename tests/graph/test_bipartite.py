"""Unit tests for the bipartite communication graph."""

import pytest

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph


class TestPartitions:
    def test_edge_assigns_partitions(self, small_bipartite):
        assert set(small_bipartite.left_nodes) == {"u1", "u2"}
        assert set(small_bipartite.right_nodes) == {
            "d-shared",
            "d-private1",
            "d-private2",
        }

    def test_side_lookup(self, small_bipartite):
        assert small_bipartite.side("u1") == "left"
        assert small_bipartite.side("d-shared") == "right"
        with pytest.raises(GraphError):
            small_bipartite.side("unknown")

    def test_explicit_partition_nodes(self):
        graph = BipartiteGraph()
        graph.add_left_node("host")
        graph.add_right_node("dest")
        assert graph.side("host") == "left"
        assert graph.num_nodes == 2

    def test_partition_conflict_rejected(self, small_bipartite):
        with pytest.raises(GraphError):
            small_bipartite.add_left_node("d-shared")
        with pytest.raises(GraphError):
            small_bipartite.add_right_node("u1")


class TestEdgeConstraint:
    def test_right_to_left_edge_rejected(self, small_bipartite):
        with pytest.raises(GraphError):
            small_bipartite.add_edge("d-shared", "u1", 1.0)

    def test_left_to_left_edge_rejected(self, small_bipartite):
        with pytest.raises(GraphError):
            small_bipartite.add_edge("u1", "u2", 1.0)

    def test_valid_edge_accepted(self, small_bipartite):
        small_bipartite.add_edge("u1", "d-private2", 1.0)
        assert small_bipartite.weight("u1", "d-private2") == 1.0

    def test_new_nodes_via_edge_get_sides(self):
        graph = BipartiteGraph()
        graph.add_edge("newhost", "newdest", 2.0)
        assert graph.side("newhost") == "left"
        assert graph.side("newdest") == "right"


class TestCopyRemove:
    def test_copy_preserves_partitions(self, small_bipartite):
        clone = small_bipartite.copy()
        assert isinstance(clone, BipartiteGraph)
        assert clone == small_bipartite
        assert set(clone.left_nodes) == set(small_bipartite.left_nodes)
        # Copies are independent.
        clone.add_edge("u1", "d-new", 1.0)
        assert "d-new" not in small_bipartite

    def test_copy_preserves_isolated_partition_members(self):
        graph = BipartiteGraph()
        graph.add_left_node("silent-host")
        clone = graph.copy()
        assert clone.side("silent-host") == "left"

    def test_remove_node_clears_partition(self, small_bipartite):
        small_bipartite.remove_node("u1")
        assert "u1" not in small_bipartite
        with pytest.raises(GraphError):
            small_bipartite.side("u1")

    def test_repr_mentions_partition_sizes(self, small_bipartite):
        text = repr(small_bipartite)
        assert "|V1|=2" in text and "|V2|=3" in text
