"""Tests for structured JSON-lines event logging (repro.obs.logs)."""

import io
import json
import logging
import threading

import pytest

from repro import obs
from repro.obs.logs import LEVELS, RESERVED_FIELDS, StdlibBridgeHandler


def make_log(buffer=None, **kwargs):
    buffer = buffer if buffer is not None else io.StringIO()
    kwargs.setdefault("run_id", "testrun")
    kwargs.setdefault("clock", lambda: 42.0)
    return obs.EventLog(buffer, **kwargs), buffer


def events_of(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEventLog:
    def test_emits_one_json_object_per_line(self):
        log, buffer = make_log()
        log.emit("pipeline.retry", level="warning", op="read", attempt=2)
        log.emit("pipeline.window", window=0)
        first, second = events_of(buffer)
        assert first["event"] == "pipeline.retry"
        assert first["level"] == "warning"
        assert first["op"] == "read"
        assert first["attempt"] == 2
        assert first["run_id"] == "testrun"
        assert first["ts"] == 42.0
        assert second["event"] == "pipeline.window"
        assert second["level"] == "info"  # default

    def test_sequence_numbers_are_unique_and_ordered(self):
        log, buffer = make_log()
        for index in range(5):
            log.emit("tick", index=index)
        assert [event["seq"] for event in events_of(buffer)] == [0, 1, 2, 3, 4]

    def test_span_path_correlation(self):
        log, buffer = make_log()
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("pipeline.run", scheme="tt"):
                with obs.span("pipeline.window"):
                    log.emit("inside")
            log.emit("outside")
        inside, outside = events_of(buffer)
        assert inside["span"] == "pipeline.run{scheme=tt}/pipeline.window"
        assert outside["span"] == ""

    def test_level_filtering(self):
        log, buffer = make_log(level="warning")
        assert log.emit("quiet", level="debug") is None
        assert log.emit("quiet", level="info") is None
        assert log.emit("loud", level="warning") is not None
        assert log.emit("louder", level="error") is not None
        assert [event["event"] for event in events_of(buffer)] == ["loud", "louder"]

    def test_unknown_level_rejected(self):
        log, _buffer = make_log()
        with pytest.raises(ValueError, match="unknown level"):
            log.emit("x", level="fatal")
        with pytest.raises(ValueError, match="unknown level"):
            obs.EventLog(io.StringIO(), level="fatal")

    def test_reserved_fields_rejected(self):
        log, _buffer = make_log()
        # "event" and "level" are real parameters (duplicating them is a
        # TypeError from Python itself); the rest must be rejected here.
        for reserved in set(RESERVED_FIELDS) - {"event", "level"}:
            with pytest.raises(ValueError, match="reserved"):
                log.emit("x", **{reserved: 1})

    def test_level_helpers(self):
        log, buffer = make_log()
        log.debug("a")
        log.info("b")
        log.warning("c")
        log.error("d")
        assert [event["level"] for event in events_of(buffer)] == [
            "debug", "info", "warning", "error",
        ]

    def test_non_json_fields_stringified(self):
        log, buffer = make_log()
        log.emit("oops", error=ValueError("boom"))
        [event] = events_of(buffer)
        assert event["error"] == "boom"

    def test_concurrent_emitters_produce_parseable_lines(self):
        log, buffer = make_log()

        def hammer(worker):
            for index in range(50):
                log.emit("tick", worker=worker, index=index)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = events_of(buffer)  # raises if any line is torn
        assert len(events) == 200
        assert sorted(event["seq"] for event in events) == list(range(200))

    def test_file_sink_appends_and_read_events_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.EventLog(path, run_id="one", clock=lambda: 1.0) as log:
            log.emit("first")
        with obs.EventLog(path, run_id="two", clock=lambda: 2.0) as log:
            log.emit("second")
        events = obs.read_events(path)
        assert [event["run_id"] for event in events] == ["one", "two"]

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2|not a JSON"):
            obs.read_events(path)

    def test_run_ids_are_distinct_by_default(self):
        first = obs.EventLog(io.StringIO())
        second = obs.EventLog(io.StringIO())
        assert first.run_id != second.run_id
        assert len(first.run_id) == 12


class BrokenSink(io.StringIO):
    """A sink whose writes fail after the first ``good`` events (disk full)."""

    def __init__(self, good=0):
        super().__init__()
        self.good = good
        self.writes = 0

    def write(self, text):
        self.writes += 1
        if self.writes > self.good:
            raise OSError("injected: no space left on device")
        return super().write(text)


class TestBestEffortEmit:
    def test_broken_sink_never_raises(self):
        log, _sink = make_log(BrokenSink())
        assert log.emit("pipeline.window", window=0) is None
        assert log.emit("pipeline.window", window=1) is None
        assert log.dropped_events == 2

    def test_drops_are_counted_on_active_registry(self):
        registry = obs.MetricsRegistry()
        log, _sink = make_log(BrokenSink())
        with obs.use_registry(registry):
            log.emit("a")
            log.emit("b")
            log.emit("c")
        assert log.dropped_events == 3
        assert registry.counter_value("log.dropped_events") == 3

    def test_instrumented_run_survives_sink_death_mid_run(self):
        # The regression: a sink dying part-way through must lose only the
        # later events — everything already written stays intact and the
        # run continues emitting without an exception.
        sink = BrokenSink(good=2)
        log, _ = make_log(sink)
        log.emit("pipeline.window", window=0)
        log.emit("pipeline.window", window=1)
        for window in range(2, 6):
            assert log.emit("pipeline.window", window=window) is None
        kept = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [event["window"] for event in kept] == [0, 1]
        assert log.dropped_events == 4

    def test_flush_failure_counts_as_dropped(self):
        class FlushBomb(io.StringIO):
            def flush(self):
                raise OSError("injected flush failure")

        log, _sink = make_log(FlushBomb())
        assert log.emit("a") is None
        assert log.dropped_events == 1

    def test_healthy_sink_drops_nothing(self):
        log, buffer = make_log()
        log.emit("a")
        log.emit("b")
        assert log.dropped_events == 0
        assert len(events_of(buffer)) == 2


class TestActiveLogRouting:
    def test_module_emit_is_noop_without_active_log(self):
        assert obs.emit("anything", x=1) is None
        assert obs.get_event_log() is obs.NULL_EVENT_LOG
        assert not obs.get_event_log().enabled

    def test_use_event_log_scopes_routing(self):
        log, buffer = make_log()
        with obs.use_event_log(log):
            obs.emit("inside")
        obs.emit("outside")
        assert [event["event"] for event in events_of(buffer)] == ["inside"]

    def test_null_log_helpers_are_noops(self):
        null = obs.NULL_EVENT_LOG
        assert null.emit("x") is None
        assert null.debug("x") is None
        assert null.info("x") is None
        assert null.warning("x") is None
        assert null.error("x") is None
        null.close()


class TestStdlibBridge:
    def test_stdlib_records_forward_to_active_log(self):
        log, buffer = make_log()
        logger = logging.getLogger("repro.test.bridge")
        logger.setLevel(logging.INFO)
        handler = obs.attach_stdlib(logger)
        try:
            with obs.use_event_log(log):
                logger.warning("disk %s is full", "sda")
        finally:
            logger.removeHandler(handler)
        [event] = events_of(buffer)
        assert event["event"] == "log.repro.test.bridge"
        assert event["level"] == "warning"
        assert event["message"] == "disk sda is full"

    def test_bridge_is_noop_without_active_log(self):
        handler = StdlibBridgeHandler()
        record = logging.LogRecord(
            "x", logging.INFO, __file__, 1, "hello", (), None
        )
        assert handler.forward(record) is None

    def test_level_mapping(self):
        log, buffer = make_log()
        handler = StdlibBridgeHandler()
        with obs.use_event_log(log):
            for levelno in (logging.DEBUG, logging.INFO, logging.WARNING,
                            logging.ERROR, logging.CRITICAL):
                handler.forward(logging.LogRecord(
                    "m", levelno, __file__, 1, "msg", (), None
                ))
        assert [event["level"] for event in events_of(buffer)] == [
            "debug", "info", "warning", "error", "error",
        ]
