"""Tests for the JSON/Prometheus exporters and the payload validator."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    SCHEMA_ID,
    build_payload,
    format_profile_report,
    to_prometheus,
    validate_payload,
    write_json,
    write_prometheus,
)


def sample_registry() -> obs.MetricsRegistry:
    registry = obs.MetricsRegistry()
    registry.counter("kernel.calls", op="pairwise", path="batch").inc(3)
    registry.gauge("parallel.workers").set(4)
    registry.histogram("retry.delay_s", buckets=(0.1, 1.0)).observe(0.5)
    with obs.use_registry(registry):
        with obs.span("experiment", dataset="network"):
            with obs.span("cell", scheme="TT", pairs=100):
                pass
            with obs.span("cell", scheme="UT", pairs=50):
                pass
    return registry


class TestBuildPayload:
    def test_sections_and_rendered_keys(self):
        payload = build_payload(sample_registry().snapshot(), meta={"command": "fig1"})
        assert payload["schema"] == SCHEMA_ID
        assert payload["meta"] == {"command": "fig1"}
        assert payload["counters"] == {
            "kernel.calls{op=pairwise,path=batch}": 3.0
        }
        assert payload["gauges"] == {"parallel.workers": 4.0}
        assert set(payload["histograms"]) == {"retry.delay_s"}

    def test_span_tree_is_nested(self):
        payload = build_payload(sample_registry().snapshot())
        [root] = payload["spans"]
        assert root["name"] == "experiment{dataset=network}"
        children = {child["name"]: child for child in root["children"]}
        assert set(children) == {"cell{scheme=TT}", "cell{scheme=UT}"}
        assert children["cell{scheme=TT}"]["values"] == {"pairs": 100.0}

    def test_validates_clean(self):
        payload = build_payload(sample_registry().snapshot(), meta={})
        assert validate_payload(payload) == []

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "obs.json"
        written = write_json(path, sample_registry().snapshot(), meta={"n": 1})
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_payload(loaded) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_payload([]) == ["payload must be an object"]

    def test_rejects_wrong_schema_id(self):
        payload = build_payload(obs.MetricsRegistry().snapshot())
        payload["schema"] = "something/else"
        assert any("schema must be" in error for error in validate_payload(payload))

    def test_rejects_non_numeric_counter(self):
        payload = build_payload(obs.MetricsRegistry().snapshot())
        payload["counters"]["bad"] = "three"
        assert any("must be a number" in error for error in validate_payload(payload))

    def test_rejects_histogram_count_mismatch(self):
        registry = obs.MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = build_payload(registry.snapshot())
        payload["histograms"]["h"]["count"] = 99
        assert any("sum to count" in error for error in validate_payload(payload))

    def test_rejects_unsorted_histogram_buckets(self):
        registry = obs.MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        payload = build_payload(registry.snapshot())
        payload["histograms"]["h"]["buckets"] = [2.0, 1.0]
        assert any("sorted" in error for error in validate_payload(payload))

    def test_rejects_span_timing_violation(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("root"):
                pass
        payload = build_payload(registry.snapshot())
        payload["spans"][0]["min_s"] = 100.0
        assert any("timing invariant" in error for error in validate_payload(payload))

    def test_rejects_zero_count_span(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("root"):
                pass
        payload = build_payload(registry.snapshot())
        payload["spans"][0]["count"] = 0
        assert any("count must be >= 1" in error for error in validate_payload(payload))


class TestPrometheus:
    def test_counter_gauge_lines(self):
        text = to_prometheus(sample_registry().snapshot())
        assert "# TYPE repro_kernel_calls_total counter" in text
        assert 'repro_kernel_calls_total{op="pairwise",path="batch"} 3' in text
        assert "repro_parallel_workers 4" in text

    def test_histogram_is_cumulative(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("delay", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            histogram.observe(value)
        text = to_prometheus(registry.snapshot())
        assert 'repro_delay_bucket{le="1"} 1' in text
        assert 'repro_delay_bucket{le="10"} 2' in text
        assert 'repro_delay_bucket{le="+Inf"} 3' in text
        assert "repro_delay_count 3" in text

    def test_spans_exported_as_summaries(self):
        text = to_prometheus(sample_registry().snapshot())
        assert (
            'repro_span_seconds_count{path="experiment{dataset=network}/'
            'cell{scheme=TT}"} 1' in text
        )

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_prometheus(path, sample_registry().snapshot())
        assert path.read_text() == text
        assert text.endswith("\n")


def busy_work() -> float:
    total = 0.0
    for i in range(20000):
        total += i * 0.5
    return total


class TestProfiling:
    def test_hotspots_captured_on_opted_in_span(self):
        registry = obs.MetricsRegistry(profile=True, profile_top=5)
        with obs.use_registry(registry):
            with obs.span("hot", profile=True):
                busy_work()
        [record] = registry.snapshot()["spans"]
        hotspots = record["hotspots"]
        assert hotspots is not None
        assert len(hotspots) <= 5
        assert any("busy_work" in row[0] for row in hotspots)

    def test_no_capture_when_registry_profiling_off(self):
        registry = obs.MetricsRegistry(profile=False)
        with obs.use_registry(registry):
            with obs.span("hot", profile=True):
                busy_work()
        [record] = registry.snapshot()["spans"]
        assert record["hotspots"] is None

    def test_no_capture_when_span_not_opted_in(self):
        registry = obs.MetricsRegistry(profile=True)
        with obs.use_registry(registry):
            with obs.span("cold"):
                busy_work()
        [record] = registry.snapshot()["spans"]
        assert record["hotspots"] is None

    def test_profile_report_lists_hotspot_table(self):
        registry = obs.MetricsRegistry(profile=True)
        with obs.use_registry(registry):
            with obs.span("hot", profile=True):
                busy_work()
        report = format_profile_report(build_payload(registry.snapshot()))
        assert "hot (" in report
        assert "busy_work" in report

    def test_profile_report_empty_message(self):
        payload = build_payload(obs.MetricsRegistry().snapshot())
        assert "no profiled spans" in format_profile_report(payload)


class TestPrometheusLabelEscaping:
    """Regression tests for raw label-value interpolation: `\\`, `"` and
    newlines must be escaped per the exposition format (they used to pass
    through raw, producing unparseable scrape output)."""

    def test_double_quote_escaped(self):
        registry = obs.MetricsRegistry()
        registry.counter("evil", label='say "hi"').inc()
        text = to_prometheus(registry.snapshot())
        assert 'label="say \\"hi\\""' in text
        assert obs.validate_prometheus(text) == []

    def test_backslash_escaped(self):
        registry = obs.MetricsRegistry()
        registry.counter("evil", path="C:\\temp\\x").inc()
        text = to_prometheus(registry.snapshot())
        assert 'path="C:\\\\temp\\\\x"' in text
        assert obs.validate_prometheus(text) == []

    def test_newline_escaped(self):
        registry = obs.MetricsRegistry()
        registry.counter("evil", note="line1\nline2").inc()
        text = to_prometheus(registry.snapshot())
        # One sample line, with a literal backslash-n escape sequence.
        [sample] = [line for line in text.splitlines() if line.startswith("repro_evil")]
        assert 'note="line1\\nline2"' in sample
        assert obs.validate_prometheus(text) == []

    def test_escaping_applies_to_span_paths_and_histograms(self):
        registry = obs.MetricsRegistry()
        registry.histogram("lat", label='q="x"').observe(0.01)
        with obs.use_registry(registry):
            with obs.span("cell", scheme='S"1"'):
                pass
        text = to_prometheus(registry.snapshot())
        assert obs.validate_prometheus(text) == []
        assert '\\"x\\"' in text
        assert '\\"1\\"' in text


class TestValidatePrometheus:
    def test_accepts_exporter_output(self):
        text = to_prometheus(sample_registry().snapshot())
        assert obs.validate_prometheus(text) == []

    def test_rejects_raw_quote_in_label(self):
        bad = 'metric{label="say "hi""} 1\n'
        assert obs.validate_prometheus(bad)

    def test_rejects_garbage_line(self):
        assert obs.validate_prometheus("not a metric line at all!\n")

    def test_rejects_unparseable_value(self):
        assert obs.validate_prometheus("metric twelve\n")

    def test_rejects_non_cumulative_histogram(self):
        bad = (
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        problems = obs.validate_prometheus(bad)
        assert any("not cumulative" in problem for problem in problems)

    def test_rejects_missing_inf_bucket(self):
        bad = 'h_bucket{le="0.1"} 5\n'
        problems = obs.validate_prometheus(bad)
        assert any("+Inf" in problem for problem in problems)

    def test_rejects_inf_bucket_count_mismatch(self):
        bad = (
            'h_bucket{le="0.1"} 2\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 4\n"
        )
        problems = obs.validate_prometheus(bad)
        assert any("!= _count" in problem for problem in problems)

    def test_rejects_malformed_type_comment(self):
        assert obs.validate_prometheus("# TYPE weird kind-of-thing\n")

    def test_accepts_special_values(self):
        assert obs.validate_prometheus("m 1.5e-3\nn +Inf\no NaN\n") == []


def digest_registry() -> obs.MetricsRegistry:
    registry = obs.MetricsRegistry()
    digest = registry.digest("service.latency_s", endpoint="/similar")
    for value in (0.010, 0.020, 0.040, 0.080, 0.500):
        digest.observe(value)
    return registry


class TestDigestExport:
    def test_payload_carries_states_and_quantiles(self):
        payload = build_payload(digest_registry().snapshot())
        assert validate_payload(payload) == []
        entries = payload["digests"]
        assert list(entries) == ["service.latency_s{endpoint=/similar}"]
        entry = entries["service.latency_s{endpoint=/similar}"]
        assert entry["count"] == 5
        quantiles = entry["quantiles"]
        assert quantiles["p50"] == pytest.approx(0.040, rel=0.011)
        assert quantiles["p99"] == pytest.approx(0.500, rel=0.011)

    def test_payload_omits_digests_when_absent(self):
        payload = build_payload(sample_registry().snapshot())
        assert "digests" not in payload
        assert validate_payload(payload) == []

    def test_payload_round_trips_through_json(self, tmp_path):
        path = tmp_path / "payload.json"
        write_json(path, digest_registry().snapshot())
        restored = json.loads(path.read_text())
        assert validate_payload(restored) == []
        (state,) = restored["digests"].values()
        merged = obs.merge_digest_states([state, state])
        assert merged.count == 10

    def test_prometheus_summary_lines(self):
        text = to_prometheus(digest_registry().snapshot())
        assert obs.validate_prometheus(text) == []
        assert "# TYPE repro_service_latency_s summary" in text
        assert (
            'repro_service_latency_s{endpoint="/similar",quantile="0.5"}' in text
        )
        assert 'repro_service_latency_s_count{endpoint="/similar"} 5' in text
        assert 'repro_service_latency_s_sum{endpoint="/similar"}' in text

    def test_validate_payload_rejects_corrupt_digest(self):
        payload = build_payload(digest_registry().snapshot())
        (entry,) = payload["digests"].values()
        entry["count"] = 99  # buckets no longer sum to count
        assert any(
            "digest" in problem for problem in validate_payload(payload)
        )

    def test_validate_payload_rejects_bad_accuracy(self):
        payload = build_payload(digest_registry().snapshot())
        (entry,) = payload["digests"].values()
        entry["relative_accuracy"] = 1.5
        assert validate_payload(payload)


class TestValidatePrometheusSummaries:
    def test_rejects_quantile_label_out_of_range(self):
        bad = 's{quantile="1.5"} 3\ns_count 1\n'
        problems = obs.validate_prometheus(bad)
        assert any("quantile" in problem for problem in problems)

    def test_rejects_non_monotone_quantile_values(self):
        bad = (
            's{quantile="0.5"} 5\n'
            's{quantile="0.99"} 3\n'
            "s_count 2\n"
        )
        problems = obs.validate_prometheus(bad)
        assert any("non-decreasing" in problem for problem in problems)

    def test_rejects_summary_without_count(self):
        bad = 's{quantile="0.5"} 3\n'
        problems = obs.validate_prometheus(bad)
        assert any("_count" in problem for problem in problems)

    def test_accepts_well_formed_summary(self):
        good = (
            's{quantile="0.5"} 3\n'
            's{quantile="0.99"} 7\n'
            "s_sum 10\n"
            "s_count 2\n"
        )
        assert obs.validate_prometheus(good) == []
