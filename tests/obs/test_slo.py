"""Tests for declarative SLOs and error-budget burn rates (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.obs import (
    KIND_AVAILABILITY,
    KIND_LATENCY,
    AlertManager,
    SLOTracker,
    ServiceObjective,
    burn_rate_rule,
)


class ManualClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def latency_slo(**kwargs) -> ServiceObjective:
    defaults = dict(
        name="similar-p99",
        endpoint="/similar",
        kind=KIND_LATENCY,
        quantile=0.99,
        threshold_s=0.1,
    )
    defaults.update(kwargs)
    return ServiceObjective(**defaults)


def availability_slo(**kwargs) -> ServiceObjective:
    defaults = dict(name="availability", kind=KIND_AVAILABILITY, target=0.999)
    defaults.update(kwargs)
    return ServiceObjective(**defaults)


class TestServiceObjective:
    def test_error_budget(self):
        assert latency_slo().error_budget == pytest.approx(0.01)
        assert availability_slo().error_budget == pytest.approx(0.001)

    def test_matching(self):
        assert latency_slo().matches("/similar")
        assert not latency_slo().matches("/signature")
        assert availability_slo().matches("/anything")

    def test_badness_semantics(self):
        slo = latency_slo(threshold_s=0.1)
        assert not slo.is_bad(0.05, ok=True)
        assert slo.is_bad(0.15, ok=True)  # slow spends latency budget
        assert slo.is_bad(0.05, ok=False)  # errors always spend it
        avail = availability_slo()
        assert not avail.is_bad(99.0, ok=True)  # slow but up: fine
        assert avail.is_bad(0.001, ok=False)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceObjective(name="x", kind="throughput")
        with pytest.raises(ValueError):
            latency_slo(quantile=1.0)
        with pytest.raises(ValueError):
            latency_slo(threshold_s=0.0)
        with pytest.raises(ValueError):
            availability_slo(target=0.0)

    def test_describe_shapes(self):
        latency = latency_slo().describe()
        assert latency["threshold_s"] == 0.1
        assert "target" not in latency
        avail = availability_slo().describe()
        assert avail["target"] == 0.999
        assert "threshold_s" not in avail


class TestSLOTracker:
    def make(self, *objectives, windows=(10.0, 60.0), alert_manager=None):
        clock = ManualClock()
        tracker = SLOTracker(
            objectives or (latency_slo(), availability_slo()),
            windows_s=windows,
            clock=clock,
            alert_manager=alert_manager,
        )
        return tracker, clock

    def test_burn_rate_math(self):
        """10% bad traffic against a 1% budget burns at exactly 10x."""
        tracker, clock = self.make(latency_slo())
        for index in range(100):
            slow = index < 10
            tracker.record("/similar", 0.5 if slow else 0.01, ok=True)
            clock.advance(0.05)
        report = tracker.evaluate()
        entry = report["objectives"][0]
        assert entry["verdict"] == "fail"
        for window in entry["windows"]:
            assert window["total"] == 100
            assert window["bad"] == 10
            assert window["burn_rate"] == pytest.approx(10.0)
        assert entry["burn_rate"] == pytest.approx(10.0)
        assert entry["worst_burn_rate"] == pytest.approx(10.0)

    def test_within_budget_passes(self):
        tracker, clock = self.make(latency_slo())
        for _ in range(500):
            tracker.record("/similar", 0.01, ok=True)
            clock.advance(0.01)
        tracker.record("/similar", 0.5, ok=True)  # 1 slow in 501: under 1%
        entry = tracker.evaluate()["objectives"][0]
        assert entry["verdict"] == "pass"
        assert 0.0 < entry["worst_burn_rate"] <= 1.0

    def test_endpoint_scoping(self):
        tracker, _clock = self.make(latency_slo(), availability_slo())
        tracker.record("/signature", 9.9, ok=False)  # not /similar
        report = {e["name"]: e for e in tracker.evaluate()["objectives"]}
        assert report["similar-p99"]["windows"][0]["total"] == 0
        assert report["availability"]["windows"][0]["bad"] == 1

    def test_empty_window_burns_nothing(self):
        tracker, _clock = self.make()
        for entry in tracker.evaluate()["objectives"]:
            assert entry["burn_rate"] == 0.0
            assert entry["verdict"] == "pass"

    def test_windows_roll_off(self):
        """A burst ages out of the short window first, then the long one —
        the alerting burn (min across windows) drops as soon as the short
        window clears."""
        tracker, clock = self.make(availability_slo(), windows=(10.0, 120.0))
        for _ in range(20):
            tracker.record("/similar", 0.01, ok=False)
        entry = tracker.evaluate()["objectives"][0]
        assert entry["burn_rate"] > 1.0  # burning in both windows
        clock.advance(30.0)
        entry = tracker.evaluate()["objectives"][0]
        short, long = entry["windows"]
        assert short["total"] == 0 and short["burn_rate"] == 0.0
        assert long["bad"] == 20
        assert entry["burn_rate"] == 0.0  # min: short window recovered
        assert entry["worst_burn_rate"] > 1.0
        clock.advance(200.0)
        entry = tracker.evaluate()["objectives"][0]
        assert entry["worst_burn_rate"] == 0.0  # fully aged out

    def test_bucket_pruning_bounds_memory(self):
        tracker, clock = self.make(availability_slo(), windows=(10.0, 30.0))
        for _ in range(500):
            tracker.record("/x", 0.01, ok=True)
            clock.advance(1.0)
        series = tracker._buckets["availability"]
        assert len(series) <= int(30.0 / tracker.bucket_s) + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTracker([latency_slo(), latency_slo()])  # duplicate names
        with pytest.raises(ValueError):
            SLOTracker([latency_slo()], windows_s=())
        with pytest.raises(ValueError):
            SLOTracker([latency_slo()], bucket_s=0.0)

    def test_alert_manager_wiring(self):
        """Sustained burn in all windows trips the debounced rule; the
        report carries the firing alerts."""
        objective = availability_slo(target=0.99)
        manager = AlertManager([burn_rate_rule(objective)])
        tracker, clock = self.make(
            objective, windows=(5.0, 20.0), alert_manager=manager
        )
        for _ in range(50):
            tracker.record("/similar", 0.01, ok=False)
        first = tracker.evaluate()
        assert first["alerts_firing"] == []  # debounced: needs 2 samples
        clock.advance(1.0)
        for _ in range(50):
            tracker.record("/similar", 0.01, ok=False)
        second = tracker.evaluate()
        assert "slo-availability" in second["alerts_firing"]


class TestBurnRateRule:
    def test_rule_shape(self):
        rule = burn_rate_rule(latency_slo(), burn_threshold=2.0, level="error")
        assert rule.name == "slo-similar-p99"
        assert rule.metric == "slo.similar-p99.burn_rate"
        assert rule.threshold == 2.0
        assert rule.level == "error"
