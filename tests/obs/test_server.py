"""Tests for the live /metrics endpoint, including scrape-during-update.

The concurrency test is the acceptance check for the live layer: a thread
hammering ``/metrics`` while a fig1 run mutates the registry must always
receive parseable exposition text with internally consistent histograms
(snapshots are taken under the registry lock, so a scrape can never see a
half-updated bucket array).
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObsServer


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry()
    registry.counter("pipeline.windows", mode="exact").inc(2)
    registry.gauge("parallel.workers").set(3)
    registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)
    return registry


@pytest.fixture
def server(registry):
    store = obs.TimeSeriesStore()
    store.sample(registry, t=1.0)
    with ObsServer(registry, store=store, meta={"command": "test"}) as server:
        yield server


class TestRoutes:
    def test_metrics_is_valid_prometheus(self, server):
        status, headers, body = get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert obs.validate_prometheus(body) == []
        assert "repro_pipeline_windows_total" in body

    def test_healthz(self, server):
        status, _headers, body = get(f"{server.url}/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["requests"] >= 1
        assert health["series"] > 0

    def test_snapshot_json_is_schema_valid(self, server):
        _status, _headers, body = get(f"{server.url}/snapshot.json")
        payload = json.loads(body)
        assert payload["meta"] == {"command": "test"}
        assert obs.validate_payload(payload) == []

    def test_series_json(self, server):
        _status, _headers, body = get(f"{server.url}/series.json")
        series = json.loads(body)["series"]
        assert series["parallel.workers"] == [[1.0, 3.0]]

    def test_series_json_without_store(self, registry):
        with ObsServer(registry) as server:
            _status, _headers, body = get(f"{server.url}/series.json")
            assert json.loads(body) == {"series": {}}

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(f"{server.url}/nope")
        assert excinfo.value.code == 404
        assert "/metrics" in excinfo.value.read().decode()

    def test_scrapes_are_counted_on_the_registry(self, registry, server):
        get(f"{server.url}/metrics")
        assert registry.counter_value("obs.server.requests", route="/metrics") >= 1


class TestLifecycle:
    def test_ephemeral_port_bound_and_reported(self, registry):
        server = ObsServer(registry, port=0)
        server.start()
        try:
            assert server.port != 0
            assert server.running
        finally:
            server.stop()
        assert not server.running

    def test_double_start_rejected(self, registry):
        with ObsServer(registry) as server:
            with pytest.raises(RuntimeError):
                server.start()

    def test_stop_is_idempotent(self, registry):
        server = ObsServer(registry).start()
        server.stop()
        server.stop()

    def test_lifecycle_logged(self, registry):
        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="r", clock=lambda: 0.0)
        with obs.use_event_log(log):
            with ObsServer(registry):
                pass
        events = [json.loads(line)["event"] for line in buffer.getvalue().splitlines()]
        assert events == ["obs.server.started", "obs.server.stopped"]

    def test_internal_error_answers_500(self, registry):
        class ExplodingRegistry:
            def counter(self, name, **labels):
                return registry.counter(name, **labels)

            def snapshot(self):
                raise RuntimeError("kaboom")

        with ObsServer(ExplodingRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{server.url}/metrics")
            assert excinfo.value.code == 500
            assert "kaboom" in excinfo.value.read().decode()


class TestScrapeDuringUpdate:
    """Satellite: concurrent scrape while a real experiment mutates the
    registry must always yield parseable, internally consistent text."""

    def test_fig1_run_under_scrape_hammer(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig1_properties import run_fig1

        registry = obs.MetricsRegistry()
        scrapes = []
        errors = []
        done = threading.Event()

        with ObsServer(registry) as server:
            def hammer():
                while not done.is_set():
                    try:
                        _status, _headers, body = get(f"{server.url}/metrics")
                    except Exception as error:  # noqa: BLE001 - recorded below
                        errors.append(repr(error))
                        return
                    scrapes.append(body)

            scraper = threading.Thread(target=hammer)
            scraper.start()
            try:
                with obs.use_registry(registry):
                    run_fig1("network", ExperimentConfig(scale="small"))
            finally:
                done.set()
                scraper.join()
            final = get(f"{server.url}/metrics")[2]

        assert not errors, f"scrape failed mid-run: {errors}"
        assert len(scrapes) > 0
        for body in scrapes + [final]:
            problems = obs.validate_prometheus(body)
            assert problems == [], f"inconsistent scrape: {problems}"
        # The run actually produced kernel traffic visible to scrapers.
        assert "repro_kernel_calls_total" in final

    def test_direct_mutation_under_scrape_hammer(self):
        """Cheaper variant hammering a histogram + counters directly."""
        registry = obs.MetricsRegistry()
        done = threading.Event()
        bad = []

        def mutate():
            histogram = registry.histogram("work", buckets=(0.01, 0.1, 1.0))
            counter = registry.counter("work.calls")
            step = 0
            while not done.is_set():
                histogram.observe((step % 7) / 5.0)
                counter.inc()
                step += 1

        with ObsServer(registry) as server:
            writer = threading.Thread(target=mutate)
            writer.start()
            try:
                for _ in range(30):
                    body = get(f"{server.url}/metrics")[2]
                    problems = obs.validate_prometheus(body)
                    if problems:
                        bad.append(problems)
            finally:
                done.set()
                writer.join()
        assert bad == []
