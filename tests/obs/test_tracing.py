"""Tests for request-scoped tracing (repro.obs.tracing) and its EventLog
and registry integrations."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import (
    RequestContext,
    TraceStore,
    current_trace,
    new_trace_id,
    trace_span,
    use_trace,
)


class ManualClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRequestContext:
    def test_trace_and_request_ids(self):
        context = RequestContext()
        assert len(context.trace_id) == 32
        assert len(context.request_id) == 16
        assert RequestContext(trace_id="abc123").trace_id == "abc123"
        assert new_trace_id() != new_trace_id()

    def test_span_tree_nests_by_with_blocks(self):
        clock = ManualClock()
        context = RequestContext(clock=clock, endpoint="/similar")
        with context.span("service.request"):
            clock.advance(0.010)
            with context.span("shard.query", shard="0"):
                clock.advance(0.005)
            with context.span("shard.query", shard="1"):
                clock.advance(0.007)
        context.finish()
        record = context.to_dict()
        assert record["attrs"] == {"endpoint": "/similar"}
        assert record["duration_s"] == pytest.approx(0.022)
        root = record["spans"]
        assert root["name"] == "service.request"
        assert [c["attrs"]["shard"] for c in root["children"]] == ["0", "1"]
        assert root["children"][0]["duration_s"] == pytest.approx(0.005)
        assert root["children"][1]["start_s"] == pytest.approx(0.015)

    def test_span_error_annotation(self):
        context = RequestContext()
        with pytest.raises(RuntimeError):
            with context.span("root"):
                with context.span("child"):
                    raise RuntimeError("shard crashed")
        root = context.to_dict()["spans"]
        assert root["error"] == "RuntimeError: shard crashed"
        assert root["children"][0]["error"] == "RuntimeError: shard crashed"

    def test_deadline_budget(self):
        clock = ManualClock()
        context = RequestContext(deadline_s=0.1, clock=clock)
        assert context.remaining() == pytest.approx(0.1)
        assert not context.expired()
        clock.advance(0.25)
        assert context.expired()
        assert context.remaining() == pytest.approx(-0.15)
        assert RequestContext(clock=clock).remaining() is None

    def test_to_dict_is_json_plain(self):
        context = RequestContext()
        with context.span("a"):
            pass
        context.finish()
        json.dumps(context.to_dict())


class TestContextVar:
    def test_use_trace_scopes_current(self):
        assert current_trace() is None
        context = RequestContext()
        with use_trace(context):
            assert current_trace() is context
            with use_trace(None):
                assert current_trace() is None
            assert current_trace() is context
        assert current_trace() is None

    def test_trace_span_records_to_trace_and_registry(self):
        registry = obs.MetricsRegistry()
        context = RequestContext()
        with obs.use_registry(registry), use_trace(context):
            with trace_span("shard.query", shard="0") as node:
                assert node is not None
        assert context.to_dict()["spans"]["name"] == "shard.query"
        spans = registry.snapshot()["spans"]
        assert any(entry["path"] == ["shard.query{shard=0}"] for entry in spans)

    def test_trace_span_without_trace_degrades_to_registry_span(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with trace_span("lonely") as node:
                assert node is None
        assert any(
            e["path"] == ["lonely"] for e in registry.snapshot()["spans"]
        )

    def test_threads_do_not_inherit_sibling_traces(self):
        seen = {}

        def worker():
            seen["trace"] = current_trace()

        with use_trace(RequestContext()):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["trace"] is None


class TestTraceStore:
    def test_round_trip_and_ids(self):
        store = TraceStore(capacity=4)
        context = RequestContext()
        with context.span("root"):
            pass
        context.finish()
        store.put(context)
        assert store.get(context.trace_id)["spans"]["name"] == "root"
        assert store.ids() == (context.trace_id,)
        assert store.get("missing") is None

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=3)
        contexts = [RequestContext() for _ in range(5)]
        for context in contexts:
            store.put(context)
        assert len(store) == 3
        assert store.get(contexts[0].trace_id) is None
        assert store.get(contexts[1].trace_id) is None
        assert store.get(contexts[4].trace_id) is not None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestEventLogStamping:
    def make_log(self):
        buffer = io.StringIO()
        return obs.EventLog(buffer, run_id="r", clock=lambda: 1.0), buffer

    def test_events_carry_trace_and_request_ids(self):
        log, buffer = self.make_log()
        context = RequestContext()
        with use_trace(context):
            log.emit("shard.query", shard=0)
        log.emit("outside")
        inside, outside = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert inside["trace_id"] == context.trace_id
        assert inside["request_id"] == context.request_id
        assert "trace_id" not in outside
        assert "request_id" not in outside

    def test_read_events_filters_by_trace(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.EventLog(path, run_id="r") as log:
            first, second = RequestContext(), RequestContext()
            with use_trace(first):
                log.emit("a")
                log.emit("b")
            with use_trace(second):
                log.emit("c")
            log.emit("untagged")
        assert len(list(obs.read_events(path))) == 4
        hits = list(obs.read_events(path, trace_id=first.trace_id))
        assert [event["event"] for event in hits] == ["a", "b"]
        assert list(obs.read_events(path, trace_id="nope")) == []

    def test_trace_fields_are_reserved(self):
        from repro.obs.logs import RESERVED_FIELDS

        assert "trace_id" in RESERVED_FIELDS
        assert "request_id" in RESERVED_FIELDS
        log, _buffer = self.make_log()
        with pytest.raises(ValueError):
            log.emit("bad", trace_id="spoofed")
