"""Unit tests for the metrics registry: instruments, spans, merging."""

import pickle

import pytest

from repro import obs
from repro.obs.registry import render_key


class TestRenderKey:
    def test_bare_name(self):
        assert render_key("kernel.calls", ()) == "kernel.calls"

    def test_labels_in_given_order(self):
        key = render_key("kernel.calls", (("op", "pairwise"), ("path", "batch")))
        assert key == "kernel.calls{op=pairwise,path=batch}"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = obs.MetricsRegistry()
        assert registry.counter_value("hits") == 0.0
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.5)
        assert registry.counter_value("hits") == 3.5

    def test_labels_partition_the_counts(self):
        registry = obs.MetricsRegistry()
        registry.counter("calls", path="batch").inc(3)
        registry.counter("calls", path="scalar").inc()
        assert registry.counter_value("calls", path="batch") == 3
        assert registry.counter_value("calls", path="scalar") == 1
        assert registry.counter_total("calls") == 4

    def test_label_order_does_not_matter(self):
        registry = obs.MetricsRegistry()
        registry.counter("calls", a="1", b="2").inc()
        registry.counter("calls", b="2", a="1").inc()
        assert registry.counter_value("calls", a="1", b="2") == 2

    def test_negative_increment_rejected(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("hits").inc(-1)

    def test_counters_flat_renders_and_filters(self):
        registry = obs.MetricsRegistry()
        registry.counter("kernel.calls", op="pairwise").inc(2)
        registry.counter("pipeline.retries").inc()
        flat = registry.counters_flat("kernel.")
        assert flat == {"kernel.calls{op=pairwise}": 2.0}


class TestGauge:
    def test_set_overwrites(self):
        registry = obs.MetricsRegistry()
        registry.gauge("workers").set(4)
        registry.gauge("workers").set(2)
        snapshot = registry.snapshot()
        assert snapshot["gauges"] == [["workers", {}, 2.0]]

    def test_merge_takes_max(self):
        first = obs.MetricsRegistry()
        second = obs.MetricsRegistry()
        first.gauge("workers").set(2)
        second.gauge("workers").set(5)
        first.merge(second.snapshot())
        assert first.snapshot()["gauges"] == [["workers", {}, 5.0]]


class TestHistogram:
    def test_bucket_assignment_and_stats(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("delay", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        [[name, _labels, state]] = registry.snapshot()["histograms"]
        assert name == "delay"
        # upper edges are inclusive; 100.0 lands in the implicit +inf bucket
        assert state["counts"] == [2, 1, 1]
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(106.5)
        assert state["min"] == 0.5
        assert state["max"] == 100.0

    def test_unsorted_buckets_rejected(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("delay", buckets=(2.0, 1.0))

    def test_conflicting_buckets_rejected(self):
        registry = obs.MetricsRegistry()
        registry.histogram("delay", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("delay", buckets=(1.0, 3.0))

    def test_merge_requires_matching_edges(self):
        first = obs.MetricsRegistry()
        second = obs.MetricsRegistry()
        first.histogram("delay", buckets=(1.0,)).observe(0.5)
        second.histogram("delay", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket edges differ"):
            first.merge(second.snapshot())

    def test_merge_sums_buckets_and_extremes(self):
        first = obs.MetricsRegistry()
        second = obs.MetricsRegistry()
        first.histogram("delay", buckets=(1.0,)).observe(0.5)
        second.histogram("delay", buckets=(1.0,)).observe(3.0)
        first.merge(second.snapshot())
        [[_name, _labels, state]] = first.snapshot()["histograms"]
        assert state["counts"] == [1, 1]
        assert state["count"] == 2
        assert state["min"] == 0.5
        assert state["max"] == 3.0


class TestSpans:
    def test_nesting_builds_paths(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        paths = {tuple(record["path"]): record for record in registry.snapshot()["spans"]}
        assert set(paths) == {("outer",), ("outer", "inner")}
        assert paths[("outer",)]["count"] == 1
        assert paths[("outer", "inner")]["count"] == 2
        outer = paths[("outer",)]
        assert 0.0 <= outer["min_s"] <= outer["max_s"] <= outer["total_s"] + 1e-9

    def test_string_attrs_are_identity(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("cell", scheme="TT"):
                pass
            with obs.span("cell", scheme="UT"):
                pass
        paths = {tuple(record["path"]) for record in registry.snapshot()["spans"]}
        assert paths == {("cell{scheme=TT}",), ("cell{scheme=UT}",)}

    def test_numeric_attrs_accumulate_as_values(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("kernel", pairs=100):
                pass
            with obs.span("kernel", pairs=50):
                pass
        [record] = registry.snapshot()["spans"]
        assert record["count"] == 2
        assert record["values"] == {"pairs": 150.0}

    def test_span_records_even_when_body_raises(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with pytest.raises(RuntimeError):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        [record] = registry.snapshot()["spans"]
        assert record["path"] == ["failing"]
        assert record["count"] == 1

    def test_current_span_path_tracks_nesting(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            assert obs.current_span_path() == ()
            with obs.span("a"):
                with obs.span("b"):
                    assert obs.current_span_path() == ("a", "b")
            assert obs.current_span_path() == ()

    def test_detached_span_path_resets_and_restores(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("parent"):
                with obs.detached_span_path():
                    assert obs.current_span_path() == ()
                    with obs.span("worker"):
                        pass
                assert obs.current_span_path() == ("parent",)
        paths = {tuple(record["path"]) for record in registry.snapshot()["spans"]}
        assert ("worker",) in paths  # not ("parent", "worker")


class TestMerge:
    def test_counters_sum(self):
        first = obs.MetricsRegistry()
        second = obs.MetricsRegistry()
        first.counter("hits").inc(2)
        second.counter("hits").inc(3)
        second.counter("misses").inc()
        first.merge(second.snapshot())
        assert first.counter_value("hits") == 5
        assert first.counter_value("misses") == 1

    def test_merge_is_commutative_on_counters_and_histograms(self):
        def build(values):
            registry = obs.MetricsRegistry()
            for value in values:
                registry.counter("n").inc(value)
                registry.histogram("v", buckets=(1.0, 2.0)).observe(value)
            return registry

        ab = obs.MetricsRegistry()
        ab.merge(build([0.5, 1.5]).snapshot())
        ab.merge(build([2.5]).snapshot())
        ba = obs.MetricsRegistry()
        ba.merge(build([2.5]).snapshot())
        ba.merge(build([0.5, 1.5]).snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_span_prefix_grafts_under_existing_tree(self):
        worker = obs.MetricsRegistry()
        with obs.use_registry(worker):
            with obs.span("task"):
                pass
        parent = obs.MetricsRegistry()
        with obs.use_registry(parent):
            with obs.span("driver"):
                obs.merge_into_active(worker.snapshot())
        paths = {tuple(record["path"]) for record in parent.snapshot()["spans"]}
        assert paths == {("driver",), ("driver", "task")}

    def test_merge_into_active_is_noop_without_registry(self):
        worker = obs.MetricsRegistry()
        worker.counter("hits").inc()
        obs.merge_into_active(worker.snapshot())  # must not raise

    def test_snapshot_is_picklable_and_json_plain(self):
        registry = obs.MetricsRegistry()
        registry.counter("hits", kind="a").inc()
        registry.histogram("delay", buckets=(1.0,)).observe(0.5)
        with obs.use_registry(registry):
            with obs.span("root"):
                pass
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestNullRegistry:
    def test_default_registry_is_null(self):
        assert obs.get_registry() is obs.NULL_REGISTRY
        assert not obs.enabled()

    def test_instruments_are_shared_noops(self):
        assert obs.counter("x") is obs.counter("y", any="label")
        obs.counter("x").inc(5)
        obs.gauge("g").set(1)
        obs.histogram("h").observe(2)
        assert obs.NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": [], "spans": []
        }

    def test_null_span_is_reentrant(self):
        with obs.span("a"):
            with obs.span("a"):
                pass
        assert obs.current_span_path() == ()

    def test_use_registry_enables_and_restores(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            assert obs.enabled()
            obs.counter("hits").inc()
        assert not obs.enabled()
        assert registry.counter_value("hits") == 1
