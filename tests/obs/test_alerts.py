"""Tests for declarative threshold alerting with hysteresis."""

import io
import json

import pytest

from repro import obs
from repro.obs.alerts import AlertManager, AlertRule, persistence_drop_rule
from repro.obs.timeseries import TimeSeriesStore


def drop_rule(**kwargs):
    kwargs.setdefault("name", "drop")
    kwargs.setdefault("metric", "persistence")
    kwargs.setdefault("threshold", 0.5)
    return AlertRule(**kwargs)


class TestAlertRule:
    def test_below_direction(self):
        rule = drop_rule(clear_margin=0.1)
        assert rule.breached(0.4)
        assert not rule.breached(0.5)
        assert not rule.recovered(0.55)  # inside the hysteresis band
        assert rule.recovered(0.6)

    def test_above_direction(self):
        rule = drop_rule(direction="above", threshold=10.0, clear_margin=2.0)
        assert rule.breached(11.0)
        assert not rule.breached(10.0)
        assert not rule.recovered(9.0)
        assert rule.recovered(8.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="direction"):
            drop_rule(direction="sideways")
        with pytest.raises(ValueError, match="clear_margin"):
            drop_rule(clear_margin=-1.0)
        with pytest.raises(ValueError, match="for_samples"):
            drop_rule(for_samples=0)
        with pytest.raises(ValueError, match="level"):
            drop_rule(level="fatal")


class TestAlertManager:
    def test_fires_once_and_does_not_refire_while_breached(self):
        manager = AlertManager([drop_rule()])
        transitions = []
        for t, value in enumerate([0.9, 0.3, 0.2, 0.1, 0.3]):
            transitions.extend(manager.observe("persistence", value, t=t))
        assert [event.kind for event in transitions] == ["fired"]
        assert transitions[0].value == 0.3
        assert transitions[0].time == 1
        assert manager.firing == ["drop"]
        assert manager.fired_count("drop") == 1

    def test_hysteresis_prevents_flapping(self):
        manager = AlertManager([drop_rule(clear_margin=0.2)])
        values = [0.4, 0.55, 0.45, 0.55, 0.69, 0.71]
        kinds = []
        for t, value in enumerate(values):
            kinds.extend(e.kind for e in manager.observe("persistence", value, t=t))
        # Oscillation inside [0.5, 0.7) never clears; only 0.71 does.
        assert kinds == ["fired", "cleared"]
        assert manager.firing == []

    def test_refires_after_clean_recovery(self):
        manager = AlertManager([drop_rule()])
        kinds = []
        for t, value in enumerate([0.4, 0.9, 0.4]):
            kinds.extend(e.kind for e in manager.observe("persistence", value, t=t))
        assert kinds == ["fired", "cleared", "fired"]
        assert manager.fired_count("drop") == 2

    def test_for_samples_debounce(self):
        manager = AlertManager([drop_rule(for_samples=3)])
        kinds = []
        # Two breaches, a recovery (streak reset), then three in a row.
        for t, value in enumerate([0.4, 0.4, 0.9, 0.4, 0.4, 0.4]):
            kinds.extend(e.kind for e in manager.observe("persistence", value, t=t))
        assert kinds == ["fired"]
        assert manager.events[0].time == 5

    def test_unmatched_metric_ignored(self):
        manager = AlertManager([drop_rule()])
        assert manager.observe("other.metric", 0.0, t=0) == []
        assert manager.firing == []

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AlertManager([drop_rule(), drop_rule(threshold=0.1)])

    def test_observe_store_uses_latest_points(self):
        store = TimeSeriesStore()
        store.record("persistence", 0.0, 0.9)
        store.record("persistence", 1.0, 0.2)
        manager = AlertManager([drop_rule()])
        [event] = manager.observe_store(store)
        assert event.kind == "fired"
        assert event.time == 1.0
        # Same latest point again: still breached, no re-fire.
        assert manager.observe_store(store) == []

    def test_events_accumulate_and_serialise(self):
        manager = AlertManager([drop_rule()])
        manager.observe("persistence", 0.1, t=3)
        [event] = manager.events
        assert event.to_dict() == {
            "rule": "drop",
            "metric": "persistence",
            "kind": "fired",
            "value": 0.1,
            "time": 3,
            "threshold": 0.5,
        }


class TestAlertObservability:
    def test_transitions_hit_event_log_and_registry(self):
        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="r", clock=lambda: 0.0)
        registry = obs.MetricsRegistry()
        manager = AlertManager([drop_rule(level="error")])
        with obs.use_event_log(log), obs.use_registry(registry):
            manager.observe("persistence", 0.1, t=0)
            manager.observe("persistence", 0.9, t=1)
        fired, cleared = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert fired["event"] == "alert.fired"
        assert fired["level"] == "error"  # rule-configured severity
        assert fired["rule"] == "drop"
        assert cleared["event"] == "alert.cleared"
        assert cleared["level"] == "info"
        assert registry.counter_value("alerts.fired", rule="drop") == 1
        assert registry.counter_value("alerts.cleared", rule="drop") == 1

    def test_silent_without_active_log_or_registry(self):
        manager = AlertManager([drop_rule()])
        [event] = manager.observe("persistence", 0.1, t=0)
        assert event.kind == "fired"  # transitions still recorded locally


class TestPersistenceDropRule:
    def test_defaults_match_monitor_series(self):
        rule = persistence_drop_rule(0.3)
        assert rule.metric == "monitor.persistence.median"
        assert rule.direction == "below"
        assert rule.threshold == 0.3
        assert rule.clear_margin > 0  # hysteresis on by default
