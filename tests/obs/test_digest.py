"""Tests for the mergeable log-bucketed latency digest."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_RELATIVE_ACCURACY,
    EXPORT_QUANTILES,
    LatencyDigest,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_digest_states,
    quantile_from_state,
)


def lognormal_values(count: int, seed: int) -> list:
    rng = random.Random(seed)
    return [math.exp(rng.gauss(-7.0, 1.5)) for _ in range(count)]


class TestAccuracy:
    def test_relative_error_bound_on_random_workloads(self):
        """The headline guarantee: every quantile within alpha of the true
        order statistic, across seeds, sizes and alphas."""
        for seed in range(5):
            for count in (10, 100, 2000):
                for alpha in (0.01, 0.05):
                    values = lognormal_values(count, seed)
                    digest = LatencyDigest(alpha)
                    digest.observe_many(values)
                    arr = np.asarray(values)
                    for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0):
                        exact = float(np.quantile(arr, q, method="higher"))
                        estimate = digest.quantile(q)
                        assert abs(estimate - exact) <= alpha * exact + 1e-12, (
                            f"seed={seed} n={count} alpha={alpha} q={q}: "
                            f"{estimate} vs {exact}"
                        )

    def test_extremes_are_exact(self):
        digest = LatencyDigest()
        values = [0.001, 0.5, 0.25, 0.125]
        digest.observe_many(values)
        assert digest.quantile(0.0) == pytest.approx(min(values), rel=0.01)
        # min/max clamping makes the endpoints exactly the observed extremes.
        assert digest.quantile(1.0) == max(values)

    def test_uniform_and_heavy_tail_shapes(self):
        rng = random.Random(3)
        for values in (
            [rng.uniform(0.001, 1.0) for _ in range(500)],
            [0.0001] * 990 + [2.0] * 10,  # spike tail
            [5e-9, 1e-8, 2e-8],  # near the trackable floor
        ):
            digest = LatencyDigest(0.01)
            digest.observe_many(values)
            arr = np.asarray(values)
            for q in (0.5, 0.99):
                exact = float(np.quantile(arr, q, method="higher"))
                assert digest.quantile(q) == pytest.approx(exact, rel=0.011)

    def test_mean_and_count(self):
        values = lognormal_values(200, 9)
        digest = LatencyDigest()
        digest.observe_many(values)
        assert digest.count == 200
        assert digest.mean == pytest.approx(sum(values) / 200)

    def test_rejects_bad_observations(self):
        digest = LatencyDigest()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                digest.observe(bad)

    def test_empty_digest_quantile_is_zero(self):
        assert LatencyDigest().quantile(0.99) == 0.0


class TestMerge:
    def test_merge_matches_single_digest(self):
        left_values = lognormal_values(300, 1)
        right_values = lognormal_values(400, 2)
        combined = LatencyDigest()
        combined.observe_many(left_values + right_values)
        left = LatencyDigest()
        left.observe_many(left_values)
        right = LatencyDigest()
        right.observe_many(right_values)
        left.merge(right)
        assert left.count == combined.count
        for q in EXPORT_QUANTILES:
            assert left.quantile(q) == combined.quantile(q)

    def test_merge_is_order_independent(self):
        """Bucket contents, count, extremes and every quantile are exactly
        merge-order independent; only the float ``sum`` may differ in the
        last ulp (addition is not associative)."""
        parts = []
        for seed in range(4):
            digest = LatencyDigest()
            digest.observe_many(lognormal_values(150, seed + 10))
            parts.append(digest)

        order1 = LatencyDigest()
        for part in parts:
            order1.merge(part)
        order2 = LatencyDigest()
        for part in reversed(parts):
            order2.merge(part)

        state1, state2 = order1.to_dict(), order2.to_dict()
        assert state1["buckets"] == state2["buckets"]
        assert state1["zero_count"] == state2["zero_count"]
        assert state1["count"] == state2["count"]
        assert state1["min"] == state2["min"]
        assert state1["max"] == state2["max"]
        assert state1["sum"] == pytest.approx(state2["sum"], rel=1e-9)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert order1.quantile(q) == order2.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            LatencyDigest(0.01).merge(LatencyDigest(0.05))

    def test_merge_empty_is_identity(self):
        digest = LatencyDigest()
        digest.observe_many([0.1, 0.2])
        before = digest.to_dict()
        digest.merge(LatencyDigest())
        assert digest.to_dict() == before

    def test_merge_digest_states_helper(self):
        digests = []
        for seed in range(3):
            digest = LatencyDigest()
            digest.observe_many(lognormal_values(100, seed + 50))
            digests.append(digest)
        merged = merge_digest_states([d.to_dict() for d in digests])
        assert merged.count == 300
        state = digests[0].to_dict()
        assert quantile_from_state(state, 0.5) == digests[0].quantile(0.5)
        assert merge_digest_states([]).count == 0


class TestSerialization:
    def test_round_trip(self):
        digest = LatencyDigest(0.02)
        digest.observe_many(lognormal_values(250, 4))
        digest.observe(0.0)  # exercise the zero bucket
        restored = LatencyDigest.from_dict(digest.to_dict())
        assert restored == digest
        assert restored.quantile(0.99) == digest.quantile(0.99)

    def test_state_is_json_plain(self):
        import json

        digest = LatencyDigest()
        digest.observe_many([0.01, 0.02, 0.5])
        state = json.loads(json.dumps(digest.to_dict()))
        assert LatencyDigest.from_dict(state) == digest


class TestRegistryIntegration:
    def test_digest_instrument_snapshot_and_merge(self):
        registry = MetricsRegistry()
        instrument = registry.digest("request.latency_s", endpoint="/similar")
        for value in (0.01, 0.02, 0.04):
            instrument.observe(value)
        snapshot = registry.snapshot()
        entries = snapshot["digests"]
        assert len(entries) == 1
        name, labels, state = entries[0]
        assert name == "request.latency_s"
        assert labels == {"endpoint": "/similar"}
        assert state["count"] == 3

        other = MetricsRegistry()
        other.merge(snapshot)
        other.merge(snapshot)
        merged_state = other.digest_state("request.latency_s", endpoint="/similar")
        assert merged_state.count == 6

    def test_digest_accuracy_conflict_raises(self):
        registry = MetricsRegistry()
        registry.digest("latency", relative_accuracy=0.01)
        with pytest.raises(ValueError):
            registry.digest("latency", relative_accuracy=0.05)

    def test_default_accuracy(self):
        registry = MetricsRegistry()
        registry.digest("latency").observe(0.1)
        state = registry.digest_state("latency")
        assert state.relative_accuracy == DEFAULT_RELATIVE_ACCURACY

    def test_null_registry_digest_is_noop(self):
        NULL_REGISTRY.digest("latency").observe(0.5)
        assert NULL_REGISTRY.digest_state("latency") is None
        # The null snapshot shape is a frozen contract (no digests key).
        assert NULL_REGISTRY.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "spans": [],
        }

    def test_merge_accepts_pre_digest_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        old_snapshot = {
            key: value
            for key, value in registry.snapshot().items()
            if key != "digests"
        }
        fresh = MetricsRegistry()
        fresh.merge(old_snapshot)  # must not KeyError
        assert fresh.counters_flat() == {"events": 1}
