"""Tests for the ring-buffer series store and background sampler."""

import threading
import time

import pytest

from repro import obs
from repro.obs.timeseries import (
    Sampler,
    Series,
    TimeSeriesStore,
    quantile_from_buckets,
)


class TestSeries:
    def test_append_and_points(self):
        series = Series("x", max_points=10)
        series.append(1.0, 2.0)
        series.append(2.0, 3.0)
        assert series.points() == [(1.0, 2.0), (2.0, 3.0)]
        assert series.values() == [2.0, 3.0]
        assert series.last() == (2.0, 3.0)
        assert len(series) == 2

    def test_ring_buffer_evicts_oldest(self):
        series = Series("x", max_points=3)
        for t in range(6):
            series.append(float(t), float(t * 10))
        assert series.points() == [(3.0, 30.0), (4.0, 40.0), (5.0, 50.0)]

    def test_empty_series(self):
        series = Series("x")
        assert series.last() is None
        assert series.points() == []

    def test_bad_max_points(self):
        with pytest.raises(ValueError):
            Series("x", max_points=0)


class TestQuantileFromBuckets:
    def test_empty_histogram(self):
        assert quantile_from_buckets([1.0, 2.0], [0, 0, 0], 0.5) == 0.0

    def test_interpolates_within_bucket(self):
        # 10 observations all landing in (1.0, 2.0]: p50 is mid-bucket.
        assert quantile_from_buckets([1.0, 2.0], [0, 10, 0], 0.5) == pytest.approx(1.5)
        assert quantile_from_buckets([1.0, 2.0], [0, 10, 0], 0.9) == pytest.approx(1.9)

    def test_first_bucket_starts_at_zero(self):
        assert quantile_from_buckets([4.0], [10, 0], 0.5) == pytest.approx(2.0)

    def test_overflow_bucket_reports_highest_edge(self):
        # Everything in +inf: refuse to extrapolate past the last edge.
        assert quantile_from_buckets([1.0, 2.0], [0, 0, 5], 0.99) == 2.0

    def test_spread_across_buckets(self):
        buckets = [1.0, 2.0, 4.0]
        counts = [2, 2, 2, 0]
        assert quantile_from_buckets(buckets, counts, 0.5) <= 2.0
        assert quantile_from_buckets(buckets, counts, 1.0) == pytest.approx(4.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([1.0], [1, 0], 1.5)


class TestTimeSeriesStore:
    def test_record_and_retrieve(self):
        store = TimeSeriesStore()
        store.record("a", 1.0, 10.0)
        store.record("a", 2.0, 20.0)
        store.record("b", 1.0, 1.0)
        assert store.keys() == ["a", "b"]
        assert store.last("a") == (2.0, 20.0)
        assert store.last("missing") is None
        assert len(store) == 2

    def test_sample_folds_registry_snapshot(self):
        registry = obs.MetricsRegistry()
        registry.counter("pipeline.windows", mode="exact").inc(3)
        registry.gauge("parallel.workers").set(4)
        histogram = registry.histogram("latency", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        histogram.observe(1.5)

        store = TimeSeriesStore()
        store.sample(registry, t=7.0)
        assert store.last("pipeline.windows{mode=exact}") == (7.0, 3.0)
        assert store.last("parallel.workers") == (7.0, 4.0)
        assert store.last("latency:count") == (7.0, 2.0)
        assert store.last("latency:mean") == (7.0, 1.5)
        t, p50 = store.last("latency:p50")
        assert t == 7.0 and 1.0 <= p50 <= 2.0
        assert store.last("latency:p99") is not None

    def test_repeated_samples_build_trajectories(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("ticks")
        store = TimeSeriesStore()
        for step in range(4):
            counter.inc()
            store.sample(registry, t=float(step))
        assert store.series("ticks").values() == [1.0, 2.0, 3.0, 4.0]

    def test_to_dict_is_json_plain_and_sorted(self):
        store = TimeSeriesStore()
        store.record("b", 1.0, 2.0)
        store.record("a", 1.0, 3.0)
        dump = store.to_dict()
        assert list(dump) == ["a", "b"]
        assert dump["a"] == [[1.0, 3.0]]

    def test_store_bound_applies_to_new_series(self):
        store = TimeSeriesStore(max_points=2)
        for step in range(5):
            store.record("x", float(step), float(step))
        assert store.series("x").points() == [(3.0, 3.0), (4.0, 4.0)]

    def test_concurrent_record_and_dump(self):
        store = TimeSeriesStore()
        stop = threading.Event()

        def writer():
            step = 0
            while not stop.is_set():
                store.record("w", float(step), float(step))
                step += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                dump = store.to_dict()  # must never raise mid-mutation
                for key, points in dump.items():
                    assert all(len(point) == 2 for point in points)
        finally:
            stop.set()
            thread.join()


class TestSampler:
    def test_sample_once_uses_injected_clock(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc()
        ticks = iter([10.0, 11.0, 12.0])
        sampler = Sampler(registry, interval=0.01, clock=lambda: next(ticks))
        sampler.sample_once()
        sampler.sample_once()
        assert sampler.store.series("c").points() == [(10.0, 1.0), (11.0, 1.0)]

    def test_background_thread_samples_periodically(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc()
        sampler = Sampler(registry, interval=0.01)
        with sampler:
            assert sampler.running
            deadline = time.time() + 5.0
            while len(sampler.store.series("c") or ()) < 3 and time.time() < deadline:
                time.sleep(0.01)
        assert not sampler.running
        assert len(sampler.store.series("c")) >= 3

    def test_stop_takes_final_sample(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc()
        sampler = Sampler(registry, interval=60.0)
        sampler.start()
        store = sampler.stop()
        # Interval never elapsed, but stop() sampled the end state.
        assert store.last("c") is not None

    def test_double_start_rejected(self):
        sampler = Sampler(obs.MetricsRegistry(), interval=1.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            Sampler(obs.MetricsRegistry(), interval=0.0)
