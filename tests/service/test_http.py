"""The HTTP shell: a real server on an ephemeral port, end to end."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceConfig, ServiceServer, SignatureService


@pytest.fixture
def service(small_config, records_factory):
    service = SignatureService(small_config)
    service.ingest(records_factory(120, nodes=12, seed=5))
    service.pump()
    return service


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def post(url, document):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestServer:
    def test_full_roundtrip(self, service):
        with ServiceServer(service, port=0) as server:
            status, document = fetch(f"{server.url}/status")
            assert status == 200
            assert document["service"] == "HEALTHY"
            assert document["window"] == 3

            node = next(iter(service.supervisor.shards[0].engine.signatures))
            status, document = fetch(f"{server.url}/signature/{node}")
            assert status == 200
            assert document["approximate"] is False

            status, document = fetch(f"{server.url}/similar/{node}?k=3")
            assert status == 200
            assert len(document["similar"]) <= 3

            status, document = post(
                f"{server.url}/ingest",
                {"records": [[500.0 + i, f"h{i % 6}", f"h{(i + 1) % 12}", 1.0]
                             for i in range(30)]},
            )
            assert status == 202
            assert document["accepted"] == 30
        # Exiting the context drains the queue: the window closed.
        assert service.supervisor.window == 4

    def test_unknown_route_over_http(self, service):
        with ServiceServer(service, port=0) as server:
            status, document = fetch(f"{server.url}/nope")
            assert status == 404

    def test_pump_thread_closes_windows(self, service, records_factory):
        with ServiceServer(service, port=0, pump_interval_s=0.01) as server:
            before = json.loads(
                urllib.request.urlopen(f"{server.url}/status", timeout=10)
                .read().decode("utf-8")
            )["window"]
            post(
                f"{server.url}/ingest",
                {
                    "records": [
                        [900.0 + i, f"h{i % 5}", f"h{(i + 2) % 12}", 1.0]
                        for i in range(30)
                    ]
                },
            )
            deadline = 100
            window = before
            while window == before and deadline:
                window = fetch(f"{server.url}/status")[1]["window"]
                deadline -= 1
            assert window == before + 1

    def test_handler_threads_inherit_event_log(self, service, tmp_path):
        """Handler threads get fresh contextvar contexts; the server must
        re-install the log captured at start() so request-path events
        (trace-stamped completions) reach it — regression for events lost
        in live serving mode."""
        from repro import obs

        path = tmp_path / "events.jsonl"
        log = obs.EventLog(path, run_id="http", level="debug")
        with log, obs.use_event_log(log):
            with ServiceServer(service, port=0) as server:
                request = urllib.request.Request(
                    f"{server.url}/status",
                    headers={"X-Trace-Id": "feed" * 8},
                )
                with urllib.request.urlopen(request, timeout=10) as response:
                    assert response.status == 200
        tagged = list(obs.read_events(path, trace_id="feed" * 8))
        assert any(e["event"] == "service.request.done" for e in tagged)

    def test_server_refuses_double_start(self, service):
        server = ServiceServer(service, port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()
        assert not server.running
