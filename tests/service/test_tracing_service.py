"""End-to-end tracing and SLO behavior at the service edge: trace ids in
and out, span trees for scatter-gather, /trace and /slo endpoints, breaker
digests in /metrics."""

import json

import pytest

from repro import obs
from repro.service import (
    ServiceConfig,
    ServiceFrontend,
    ShardSupervisor,
    SignatureService,
    WedgeShard,
    service_objectives,
)


def build(config, clock=None):
    supervisor = ShardSupervisor(config)
    kwargs = {"clock": clock} if clock is not None else {}
    return supervisor, ServiceFrontend(supervisor, config, **kwargs)


def fill(frontend, records_factory, count=120, seed=5):
    frontend.queue.offer(records_factory(count, nodes=12, seed=seed))
    frontend.pump()


def get_trace(frontend, trace_id):
    status, _headers, body = frontend.respond("GET", f"/trace/{trace_id}")
    return status, json.loads(body)


class TestTraceHeaders:
    def test_every_response_carries_trace_and_request_ids(self, small_config):
        _supervisor, frontend = build(small_config)
        _status, headers, _body = frontend.respond("GET", "/status")
        assert len(headers["X-Trace-Id"]) == 32
        assert len(headers["X-Request-Id"]) == 16

    def test_incoming_trace_id_is_honored(self, small_config):
        _supervisor, frontend = build(small_config)
        _s, headers, _b = frontend.respond(
            "GET", "/status", headers={"X-Trace-Id": "cafe" * 8}
        )
        assert headers["X-Trace-Id"] == "cafe" * 8
        # ... case-insensitively, as HTTP headers arrive.
        _s, headers, _b = frontend.respond(
            "GET", "/status", headers={"x-trace-id": "beef" * 8}
        )
        assert headers["X-Trace-Id"] == "beef" * 8

    def test_distinct_requests_get_distinct_ids(self, small_config):
        _supervisor, frontend = build(small_config)
        first = frontend.respond("GET", "/status")[1]["X-Trace-Id"]
        second = frontend.respond("GET", "/status")[1]["X-Trace-Id"]
        assert first != second


class TestTraceEndpoint:
    def test_similar_scatter_gather_span_tree(
        self, small_config, records_factory
    ):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        status, headers, _body = frontend.respond("GET", "/similar/h1?k=3")
        assert status == 200
        t_status, trace = get_trace(frontend, headers["X-Trace-Id"])
        assert t_status == 200
        assert trace["request_id"] == headers["X-Request-Id"]
        root = trace["spans"]
        assert root["name"] == "service.request"
        assert root["attrs"]["endpoint"] == "/similar"
        names = [child["name"] for child in root["children"]]
        assert "shard.query" in names  # the target node's own signature
        gathers = [c for c in root["children"] if c["name"] == "similar.gather"]
        assert len(gathers) == small_config.num_shards
        assert {g["attrs"]["shard"] for g in gathers} == {"0", "1", "2"}

    def test_sketch_fallback_span_when_shard_degraded(
        self, small_config, records_factory
    ):
        supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        shard = supervisor.shard_for("h1")
        supervisor.shards[shard].health = "DEGRADED"
        supervisor.shards[shard].engine = None
        status, headers, body = frontend.respond("GET", "/signature/h1")
        assert status == 200
        assert json.loads(body)["approximate"] is True
        _t, trace = get_trace(frontend, headers["X-Trace-Id"])
        names = [child["name"] for child in trace["spans"]["children"]]
        assert "sketch.fallback" in names

    def test_missing_and_unknown_trace_404(self, small_config):
        _supervisor, frontend = build(small_config)
        status, record = get_trace(frontend, "doesnotexist")
        assert status == 404
        assert "capacity" in record
        status, _headers, _body = frontend.respond("GET", "/trace/")
        assert status == 404

    def test_store_respects_configured_capacity(self, small_config):
        config = ServiceConfig(
            num_shards=small_config.num_shards,
            window_records=small_config.window_records,
            trace_store_size=2,
        )
        _supervisor, frontend = build(config)
        ids = [
            frontend.respond("GET", "/status")[1]["X-Trace-Id"]
            for _ in range(5)
        ]
        assert len(frontend.traces) == 2
        assert get_trace(frontend, ids[0])[0] == 404
        assert get_trace(frontend, ids[-1])[0] == 200

    def test_deadline_expiry_skips_remaining_gather(
        self, small_config, records_factory, clock
    ):
        """Once the edge deadline passes, the gather loop stops fanning out
        — the trace shows zero gather spans even though the handler ran."""
        supervisor = ShardSupervisor(small_config)
        frontend = ServiceFrontend(supervisor, small_config, clock=clock)
        fill(frontend, records_factory)
        # Wedge h1's home shard: fetching h1's own signature burns the
        # whole request budget before the fan-out starts.
        home = supervisor.shard_for("h1")
        supervisor.install_injector(
            home, WedgeShard(from_window=-1, stall=lambda: clock.advance(10.0))
        )
        status, headers, _body = frontend.respond("GET", "/similar/h1?k=3")
        assert status == 504
        _t, trace = get_trace(frontend, headers["X-Trace-Id"])
        children = trace["spans"]["children"]
        assert any(c["name"] == "shard.query" for c in children)
        assert not any(c["name"] == "similar.gather" for c in children)


class TestSLOEndpoint:
    def test_slo_reports_objectives_and_verdicts(
        self, small_config, records_factory
    ):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        for _ in range(10):
            frontend.respond("GET", "/similar/h1?k=3")
        status, _headers, body = frontend.respond("GET", "/slo")
        assert status == 200
        report = json.loads(body)
        entries = {e["name"]: e for e in report["objectives"]}
        assert entries["availability"]["verdict"] == "pass"
        similar = entries["similar-p99"]
        assert similar["endpoint"] == "/similar"
        assert similar["windows"][0]["total"] == 10
        assert "burn_rate" in similar
        assert report["alerts_firing"] == []

    def test_five_hundreds_burn_availability_budget(
        self, small_config, records_factory, clock
    ):
        supervisor = ShardSupervisor(small_config)
        frontend = ServiceFrontend(supervisor, small_config, clock=clock)
        fill(frontend, records_factory)
        slow = WedgeShard(from_window=-1, stall=lambda: clock.advance(10.0))
        supervisor.install_injector(0, slow)
        node = next(
            f"h{i}" for i in range(12) if supervisor.shard_for(f"h{i}") == 0
        )
        assert frontend.respond("GET", f"/signature/{node}")[0] == 504
        report = json.loads(frontend.respond("GET", "/slo")[2])
        entries = {e["name"]: e for e in report["objectives"]}
        assert entries["availability"]["worst_burn_rate"] > 1.0
        assert entries["availability"]["verdict"] == "fail"

    def test_service_objectives_respect_config(self):
        config = ServiceConfig(slo_similar_p99_s=None, slo_availability=0.99)
        objectives = service_objectives(config)
        assert [o.name for o in objectives] == ["availability"]
        assert objectives[0].target == 0.99
        none_config = ServiceConfig(
            slo_similar_p99_s=None, slo_availability=None
        )
        assert service_objectives(none_config) == []
        status, _h, body = ServiceFrontend(
            ShardSupervisor(none_config), none_config
        ).respond("GET", "/slo")
        assert status == 200
        assert json.loads(body)["objectives"] == []


class TestBreakerDigests:
    def test_metrics_export_per_shard_breaker_digests(
        self, small_config, records_factory
    ):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        for _ in range(5):
            frontend.respond("GET", "/signature/h1")
        snapshot = frontend.merged_snapshot()
        breaker = [
            (labels, state)
            for name, labels, state in snapshot["digests"]
            if name == "breaker.latency_s" and labels["outcome"] == "success"
        ]
        shards = {labels["shard"] for labels, _state in breaker}
        assert shards == {"0", "1", "2"}
        assert sum(state["count"] for _labels, state in breaker) > 0
        gauges = {
            (name, labels.get("shard")): value
            for name, labels, value in snapshot["gauges"]
        }
        assert gauges[("breaker.state", "0")] == 0.0  # CLOSED

    def test_breaker_state_gauge_tracks_transitions(self, small_config, clock):
        from repro.service import STATE_CODES, CircuitBreaker

        registry = obs.MetricsRegistry()
        breaker = CircuitBreaker(
            small_config.breaker, clock=clock, registry=registry
        )
        for _ in range(4):
            breaker.record_failure(0.01)
        gauges = {name: value for name, _l, value in registry.snapshot()["gauges"]}
        assert gauges["breaker.state"] == STATE_CODES["OPEN"]
        state = registry.digest_state(
            "breaker.latency_s", outcome="failure"
        )
        assert state.count == 4

    def test_prometheus_scrape_includes_service_digests(
        self, small_config, records_factory
    ):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        frontend.respond("GET", "/similar/h1?k=3")
        _status, _headers, text = frontend.respond("GET", "/metrics")
        assert obs.validate_prometheus(text) == []
        assert 'repro_service_latency_s{endpoint="/similar",quantile="0.99"}' in text


class TestEventLogCorrelation:
    def test_service_events_carry_trace_ids(
        self, small_config, records_factory, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        log = obs.EventLog(path, run_id="svc", level="debug")
        with log, obs.use_event_log(log):
            frontend.respond(
                "GET", "/similar/h1?k=3", headers={"X-Trace-Id": "f00d" * 8}
            )
            frontend.respond("GET", "/status")
        tagged = list(obs.read_events(path, trace_id="f00d" * 8))
        assert tagged, "request-path events should be stamped with the trace"
        assert all(e["trace_id"] == "f00d" * 8 for e in tagged)
        assert any(
            e["event"] == "service.request.done" and e["status"] == 200
            for e in tagged
        )
        # The /status request got its own trace id, not f00d's.
        others = [
            e
            for e in obs.read_events(path)
            if e.get("trace_id") not in (None, "f00d" * 8)
        ]
        assert others


class TestServiceWiring:
    def test_signature_service_headers_passthrough(
        self, small_config, records_factory
    ):
        service = SignatureService(small_config)
        service.ingest(records_factory(120, nodes=12, seed=5))
        service.pump()
        status, headers, _body = service.respond(
            "GET", "/signature/h1", headers={"X-Trace-Id": "abcd" * 8}
        )
        assert headers["X-Trace-Id"] == "abcd" * 8
        t_status, _h, _b = service.respond("GET", "/trace/" + "abcd" * 8)
        assert t_status == 200
