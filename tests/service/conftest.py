"""Shared fixtures for the sharded-service tests: tiny deterministic
traffic, small configs, and a manual clock."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.graph.stream import EdgeRecord
from repro.service import BreakerPolicy, ServiceConfig


class ManualClock:
    """A monotonic clock tests advance by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_records(
    count: int, *, nodes: int = 12, seed: int = 0, start: float = 0.0
) -> List[EdgeRecord]:
    """Deterministic pseudo-random traffic among ``nodes`` hosts."""
    rng = random.Random(seed)
    records = []
    for index in range(count):
        src = f"h{rng.randrange(nodes)}"
        dst = f"h{rng.randrange(nodes)}"
        while dst == src:
            dst = f"h{rng.randrange(nodes)}"
        records.append(
            EdgeRecord(
                time=start + float(index),
                src=src,
                dst=dst,
                weight=float(1 + rng.randrange(5)),
            )
        )
    return records


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture
def records_factory():
    """The :func:`make_records` helper, injectable into tests."""
    return make_records


@pytest.fixture
def small_config() -> ServiceConfig:
    """3 shards, 30-record windows, an eager breaker — fast and twitchy."""
    return ServiceConfig(
        num_shards=3,
        window_records=30,
        window_buckets=1,
        queue_capacity=120,
        k=5,
        breaker=BreakerPolicy(
            window=8,
            min_calls=2,
            failure_threshold=0.5,
            open_for_s=5.0,
            half_open_probes=1,
        ),
    )
