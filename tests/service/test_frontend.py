"""Data-plane contract: queue, backpressure, shedding, deadlines, fallbacks."""

import json

import pytest

from repro.graph.stream import EdgeRecord
from repro.service import (
    BoundedIngestQueue,
    KillShard,
    ServiceConfig,
    ServiceFrontend,
    ShardSupervisor,
    WedgeShard,
    parse_ingest_body,
)


def build(config, clock=None):
    supervisor = ShardSupervisor(config)
    kwargs = {"clock": clock} if clock is not None else {}
    return supervisor, ServiceFrontend(supervisor, config, **kwargs)


def get_json(frontend, path):
    status, headers, body = frontend.respond("GET", path)
    return status, headers, json.loads(body)


def fill(frontend, records_factory, count=120, seed=5):
    frontend.queue.offer(records_factory(count, nodes=12, seed=seed))
    frontend.pump()


class TestQueue:
    def test_all_or_nothing_offer(self):
        queue = BoundedIngestQueue(10)
        assert queue.offer([object()] * 6)
        assert not queue.offer([object()] * 5)
        assert len(queue) == 6
        assert queue.accepted == 6
        assert queue.rejected == 5

    def test_take_respects_window_size(self):
        queue = BoundedIngestQueue(10)
        queue.offer(list(range(7)))
        assert queue.take(5) == [0, 1, 2, 3, 4]
        assert queue.take(5) is None
        assert queue.take(5, force=True) == [5, 6]
        assert queue.take(5, force=True) is None

    def test_occupancy(self):
        queue = BoundedIngestQueue(10)
        queue.offer(list(range(8)))
        assert queue.occupancy() == pytest.approx(0.8)


class TestIngest:
    def test_accepts_and_pumps(self, small_config, records_factory):
        _supervisor, frontend = build(small_config)
        records = records_factory(60, nodes=10, seed=3)
        payload = json.dumps(
            {"records": [[r.time, r.src, r.dst, r.weight] for r in records]}
        )
        status, _headers, body = frontend.respond("POST", "/ingest", payload)
        assert status == 202
        assert json.loads(body)["accepted"] == 60
        assert frontend.pump() == 2

    def test_object_records_and_default_weight(self, small_config):
        _supervisor, frontend = build(small_config)
        payload = json.dumps(
            {"records": [{"time": 1.0, "src": "a", "dst": "b"}]}
        )
        status, _headers, _body = frontend.respond("POST", "/ingest", payload)
        assert status == 202

    def test_backpressure_429_with_retry_after(self, small_config, records_factory):
        _supervisor, frontend = build(small_config)
        frontend.queue.offer(records_factory(100, seed=1))
        burst = records_factory(30, seed=2)
        payload = json.dumps(
            {"records": [[r.time, r.src, r.dst, r.weight] for r in burst]}
        )
        status, headers, body = frontend.respond("POST", "/ingest", payload)
        assert status == 429
        assert headers["Retry-After"] == "1"
        document = json.loads(body)
        assert document["queued"] == 100
        assert document["capacity"] == 120
        # Nothing was partially admitted.
        assert len(frontend.queue) == 100

    @pytest.mark.parametrize(
        "body",
        [None, "", "not json", '{"records": "nope"}', '{"records": [[1.0]]}', '{"nope": []}'],
    )
    def test_malformed_bodies_are_400(self, small_config, body):
        _supervisor, frontend = build(small_config)
        status, _headers, _body = frontend.respond("POST", "/ingest", body)
        assert status == 400

    def test_parse_ingest_body_coerces_node_ids(self):
        records = parse_ingest_body('{"records": [[1.0, 7, 8, 2.0]]}')
        assert records == [EdgeRecord(time=1.0, src="7", dst="8", weight=2.0)]


class TestShedding:
    def test_queries_shed_under_pressure_but_status_and_ingest_serve(
        self, small_config, records_factory
    ):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        # 100/120 > 0.8 occupancy: query traffic sheds.
        frontend.queue.offer(records_factory(100, seed=9))
        status, headers, document = get_json(frontend, "/signature/h1")
        assert status == 503
        assert "Retry-After" in headers
        status, _headers, document = get_json(frontend, "/status")
        assert status == 200
        assert document["queue"]["shedding"] is True
        payload = json.dumps({"records": [[1.0, "a", "b", 1.0]]})
        status, _headers, _body = frontend.respond("POST", "/ingest", payload)
        assert status == 202  # ingest keeps landing until truly full


class TestQueries:
    def test_signature_roundtrip(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        node = next(iter(supervisor.shards[0].engine.signatures))
        status, _headers, document = get_json(frontend, f"/signature/{node}")
        assert status == 200
        assert document["node"] == node
        assert document["approximate"] is False
        assert document["signature"]
        expected = dict(
            supervisor.shards[0].engine.signatures[node].entries
        )
        assert document["signature"] == {
            str(dst): weight for dst, weight in expected.items()
        }

    def test_unknown_node_404(self, small_config, records_factory):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        status, _headers, document = get_json(frontend, "/signature/never-spoke")
        assert status == 404

    def test_similar_scatter_gather(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        node = next(iter(supervisor.shards[0].engine.signatures))
        status, _headers, document = get_json(frontend, f"/similar/{node}?k=4")
        assert status == 200
        assert document["partial"] is False
        assert 1 <= len(document["similar"]) <= 4
        distances = [entry["distance"] for entry in document["similar"]]
        assert distances == sorted(distances)
        assert all(entry["node"] != node for entry in document["similar"])

    def test_similar_marks_partial_when_shard_degraded(
        self, small_config, records_factory
    ):
        supervisor, frontend = build(small_config)
        supervisor.install_injector(
            1, KillShard(at_window=0, rebuild_failures=100)
        )
        fill(frontend, records_factory)
        node = next(iter(supervisor.shards[0].engine.signatures))
        status, _headers, document = get_json(frontend, f"/similar/{node}?k=4")
        assert status == 200
        assert document["partial"] is True
        assert document["shards_skipped"] == [1]

    def test_similar_validates_k(self, small_config, records_factory):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        assert get_json(frontend, "/similar/h1?k=zero")[0] == 400
        assert get_json(frontend, "/similar/h1?k=0")[0] == 400

    def test_anomaly_contract(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        persistent = next(
            node
            for node, _sig in supervisor.shards[0].engine.signatures.items()
            if node in supervisor.shards[0].engine.prev_signatures
        )
        status, _headers, document = get_json(frontend, f"/anomaly/{persistent}")
        assert status == 200
        assert document["status"] == "ok"
        assert 0.0 <= document["persistence"] <= 1.0
        assert document["anomalous"] == (
            document["persistence"] < small_config.anomaly_threshold
        )

    def test_anomaly_insufficient_history(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        frontend.queue.offer(records_factory(30, nodes=6, seed=4))
        frontend.pump()
        node = next(iter(supervisor.shards[0].engine.signatures))
        status, _headers, document = get_json(frontend, f"/anomaly/{node}")
        assert status == 200
        assert document["status"] == "insufficient-history"
        assert document["persistence"] is None
        assert document["anomalous"] is None


class TestDegradedAnswers:
    def test_wedged_shard_answers_approximately(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        supervisor.install_injector(0, WedgeShard(from_window=0))
        fill(frontend, records_factory)
        node = next(
            f"h{i}" for i in range(12) if supervisor.shard_for(f"h{i}") == 0
        )
        status, _headers, document = get_json(frontend, f"/signature/{node}")
        assert status == 200
        assert document["approximate"] is True

    def test_degraded_shard_answers_approximately(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        supervisor.install_injector(
            2, KillShard(at_window=0, rebuild_failures=100)
        )
        fill(frontend, records_factory)
        node = next(
            f"h{i}" for i in range(12) if supervisor.shard_for(f"h{i}") == 2
        )
        status, _headers, document = get_json(frontend, f"/signature/{node}")
        assert status == 200
        assert document["approximate"] is True


class TestProtocol:
    def test_unknown_route_404(self, small_config):
        _supervisor, frontend = build(small_config)
        status, _headers, document = get_json(frontend, "/nope")
        assert status == 404
        assert "/status" in document["routes"]

    def test_method_not_allowed(self, small_config):
        _supervisor, frontend = build(small_config)
        status, _headers, _body = frontend.respond("POST", "/status")
        assert status == 404 or status == 405

    def test_get_ingest_rejected(self, small_config):
        _supervisor, frontend = build(small_config)
        status, _headers, _body = frontend.respond("GET", "/ingest")
        assert status in (404, 405)

    def test_deadline_504(self, small_config, records_factory, clock):
        config = small_config
        supervisor = ShardSupervisor(config)
        frontend = ServiceFrontend(supervisor, config, clock=clock)
        frontend.queue.offer(records_factory(120, nodes=12, seed=5))
        frontend.pump()
        # from_window=-1: arm immediately (the injector is installed after
        # the last window closed, so it never sees an on_apply).
        slow = WedgeShard(from_window=-1, stall=lambda: clock.advance(10.0))
        supervisor.install_injector(0, slow)
        node = next(
            f"h{i}" for i in range(12) if supervisor.shard_for(f"h{i}") == 0
        )
        status, _headers, body = frontend.respond("GET", f"/signature/{node}")
        assert status == 504
        assert "deadline" in json.loads(body)["error"]

    def test_metrics_endpoint(self, small_config, records_factory):
        _supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        get_json(frontend, "/status")
        status, headers, body = frontend.respond("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "service_requests" in body
        assert "shard_windows" in body

    def test_status_service_rollup(self, small_config, records_factory):
        supervisor, frontend = build(small_config)
        fill(frontend, records_factory)
        assert get_json(frontend, "/status")[2]["service"] == "HEALTHY"
        supervisor.shards[1].health = "DEGRADED"
        supervisor.shards[1].engine = None
        assert get_json(frontend, "/status")[2]["service"] == "DEGRADED"
