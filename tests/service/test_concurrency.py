"""Concurrent access: readers hammer the service while ingest advances.

The design claim under test (see :mod:`repro.service.http`): all shard
mutation happens on the single pump thread, so any number of reader
threads see *consistent snapshots* — a signature response is always one
complete window's signature (never a half-built dict), and ``/status``
never reports an impossible state.
"""

import json
import threading
import time

import pytest

from repro.service import SignatureService

HEALTHS = {"HEALTHY", "DEGRADED", "DOWN"}


@pytest.fixture
def service(small_config, records_factory):
    service = SignatureService(small_config)
    assert service.ingest(records_factory(60, nodes=12, seed=5))
    service.pump()
    return service


def hammer(service, paths, stop, failures):
    """Loop over ``paths`` until ``stop`` is set, recording any violation."""
    seen_windows = {}
    while not stop.is_set():
        for path in paths:
            try:
                status, _headers, body = service.respond("GET", path)
                check_response(path, status, body, seen_windows)
            except Exception as error:  # noqa: BLE001 - collected for the assert
                failures.append(f"{path}: {error!r}")
                return


def check_response(path, status, body, seen_windows):
    # 503 is the documented shedding answer while the queue is hot — valid
    # under concurrent ingest, as long as it parses and carries the reason.
    if status not in (200, 404, 503):
        raise AssertionError(f"unexpected status {status}")
    document = json.loads(body)
    if status == 503:
        if "error" not in document:
            raise AssertionError("503 without an error field")
        return
    if path == "/status" and status == 200:
        if document["service"] not in HEALTHS:
            raise AssertionError(f"bad service health {document['service']}")
        # Windows only move forward: a later read on this thread must never
        # see a shard go backwards (reads are lock-free, so one snapshot may
        # straddle pump cycles — but time never reverses).
        for shard in document["shards"]:
            if shard["health"] not in HEALTHS:
                raise AssertionError(f"bad shard health {shard['health']}")
            last = seen_windows.get(shard["shard"], -1)
            if shard["window"] < last:
                raise AssertionError(
                    f"shard {shard['shard']} window went backwards: "
                    f"{last} -> {shard['window']}"
                )
            seen_windows[shard["shard"]] = shard["window"]
    elif path.startswith("/signature/") and status == 200:
        if not isinstance(document["signature"], dict):
            raise AssertionError("signature is not a mapping")
        if document["approximate"] is False and not document["signature"]:
            raise AssertionError("exact answer with empty signature")
        for dst, weight in document["signature"].items():
            if not isinstance(dst, str) or not isinstance(weight, (int, float)):
                raise AssertionError(f"malformed entry {dst!r}: {weight!r}")


class TestConcurrentReads:
    def test_readers_see_consistent_snapshots_during_ingest(
        self, service, records_factory
    ):
        stop = threading.Event()
        failures = []
        nodes = [f"h{i}" for i in range(12)]
        readers = [
            threading.Thread(
                target=hammer,
                args=(
                    service,
                    [f"/signature/{node}" for node in nodes[offset::4]]
                    + ["/status"],
                    stop,
                    failures,
                ),
                daemon=True,
            )
            for offset in range(4)
        ]
        for reader in readers:
            reader.start()
        try:
            # Advance 20 windows under the readers' feet.
            for step in range(20):
                batch = records_factory(
                    30, nodes=12, seed=step, start=100.0 * step
                )
                assert service.ingest(batch)
                assert service.pump() == 1
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=10)
        assert not failures, failures
        assert service.supervisor.window == 21

    def test_concurrent_status_and_ingest_over_http_pump_thread(
        self, service, records_factory
    ):
        """Same race, but with the real background pump thread mutating."""
        stop = threading.Event()
        failures = []
        reader = threading.Thread(
            target=hammer,
            args=(service, ["/status", "/signature/h0"], stop, failures),
            daemon=True,
        )
        service.start_pump(interval_s=0.001)
        reader.start()
        try:
            for step in range(10):
                batch = records_factory(
                    30, nodes=12, seed=100 + step, start=5000.0 + 100.0 * step
                )
                # Honour backpressure like a real client: retry until the
                # pump frees queue space.
                for _ in range(1000):
                    if service.ingest(batch):
                        break
                    time.sleep(0.001)
                else:
                    pytest.fail("queue never drained")
        finally:
            stop.set()
            reader.join(timeout=10)
            service.stop_pump(drain=True)
        assert not failures, failures
        assert service.supervisor.window == 11
