"""Shard engine: apply, checkpointing, rebuild byte-identity; sketch tier."""

import pytest

from repro.exceptions import CheckpointError
from repro.service import ServiceConfig, ShardEngine, SketchTier
from repro.service.chaos import corrupt_checkpoint


def chunk(records, size):
    return [records[start:start + size] for start in range(0, len(records), size)]


@pytest.fixture
def config() -> ServiceConfig:
    return ServiceConfig(num_shards=1, window_records=25, queue_capacity=100, k=5)


@pytest.fixture
def buckets(records_factory):
    return chunk(records_factory(100, nodes=10, seed=7), 25)


class TestApply:
    def test_windows_advance_and_signatures_appear(self, config, buckets):
        engine = ShardEngine(0, config)
        assert engine.window == -1
        for bucket in buckets:
            engine.apply(bucket)
        assert engine.window == 3
        assert engine.signatures
        node = next(iter(engine.signatures))
        assert engine.signature(node) is engine.signatures[node]
        assert engine.signature("no-such-node") is None

    def test_apply_is_order_invariant_within_bucket(self, config, buckets):
        forward = ShardEngine(0, config)
        shuffled = ShardEngine(0, config)
        for bucket in buckets:
            forward.apply(bucket)
            shuffled.apply(list(reversed(bucket)))
        assert forward.signatures == shuffled.signatures

    def test_checkpoints_every_window(self, config, buckets, tmp_path):
        from repro.pipeline.checkpoint import CheckpointStore

        engine = ShardEngine(0, config, store=CheckpointStore(tmp_path))
        for bucket in buckets:
            engine.apply(bucket)
        scan = CheckpointStore(tmp_path).scan()
        assert [entry.window for entry in scan.good] == [0, 1, 2, 3]
        assert not scan.issues

    def test_persistence_needs_two_windows(self, config, buckets):
        engine = ShardEngine(0, config)
        engine.apply(buckets[0])
        node = next(iter(engine.signatures))
        assert engine.persistence(node) is None
        engine.apply(buckets[1])
        survivors = [n for n in engine.signatures if n in engine.prev_signatures]
        assert survivors
        value = engine.persistence(survivors[0])
        assert value is not None and 0.0 <= value <= 1.0

    def test_persistence_clamped_when_distance_exceeds_one(
        self, config, buckets, monkeypatch
    ):
        import repro.service.shard as shard_module

        monkeypatch.setattr(
            shard_module, "get_distance", lambda name: lambda a, b: 1.5
        )
        engine = ShardEngine(0, config)
        engine.apply(buckets[0])
        engine.apply(buckets[1])
        survivors = [n for n in engine.signatures if n in engine.prev_signatures]
        assert survivors
        assert engine.persistence(survivors[0]) == 0.0
        assert engine.registry.counter_total("distance.out_of_range") == 1.0

    def test_query_index_matches_signatures(self, config, buckets):
        engine = ShardEngine(0, config)
        for bucket in buckets:
            engine.apply(bucket)
        index = engine.query_index()
        assert len(index) == len(engine.signatures)
        node = next(iter(engine.signatures))
        neighbours = index.query(engine.signatures[node], k=3)
        assert all(owner != node for owner, _score in neighbours)


class TestRebuild:
    def assert_identical(self, rebuilt, reference):
        assert rebuilt.window == reference.window
        assert rebuilt.signatures == reference.signatures
        assert rebuilt.prev_signatures == reference.prev_signatures

    def run_reference(self, config, buckets, store=None):
        engine = ShardEngine(0, config, store=store)
        for bucket in buckets:
            engine.apply(bucket)
        return engine

    def test_rebuild_without_store_recomputes_identically(self, config, buckets):
        reference = self.run_reference(config, buckets)
        rebuilt = ShardEngine(0, config)
        issues = rebuilt.rebuild(buckets)
        assert issues == []
        self.assert_identical(rebuilt, reference)

    def test_rebuild_from_verified_checkpoints(self, config, buckets, tmp_path):
        from repro.pipeline.checkpoint import CheckpointStore

        reference = self.run_reference(
            config, buckets, store=CheckpointStore(tmp_path)
        )
        rebuilt = ShardEngine(0, config, store=CheckpointStore(tmp_path))
        issues = rebuilt.rebuild(buckets)
        assert issues == []
        self.assert_identical(rebuilt, reference)
        # The chain must keep working after a checkpoint-seeded rebuild:
        # the next applied window equals the reference's next window.
        extra = sorted(buckets[0], key=lambda r: r.time)
        reference.apply(extra)
        rebuilt.apply(extra)
        self.assert_identical(rebuilt, reference)

    def test_rebuild_detects_and_heals_corrupt_checkpoint(
        self, config, buckets, tmp_path, records_factory
    ):
        from repro.pipeline.checkpoint import CheckpointStore

        reference = self.run_reference(config, buckets)
        store = CheckpointStore(tmp_path)
        damaged = self.run_reference(config, buckets, store=store)
        assert damaged.signatures == reference.signatures
        corrupt_checkpoint(tmp_path, window=2)
        rebuilt = ShardEngine(0, config, store=CheckpointStore(tmp_path))
        issues = rebuilt.rebuild(buckets)
        assert any("hash verification" in issue for issue in issues)
        self.assert_identical(rebuilt, reference)
        # The store was healed: a fresh scan verifies every window again.
        scan = CheckpointStore(tmp_path).scan()
        assert [entry.window for entry in scan.good] == [0, 1, 2, 3]

    def test_rebuild_with_missing_checkpoint_suffix(self, config, buckets, tmp_path):
        from repro.pipeline.checkpoint import CheckpointStore

        reference = self.run_reference(config, buckets)
        store = CheckpointStore(tmp_path)
        partial = ShardEngine(0, config, store=store)
        for bucket in buckets[:2]:
            partial.apply(bucket)
        # Two windows checkpointed, four ingested: the rebuild loads the
        # verified prefix and recomputes (and persists) the rest.
        rebuilt = ShardEngine(0, config, store=CheckpointStore(tmp_path))
        rebuilt.rebuild(buckets)
        self.assert_identical(rebuilt, reference)


class TestSketchTier:
    def test_answers_after_one_window(self, config, buckets):
        tier = SketchTier(config)
        tier.advance(buckets[0])
        sources = {record.src for record in buckets[0]}
        node = next(iter(sources))
        signature = tier.signature(node)
        assert signature is not None
        assert signature.entries
        assert tier.signature("never-seen") is None

    def test_persistence_needs_two_windows(self, config, buckets):
        tier = SketchTier(config)
        tier.advance(buckets[0])
        node = next(record.src for record in buckets[0])
        assert tier.persistence(node) is None
        tier.advance(buckets[0])
        value = tier.persistence(node)
        assert value is not None and value == pytest.approx(1.0)

    def test_sliding_window_retention(self, records_factory):
        config = ServiceConfig(
            num_shards=1, window_records=25, window_buckets=2, queue_capacity=100, k=5
        )
        tier = SketchTier(config)
        only_first = records_factory(20, nodes=4, seed=1)
        tier.advance(only_first)
        tier.advance(records_factory(20, nodes=4, seed=2, start=100.0))
        # One bucket later the first window's records are still retained...
        assert tier.signature(only_first[0].src) is not None
        tier.advance(records_factory(20, nodes=4, seed=3, start=200.0))
        # ...and the window has rolled fully past the first bucket.
        assert tier.window == 2

    def test_advance_merges_instead_of_reobserving(self, records_factory):
        config = ServiceConfig(
            num_shards=1, window_records=25, window_buckets=3, queue_capacity=100, k=5
        )
        tier = SketchTier(config)
        for i in range(5):
            tier.advance(records_factory(20, nodes=4, seed=i, start=i * 100.0))
        # 0 merges for the first bucket, 1 for the second, 2 per advance
        # once the three-bucket window is full.
        assert tier.registry.counter_total("sketch.merges") == 1 + 2 + 2 + 2

    def test_each_record_observed_exactly_once(self, records_factory, monkeypatch):
        """The tentpole contract: advancing re-observes nothing — each
        record enters exactly one bucket builder, and windows are built by
        sketch merging (the old path re-read every retained record)."""
        from repro.streaming.stream_schemes import StreamingTopTalkers

        calls = {"observe": 0}
        original = StreamingTopTalkers.observe

        def counting(self, src, dst, weight=1.0):
            calls["observe"] += 1
            return original(self, src, dst, weight)

        monkeypatch.setattr(StreamingTopTalkers, "observe", counting)
        config = ServiceConfig(
            num_shards=1, window_records=25, window_buckets=3, queue_capacity=100, k=5
        )
        tier = SketchTier(config)
        total = 0
        for i in range(5):
            bucket = records_factory(20, nodes=4, seed=i, start=i * 100.0)
            total += len(bucket)
            tier.advance(bucket)
        assert calls["observe"] == total

    def test_persistence_clamped_when_distance_exceeds_one(
        self, config, buckets, monkeypatch
    ):
        """Regression: the sketch tier computed ``1 - distance`` without the
        range clamp the exact path got, so a distance > 1 surfaced as a
        negative persistence in /anomaly responses."""
        import repro.service.shard as shard_module
        from repro import obs

        monkeypatch.setattr(
            shard_module, "get_distance", lambda name: lambda a, b: 1.5
        )
        tier = SketchTier(config)
        tier.advance(buckets[0])
        tier.advance(buckets[0])
        node = next(record.src for record in buckets[0])
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            value = tier.persistence(node)
        assert value == 0.0
        assert registry.counter_total("distance.out_of_range") == 1.0

    def test_ut_scheme_uses_unexpected_talkers(self, buckets):
        from repro.streaming.stream_schemes import StreamingUnexpectedTalkers

        config = ServiceConfig(
            num_shards=1, window_records=25, queue_capacity=100, k=5, scheme="ut"
        )
        tier = SketchTier(config)
        tier.advance(buckets[0])
        assert isinstance(tier.current, StreamingUnexpectedTalkers)
