"""Service persistence through the history store: restart, endpoints.

The acceptance bar: a killed-and-restarted service process (same
checkpoint + history directories, fresh objects) answers ``/signature``
and ``/history`` from the store alone, and keeps numbering windows
correctly as new traffic arrives.
"""

from __future__ import annotations

import json

import pytest

from repro.service import ServiceConfig
from repro.service.http import SignatureService


@pytest.fixture
def config():
    return ServiceConfig(num_shards=2, window_records=8)


@pytest.fixture
def fill(records_factory):
    def _fill(service, *, count=32, seed=0, start=0.0):
        assert service.ingest(records_factory(count, seed=seed, start=start))
        return service.pump()

    return _fill


def make_service(config, tmp_path):
    return SignatureService(
        config,
        checkpoint_dir=tmp_path / "ckpt",
        history_dir=tmp_path / "hist",
    )


def get(service, path):
    status, _, body = service.respond("GET", path)
    return status, json.loads(body)


class TestHistoryEndpoints:
    def test_history_endpoint_answers(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        node = "h1"
        status, payload = get(service, f"/history/{node}")
        assert status == 200
        assert payload["node"] == node
        assert payload["window"] == service.supervisor.window
        assert not payload["partial"]
        for match in payload["matches"]:
            assert match["node"] != node
            assert match["distance"] >= 0.0
        service.close()

    def test_trajectory_endpoint_covers_all_windows(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        closed = fill(service)
        assert closed == 4
        status, payload = get(service, "/trajectory/h1")
        assert status == 200
        assert payload["windows"] == sorted(payload["windows"])
        assert payload["windows"][-1] <= service.supervisor.window
        for point in payload["trajectory"]:
            assert point["signature"], "stored trajectory points carry entries"
        service.close()

    def test_trajectory_range_params(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        status, payload = get(service, "/trajectory/h1?from=1&to=3")
        assert status == 200
        assert all(1 <= w < 3 for w in payload["windows"])
        service.close()

    def test_unknown_node_is_404(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        status, _ = get(service, "/history/no-such-node")
        assert status == 404
        status, _ = get(service, "/trajectory/no-such-node")
        assert status == 404
        service.close()

    def test_without_history_dir_is_404(self, config, tmp_path, fill):
        service = SignatureService(config, checkpoint_dir=tmp_path / "ckpt")
        fill(service)
        status, payload = get(service, "/history/h1")
        assert status == 404
        assert "history store" in payload["error"]
        service.close()


class TestServiceRestart:
    def test_restart_answers_from_store_alone(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        signatures = {}
        histories = {}
        for node in ("h1", "h2", "h3"):
            _, signatures[node] = get(service, f"/signature/{node}")
            _, histories[node] = get(service, f"/history/{node}")
        window = service.supervisor.window
        service.close()

        # "Kill" the process: fresh objects, no in-memory state carried over.
        revived = make_service(config, tmp_path)
        assert revived.supervisor.window == window
        for node in ("h1", "h2", "h3"):
            status, payload = get(revived, f"/signature/{node}")
            assert status == 200
            assert payload["signature"] == signatures[node]["signature"]
            assert not payload["approximate"]
            status, payload = get(revived, f"/history/{node}")
            assert status == 200
            assert payload["matches"] == histories[node]["matches"]
        revived.close()

    def test_ingest_after_restart_continues_numbering(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        window = service.supervisor.window
        service.close()

        revived = make_service(config, tmp_path)
        fill(revived, seed=1, start=100.0)
        assert revived.supervisor.window == window + 4
        status, payload = get(revived, "/trajectory/h1")
        assert status == 200
        assert payload["windows"][-1] > window
        revived.close()

    def test_crash_rebuild_after_restart_keeps_state(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        fill(service)
        service.close()

        revived = make_service(config, tmp_path)
        fill(revived, seed=1, start=100.0)
        supervisor = revived.supervisor
        for state in supervisor.shards:
            before = {
                owner: dict(sig.entries)
                for owner, sig in state.engine.signatures.items()
            }
            window_before = state.engine.window
            supervisor._try_restart(state, opportunistic=False)
            assert state.engine is not None, state.last_error
            assert state.engine.window == window_before
            after = {
                owner: dict(sig.entries)
                for owner, sig in state.engine.signatures.items()
            }
            assert before == after, (
                f"shard {state.shard_id} diverged in a rebuild after restart"
            )
        revived.close()

    def test_restart_with_empty_history_is_fresh(self, config, tmp_path, fill):
        service = make_service(config, tmp_path)
        assert service.supervisor.window == -1
        fill(service)
        service.close()
