"""Tests for the deterministic load harness (repro.service.loadgen)."""

import json
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    LoadGenerator,
    LoadProfile,
    ServiceConfig,
    SignatureService,
    build_schedule,
    exact_quantile,
    synthetic_records,
)


def make_service(**overrides):
    defaults = dict(num_shards=2, window_records=64)
    defaults.update(overrides)
    return SignatureService(ServiceConfig(**defaults))


class TestSchedule:
    def test_same_seed_same_schedule(self):
        profile = LoadProfile(requests=100, seed=42)
        assert build_schedule(profile) == build_schedule(profile)

    def test_different_seeds_differ(self):
        first = build_schedule(LoadProfile(requests=100, seed=1))
        second = build_schedule(LoadProfile(requests=100, seed=2))
        assert first != second

    def test_arrivals_are_open_loop_increasing(self):
        schedule = build_schedule(LoadProfile(requests=50, rate_per_s=100.0))
        times = [planned.at_s for planned in schedule]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        # Mean inter-arrival tracks 1/rate within seeded-random slop.
        mean_gap = times[-1] / len(times)
        assert 0.003 < mean_gap < 0.03

    def test_mix_weights_respected(self):
        profile = LoadProfile(
            requests=200, mix={"signature": 1.0, "similar": 0.0}
        )
        kinds = {planned.kind for planned in build_schedule(profile)}
        assert kinds == {"signature"}

    def test_ingest_bodies_are_valid_json_batches(self):
        profile = LoadProfile(requests=50, mix={"ingest": 1.0}, ingest_batch=7)
        for planned in build_schedule(profile):
            assert planned.method == "POST"
            rows = json.loads(planned.body)["records"]
            assert len(rows) == 7

    def test_profile_validation(self):
        with pytest.raises(ServiceError):
            LoadProfile(requests=0)
        with pytest.raises(ServiceError):
            LoadProfile(rate_per_s=0.0)
        with pytest.raises(ServiceError):
            LoadProfile(mix={"bogus": 1.0})
        with pytest.raises(ServiceError):
            LoadProfile(mix={"similar": 0.0})

    def test_synthetic_records_deterministic(self):
        assert synthetic_records(20, seed=3) == synthetic_records(20, seed=3)
        assert synthetic_records(20, seed=3) != synthetic_records(20, seed=4)


class TestExactQuantile:
    def test_order_statistic_definition(self):
        import numpy as np

        values = sorted([0.5, 0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6, 1.0])
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert exact_quantile(values, q) == float(
                np.quantile(values, q, method="higher")
            )
        assert exact_quantile([], 0.5) == 0.0
        with pytest.raises(ServiceError):
            exact_quantile(values, 1.5)


class TestLoadGenerator:
    def test_run_produces_full_report(self):
        service = make_service()
        try:
            report = LoadGenerator(
                service, LoadProfile(requests=80, warmup_records=128, seed=9)
            ).run()
        finally:
            service.close()
        assert sum(len(v) for v in report.latencies.values()) == 80
        summary = report.endpoint_summary()
        assert set(summary) <= {"signature", "similar", "anomaly", "ingest"}
        for entry in summary.values():
            assert entry["p50_s"] <= entry["p95_s"] <= entry["p99_s"]
            assert entry["ok"] == entry["count"]  # nothing 5xx in calm seas
        assert report.slo_report["objectives"]
        assert report.sample_traces
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["profile"]["seed"] == 9

    def test_sample_traces_resolve_via_trace_endpoint(self):
        service = make_service()
        try:
            report = LoadGenerator(
                service, LoadProfile(requests=60, warmup_records=128, seed=2)
            ).run()
            for kind, trace_id in report.sample_traces.items():
                status, _headers, body = service.respond(
                    "GET", f"/trace/{trace_id}"
                )
                assert status == 200, kind
                assert json.loads(body)["spans"]["name"] == "service.request"
        finally:
            service.close()

    def test_snapshot_carries_merged_digests(self):
        service = make_service()
        try:
            report = LoadGenerator(
                service, LoadProfile(requests=60, warmup_records=128, seed=4)
            ).run()
        finally:
            service.close()
        names = {name for name, _l, _s in report.snapshot["digests"]}
        assert "service.latency_s" in names
        assert "breaker.latency_s" in names

    def test_warmup_can_be_skipped(self):
        service = make_service()
        try:
            profile = LoadProfile(
                requests=20,
                warmup_records=0,
                seed=1,
                mix={"signature": 1.0},
            )
            report = LoadGenerator(service, profile).run()
        finally:
            service.close()
        # Nothing ingested: every signature lookup misses, none 5xx.
        assert report.statuses["signature"] == {404: 20}

    def test_paced_mode_sleeps_scheduled_gaps(self):
        service = make_service()
        sleeps = []
        try:
            profile = LoadProfile(
                requests=10,
                rate_per_s=5.0,  # big gaps so every request waits
                warmup_records=0,
                pace=True,
                mix={"signature": 1.0},
            )
            LoadGenerator(service, profile, sleep=sleeps.append).run()
        finally:
            service.close()
        assert sleeps, "paced mode should sleep between arrivals"
        assert all(gap > 0 for gap in sleeps)

    def test_concurrent_slo_scrapes_during_load(self):
        """Satellite guarantee: /slo (and /metrics) stay consistent while
        the load generator hammers the data plane from another thread."""
        service = make_service()
        errors = []
        done = threading.Event()

        def scrape():
            while not done.is_set():
                try:
                    status, _h, body = service.respond("GET", "/slo")
                    assert status == 200
                    report = json.loads(body)
                    for entry in report["objectives"]:
                        assert entry["verdict"] in ("pass", "fail")
                        for window in entry["windows"]:
                            assert window["bad"] <= window["total"]
                    m_status, _mh, text = service.respond("GET", "/metrics")
                    assert m_status == 200
                except Exception as error:  # noqa: BLE001 - collected below
                    errors.append(error)
                    return

        scraper = threading.Thread(target=scrape)
        scraper.start()
        try:
            report = LoadGenerator(
                service, LoadProfile(requests=150, warmup_records=128, seed=11)
            ).run()
        finally:
            done.set()
            scraper.join(timeout=10.0)
            service.close()
        assert errors == []
        assert sum(len(v) for v in report.latencies.values()) == 150
