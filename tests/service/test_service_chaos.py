"""Service chaos suite (``-m chaos``): the failure-envelope acceptance tests.

Every test here injects a scripted fault into a running service and
asserts the promised envelope:

* **no lost acknowledged ingests** — every record admitted by the queue is
  applied to its shard, crash or no crash;
* **byte-identical recovery** — a shard killed mid-ingest rebuilds to
  exactly the signatures of a never-crashed run;
* **breakers on schedule** — a wedged shard's breaker opens within the
  configured window, half-opens after ``open_for_s``, closes on a good
  probe;
* **degraded, not down** — under every injected fault the service answers
  (approximately where it must), and ``/status`` says so honestly.
"""

import json

import pytest

from repro import obs
from repro.service import (
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    STATE_CLOSED,
    STATE_OPEN,
    BreakerPolicy,
    KillShard,
    ServiceConfig,
    ServiceFrontend,
    ShardSupervisor,
    SignatureService,
    WedgeShard,
    corrupt_checkpoint,
    query_storm,
)

pytestmark = pytest.mark.chaos


def build_service(config, clock=None, checkpoint_dir=None):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    return SignatureService(config, checkpoint_dir=checkpoint_dir, **kwargs)


def run_windows(service, records_factory, count=120, seed=5):
    assert service.ingest(records_factory(count, nodes=12, seed=seed))
    service.pump()


def status_of(service):
    return json.loads(service.respond("GET", "/status")[2])


def shard_node(supervisor, shard_id):
    return next(
        f"h{i}" for i in range(12) if supervisor.shard_for(f"h{i}") == shard_id
    )


class TestKillAShard:
    def test_byte_identical_recovery_mid_ingest(
        self, small_config, records_factory, tmp_path
    ):
        reference = build_service(small_config, checkpoint_dir=tmp_path / "ref")
        run_windows(reference, records_factory)
        chaotic = build_service(small_config, checkpoint_dir=tmp_path / "chaos")
        chaotic.supervisor.install_injector(1, KillShard(at_window=2))
        run_windows(chaotic, records_factory)
        for ref_state, chaos_state in zip(
            reference.supervisor.shards, chaotic.supervisor.shards
        ):
            assert chaos_state.engine.signatures == ref_state.engine.signatures
        assert status_of(chaotic)["service"] == "HEALTHY"
        assert chaotic.supervisor.shards[1].restarts == 1

    def test_no_acknowledged_ingest_lost(self, small_config, records_factory):
        service = build_service(small_config)
        service.supervisor.install_injector(0, KillShard(at_window=1))
        accepted = 0
        for seed in range(4):
            batch = records_factory(30, nodes=12, seed=seed)
            document = json.dumps(
                {"records": [[r.time, r.src, r.dst, r.weight] for r in batch]}
            )
            status, _headers, body = service.respond("POST", "/ingest", document)
            assert status == 202
            accepted += json.loads(body)["accepted"]
        service.pump(force=True)
        applied = sum(
            state.records_ingested() for state in service.supervisor.shards
        )
        assert applied == accepted == 120

    def test_exhausted_restarts_degrade_not_down(
        self, small_config, records_factory
    ):
        service = build_service(small_config)
        service.supervisor.install_injector(
            0, KillShard(at_window=1, rebuild_failures=1000)
        )
        run_windows(service, records_factory)
        report = status_of(service)
        assert report["service"] == "DEGRADED"
        healths = [shard["health"] for shard in report["shards"]]
        assert healths.count("DEGRADED") == 1
        assert healths.count("HEALTHY") == 2
        # The degraded shard still answers (approximately).
        node = shard_node(service.supervisor, 0)
        status, _headers, body = service.respond("GET", f"/signature/{node}")
        assert status == 200
        assert json.loads(body)["approximate"] is True


class TestWedgeAShard:
    def test_breaker_opens_then_half_opens_on_schedule(
        self, records_factory, clock
    ):
        config = ServiceConfig(
            num_shards=3,
            window_records=30,
            queue_capacity=120,
            k=5,
            breaker=BreakerPolicy(
                window=8,
                min_calls=2,
                failure_threshold=0.5,
                open_for_s=5.0,
                half_open_probes=1,
            ),
        )
        service = build_service(config, clock=clock)
        wedge = WedgeShard(from_window=0)
        service.supervisor.install_injector(1, wedge)
        run_windows(service, records_factory)
        node = shard_node(service.supervisor, 1)
        breaker = service.supervisor.shards[1].breaker

        # Wedged queries answer from the sketch tier and trip the breaker
        # within min_calls guarded calls.
        for _ in range(2):
            status, _headers, body = service.respond("GET", f"/signature/{node}")
            assert status == 200
            assert json.loads(body)["approximate"] is True
        assert breaker.state == STATE_OPEN
        assert wedge.wedged_queries == 2

        # While open, queries skip the engine entirely: still approximate,
        # no new wedged calls.
        status, _headers, body = service.respond("GET", f"/signature/{node}")
        assert json.loads(body)["approximate"] is True
        assert wedge.wedged_queries == 2

        report = status_of(service)
        assert report["shards"][1]["health"] == HEALTH_DEGRADED
        assert report["shards"][1]["breaker"] == STATE_OPEN
        assert report["shards"][0]["health"] == HEALTH_HEALTHY

        # On schedule: still OPEN before open_for_s, HALF_OPEN after; a
        # successful probe (fault released) closes it and exact answers
        # resume.
        clock.advance(4.0)
        assert breaker.state == STATE_OPEN
        clock.advance(1.5)
        wedge.release()
        status, _headers, body = service.respond("GET", f"/signature/{node}")
        assert json.loads(body)["approximate"] is False
        assert breaker.state == STATE_CLOSED
        assert status_of(service)["service"] == "HEALTHY"

    def test_failed_probe_reopens(self, records_factory, clock):
        config = ServiceConfig(
            num_shards=3,
            window_records=30,
            queue_capacity=120,
            k=5,
            breaker=BreakerPolicy(
                window=8, min_calls=2, failure_threshold=0.5, open_for_s=5.0
            ),
        )
        service = build_service(config, clock=clock)
        wedge = WedgeShard(from_window=0)
        service.supervisor.install_injector(1, wedge)
        run_windows(service, records_factory)
        node = shard_node(service.supervisor, 1)
        breaker = service.supervisor.shards[1].breaker
        for _ in range(2):
            service.respond("GET", f"/signature/{node}")
        assert breaker.state == STATE_OPEN
        clock.advance(6.0)
        # Probe admitted, wedge still active: the probe fails, re-opens.
        status, _headers, body = service.respond("GET", f"/signature/{node}")
        assert json.loads(body)["approximate"] is True
        assert breaker.state == STATE_OPEN
        assert breaker.opened_count == 2


class TestCorruptCheckpoint:
    def test_corruption_detected_and_recovery_exact(
        self, small_config, records_factory, tmp_path
    ):
        chaotic = build_service(small_config, checkpoint_dir=tmp_path / "chaos")
        run_windows(chaotic, records_factory, count=60)
        # Corrupt shard 1's window-1 checkpoint on disk, then crash the
        # shard: the rebuild must detect the damage (hash verification),
        # recompute that window, and still converge byte-identically.
        corrupt_checkpoint(tmp_path / "chaos" / "shard-01", window=1)
        chaotic.supervisor.install_injector(1, KillShard(at_window=2))
        events = []
        with obs.use_event_log(_ListLog(events)):
            assert chaotic.ingest(records_factory(60, nodes=12, seed=5, start=60.0))
            chaotic.pump()
        issue_events = [
            event for event in events
            if event["event"] == "service.shard.checkpoint_issue"
        ]
        assert issue_events
        assert any("hash verification" in event["issue"] for event in issue_events)
        state = chaotic.supervisor.shards[1]
        assert state.health == HEALTH_HEALTHY
        # Recovery must still converge byte-identically to a clean run fed
        # the exact same two batches.
        clean = build_service(small_config)
        run_windows(clean, records_factory, count=60)
        assert clean.ingest(records_factory(60, nodes=12, seed=5, start=60.0))
        clean.pump()
        for clean_state, chaos_state in zip(
            clean.supervisor.shards, chaotic.supervisor.shards
        ):
            assert chaos_state.engine.signatures == clean_state.engine.signatures


class _ListLog:
    enabled = True
    run_id = "test"
    level = "debug"

    def __init__(self, records):
        self._records = records

    def emit(self, event, level="info", **fields):
        record = {"event": event, "level": level, **fields}
        self._records.append(record)
        return record

    def close(self):
        return None


class TestQueryStorm:
    def test_full_queue_burst_429_and_zero_loss(
        self, small_config, records_factory
    ):
        supervisor = ShardSupervisor(small_config)
        frontend = ServiceFrontend(supervisor, small_config)
        warmup = records_factory(120, nodes=12, seed=5)
        frontend.queue.offer(warmup)
        frontend.pump()

        def ingest_request(seed):
            batch = records_factory(30, nodes=12, seed=seed, start=1000.0 * seed)
            return (
                "POST",
                "/ingest",
                json.dumps(
                    {"records": [[r.time, r.src, r.dst, r.weight] for r in batch]}
                ),
            )

        # 8 concurrent 30-record bursts against a 120-record queue: at most
        # 4 can be admitted, the rest must bounce with 429 — never a crash,
        # never a partial admit.
        tally, responses = query_storm(
            frontend, [ingest_request(seed) for seed in range(8)], threads=8
        )
        assert tally[202] + tally[429] == 8
        assert tally[202] == 4
        accepted = sum(
            json.loads(body)["accepted"]
            for status, _headers, body in responses
            if status == 202
        )
        assert len(frontend.queue) == accepted == 120
        for status, headers, _body in responses:
            if status == 429:
                assert headers["Retry-After"] == "1"
        # Drain: every acknowledged record is applied, none lost.
        frontend.pump(force=True)
        applied = sum(state.records_ingested() for state in supervisor.shards)
        assert applied == 120 + 120

    def test_storm_during_degradation_never_500s(
        self, small_config, records_factory
    ):
        service = build_service(small_config)
        service.supervisor.install_injector(
            0, KillShard(at_window=1, rebuild_failures=1000)
        )
        run_windows(service, records_factory)
        nodes = [f"h{i}" for i in range(12)]
        requests = [
            ("GET", f"/signature/{node}", None) for node in nodes
        ] + [
            ("GET", f"/similar/{node}?k=3", None) for node in nodes
        ] + [
            ("GET", f"/anomaly/{node}", None) for node in nodes
        ] + [("GET", "/status", None)] * 4
        tally, _responses = query_storm(service.frontend, requests, threads=8)
        assert set(tally) <= {200, 404}
        assert tally[200] >= 4
