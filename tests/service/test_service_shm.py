"""Service integration of the shared-memory recompute engine.

The supervisor owns one :class:`ShmEngine` pool for the whole shard fleet
(``strategy="shm"``); shards borrow it per window advance.  Signatures —
including after a crash/rebuild cycle — must be byte-identical to the
serial service, and closing the service must release the pool.
"""

import random

import pytest

from repro.exceptions import ServiceError
from repro.graph.stream import EdgeRecord
from repro.parallel.shm import active_segment_names
from repro.service import ServiceConfig, SignatureService


def make_bucket(size, seed):
    rng = random.Random(seed)
    return [
        EdgeRecord(
            time=float(t),
            src=f"h{rng.randrange(12)}",
            dst=f"h{rng.randrange(12)}",
            weight=float(rng.randrange(1, 5)),
        )
        for t in range(size)
    ]


def run_service(strategy, buckets=3):
    config = ServiceConfig(
        scheme="tt",
        k=5,
        num_shards=2,
        window_records=32,
        strategy=strategy,
        jobs=2,
    )
    service = SignatureService(config)
    try:
        for seed in range(buckets):
            assert service.ingest(make_bucket(32, seed))
            service.pump()
        return {
            state.shard_id: {
                node: sig.entries for node, sig in state.engine.signatures.items()
            }
            for state in service.supervisor.shards
        }
    finally:
        service.close()


class TestServiceShmStrategy:
    def test_byte_identical_to_serial(self):
        assert run_service("shm") == run_service("serial")

    def test_close_releases_segments(self):
        run_service("shm")
        assert active_segment_names() == []

    def test_close_is_idempotent(self):
        config = ServiceConfig(strategy="shm", jobs=1)
        service = SignatureService(config)
        service.close()
        service.close()

    def test_rebuild_uses_shared_pool(self):
        config = ServiceConfig(
            scheme="tt", k=5, num_shards=1, window_records=32,
            strategy="shm", jobs=2,
        )
        service = SignatureService(config)
        try:
            for seed in range(2):
                service.ingest(make_bucket(32, seed))
                service.pump()
            state = service.supervisor.shards[0]
            before = {n: s.entries for n, s in state.engine.signatures.items()}
            # The restart path must construct the new engine with the same
            # shared pool and converge to identical signatures.
            service.supervisor._try_restart(state, opportunistic=False)
            rebuilt = service.supervisor.shards[0].engine
            assert rebuilt._shm_engine is service.supervisor._shm_engine
            after = {n: s.entries for n, s in rebuilt.signatures.items()}
            assert after == before
        finally:
            service.close()

    def test_serial_config_has_no_pool(self):
        service = SignatureService(ServiceConfig())
        try:
            assert service.supervisor._shm_engine is None
        finally:
            service.close()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ServiceError, match="strategy"):
            ServiceConfig(strategy="osmosis")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ServiceError, match="jobs"):
            ServiceConfig(jobs=-1)
