"""Circuit breaker state machine under a manual clock."""

import threading

import pytest

from repro.exceptions import BreakerOpen, ServiceError
from repro.service import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerPolicy,
    CircuitBreaker,
)


def twitchy(clock, **overrides) -> CircuitBreaker:
    policy = BreakerPolicy(
        **{
            "window": 8,
            "min_calls": 2,
            "failure_threshold": 0.5,
            "open_for_s": 5.0,
            "half_open_probes": 1,
            **overrides,
        }
    )
    return CircuitBreaker(policy, name="test", clock=clock)


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = twitchy(clock)
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_failures_below_min_calls_do_not_trip(self, clock):
        breaker = twitchy(clock, min_calls=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_trips_at_failure_threshold(self, clock):
        breaker = twitchy(clock)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_successes_keep_it_closed(self, clock):
        breaker = twitchy(clock)
        for _ in range(20):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_slow_success_counts_as_failure(self, clock):
        breaker = twitchy(clock, latency_threshold_s=0.1)
        breaker.record_success(latency_s=0.5)
        breaker.record_success(latency_s=0.5)
        assert breaker.state == STATE_OPEN

    def test_rolling_window_forgets_old_outcomes(self, clock):
        breaker = twitchy(clock, window=4, min_calls=4, failure_threshold=1.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        breaker.record_failure()
        # The window now holds 3 successes + 1 failure: under threshold.
        assert breaker.state == STATE_CLOSED


class TestOpenToHalfOpen:
    def test_half_opens_on_schedule(self, clock):
        breaker = twitchy(clock, open_for_s=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(4.9)
        assert breaker.state == STATE_OPEN
        clock.advance(0.2)
        assert breaker.state == STATE_HALF_OPEN

    def test_half_open_admits_limited_probes(self, clock):
        breaker = twitchy(clock, half_open_probes=1)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()          # the probe
        assert not breaker.allow()      # no second probe in flight

    def test_probe_success_closes(self, clock):
        breaker = twitchy(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        # And the rolling window was cleared: one new failure cannot trip it
        # on stale history.
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_probe_failure_reopens_and_restarts_timer(self, clock):
        breaker = twitchy(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_count == 2
        clock.advance(4.0)
        assert breaker.state == STATE_OPEN
        clock.advance(1.5)
        assert breaker.state == STATE_HALF_OPEN

    def test_multi_probe_policy_needs_all_successes(self, clock):
        breaker = twitchy(clock, half_open_probes=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED


class TestCall:
    def test_call_records_and_propagates(self, clock):
        breaker = twitchy(clock)
        assert breaker.call(lambda: 42) == 42
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        with pytest.raises(ValueError):
            breaker.call(self._boom)
        assert breaker.state == STATE_OPEN
        with pytest.raises(BreakerOpen):
            breaker.call(lambda: 42)

    @staticmethod
    def _boom():
        raise ValueError("nope")

    def test_failure_rate(self, clock):
        breaker = twitchy(clock)
        breaker.record_success()
        breaker.record_success()
        assert breaker.failure_rate() == 0.0

    def test_thread_safety_smoke(self, clock):
        breaker = twitchy(clock, window=64, min_calls=64, failure_threshold=1.0)
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    if breaker.allow():
                        breaker.record_success()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert breaker.state == STATE_CLOSED


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_calls": 0},
            {"window": 4, "min_calls": 5},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"latency_threshold_s": 0.0},
            {"open_for_s": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(ServiceError):
            BreakerPolicy(**kwargs)
