"""Supervision: routing, lockstep windows, restart budget, escalation, heal."""

import pytest

from repro.service import (
    HEALTH_DEGRADED,
    HEALTH_DOWN,
    HEALTH_HEALTHY,
    STATE_CLOSED,
    BreakSketch,
    KillShard,
    ShardSupervisor,
)


def windows_of(records, size=30):
    return [records[start:start + size] for start in range(0, len(records), size)]


@pytest.fixture
def traffic(records_factory):
    return windows_of(records_factory(120, nodes=12, seed=5))


class TestRouting:
    def test_shard_assignment_is_stable_and_total(self, small_config):
        supervisor = ShardSupervisor(small_config)
        for node in ("h0", "h1", "alice", "10.0.0.1"):
            shard = supervisor.shard_for(node)
            assert 0 <= shard < small_config.num_shards
            assert supervisor.shard_for(node) == shard
            assert supervisor.state_for(node).shard_id == shard

    def test_records_routed_by_source(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        supervisor.ingest(traffic[0])
        for state in supervisor.shards:
            for record in state.buckets[0]:
                assert supervisor.shard_for(record.src) == state.shard_id

    def test_lockstep_windows(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        for bucket in traffic:
            supervisor.ingest(bucket)
        assert supervisor.window == 3
        for state in supervisor.shards:
            assert state.engine.window == 3
            assert state.sketch.window == 3
            assert len(state.buckets) == 4

    def test_shards_cover_all_signatures(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        for bucket in traffic:
            supervisor.ingest(bucket)
        owned = set()
        for state in supervisor.shards:
            for node in state.engine.signatures:
                assert supervisor.shard_for(node) == state.shard_id
                owned.add(node)
        # Signatures cover the current window's active sources (the
        # population is per-window, exactly as in the pipeline).
        sources = {record.src for record in traffic[-1]}
        assert owned == sources


class TestRecovery:
    def test_crash_recovers_byte_identical(self, small_config, traffic, tmp_path):
        reference = ShardSupervisor(small_config, checkpoint_dir=tmp_path / "ref")
        chaotic = ShardSupervisor(small_config, checkpoint_dir=tmp_path / "chaos")
        chaotic.install_injector(1, KillShard(at_window=2))
        for bucket in traffic:
            reference.ingest(bucket)
            chaotic.ingest(bucket)
        state = chaotic.shards[1]
        assert state.health == HEALTH_HEALTHY
        assert state.restarts == 1
        for ref_state, chaos_state in zip(reference.shards, chaotic.shards):
            assert chaos_state.engine.signatures == ref_state.engine.signatures
            assert chaos_state.engine.prev_signatures == ref_state.engine.prev_signatures

    def test_no_acknowledged_records_lost_across_crash(
        self, small_config, traffic
    ):
        supervisor = ShardSupervisor(small_config)
        supervisor.install_injector(0, KillShard(at_window=1))
        for bucket in traffic:
            supervisor.ingest(bucket)
        ingested = sum(state.records_ingested() for state in supervisor.shards)
        assert ingested == sum(len(bucket) for bucket in traffic)

    def test_restart_budget_exhaustion_degrades(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        injector = KillShard(at_window=1, rebuild_failures=100)
        supervisor.install_injector(0, injector)
        for bucket in traffic:
            supervisor.ingest(bucket)
        state = supervisor.shards[0]
        assert state.health == HEALTH_DEGRADED
        assert state.engine is None
        # Budgeted attempts at the crash window, then one opportunistic
        # attempt per later window.
        assert injector.rebuild_attempts >= small_config.max_restarts + 1
        # Other shards are untouched.
        assert supervisor.shards[1].health == HEALTH_HEALTHY
        assert supervisor.shards[2].health == HEALTH_HEALTHY

    def test_degraded_shard_heals_when_fault_clears(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        # Fail the crash-window budget (1 + max_restarts attempts), then the
        # next window's opportunistic rebuild succeeds.
        injector = KillShard(
            at_window=1, rebuild_failures=small_config.max_restarts + 1
        )
        supervisor.install_injector(0, injector)
        for bucket in traffic:
            supervisor.ingest(bucket)
        state = supervisor.shards[0]
        assert state.health == HEALTH_HEALTHY
        assert state.engine is not None
        assert state.engine.window == supervisor.window
        # The healed engine serves the same signatures as a clean run.
        reference = ShardSupervisor(small_config)
        for bucket in traffic:
            reference.ingest(bucket)
        assert state.engine.signatures == reference.shards[0].engine.signatures

    def test_sketch_failure_goes_down_then_heals(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        supervisor.install_injector(2, BreakSketch(at_window=1))
        for bucket in traffic[:3]:
            supervisor.ingest(bucket)
        state = supervisor.shards[2]
        assert state.health == HEALTH_DOWN
        # Ingest log keeps accumulating while DOWN...
        assert len(state.buckets) == 3
        # ...so an explicit heal rebuilds both tiers completely.
        supervisor.install_injector(2, None)
        assert supervisor.heal(2)
        assert state.health == HEALTH_HEALTHY
        supervisor.ingest(traffic[3])
        reference = ShardSupervisor(small_config)
        for bucket in traffic:
            reference.ingest(bucket)
        assert state.engine.signatures == reference.shards[2].engine.signatures


class TestStatus:
    def test_status_shape(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        for bucket in traffic:
            supervisor.ingest(bucket)
        status = supervisor.status()
        assert status["window"] == 3
        assert status["num_shards"] == 3
        for shard in status["shards"]:
            assert shard["health"] == HEALTH_HEALTHY
            assert shard["breaker"] == STATE_CLOSED
            assert shard["window"] == 3
            assert shard["restarts"] == 0

    def test_breaker_state_reported_as_degraded(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        for bucket in traffic:
            supervisor.ingest(bucket)
        state = supervisor.shards[0]
        for _ in range(4):
            state.breaker.record_failure()
        assert supervisor.shard_health(state) == HEALTH_DEGRADED

    def test_metrics_snapshot_prefixes_shards(self, small_config, traffic):
        supervisor = ShardSupervisor(small_config)
        for bucket in traffic:
            supervisor.ingest(bucket)
        snapshot = supervisor.metrics_snapshot()
        windows = {
            labels["shard"]: value
            for name, labels, value in snapshot["counters"]
            if name == "shard.windows"
        }
        assert windows == {"0": 4.0, "1": 4.0, "2": 4.0}
