"""Unit tests for the masquerading simulation."""

import pytest

from repro.exceptions import PerturbationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph
from repro.perturb.masquerade import MasqueradePlan, apply_masquerade, relabel_graph


class TestRelabelGraph:
    def test_labels_substituted(self, triangle_graph):
        relabelled = relabel_graph(triangle_graph, {"a": "b", "b": "a"})
        # a's edges now belong to b and vice versa.
        assert relabelled.weight("b", "a") == 5.0  # was a -> b
        assert relabelled.weight("b", "c") == 2.0  # was a -> c
        assert relabelled.weight("a", "c") == 1.0  # was b -> c

    def test_unmapped_labels_unchanged(self, triangle_graph):
        relabelled = relabel_graph(triangle_graph, {"a": "b", "b": "a"})
        assert relabelled.weight("c", "b") == 3.0  # was c -> a

    def test_node_set_preserved_for_bijection(self, triangle_graph):
        relabelled = relabel_graph(triangle_graph, {"a": "b", "b": "a"})
        assert set(relabelled.nodes()) == set(triangle_graph.nodes())

    def test_non_injective_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            relabel_graph(triangle_graph, {"a": "x", "b": "x"})

    def test_collision_with_existing_label_rejected(self, triangle_graph):
        # Renaming a -> c while c stays put would merge two individuals.
        with pytest.raises(PerturbationError):
            relabel_graph(triangle_graph, {"a": "c"})

    def test_rename_to_fresh_label_allowed(self, triangle_graph):
        relabelled = relabel_graph(triangle_graph, {"a": "fresh"})
        assert "fresh" in relabelled
        assert "a" not in relabelled

    def test_bipartite_partitions_preserved(self, small_bipartite):
        relabelled = relabel_graph(small_bipartite, {"u1": "u2", "u2": "u1"})
        assert isinstance(relabelled, BipartiteGraph)
        assert relabelled.side("u1") == "left"
        assert relabelled.weight("u2", "d-private1") == 2.0


class TestApplyMasquerade:
    def test_mapping_is_derangement(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        _relabelled, plan = apply_masquerade(
            graph, fraction=0.3, candidates=tiny_enterprise.local_hosts, seed=1
        )
        assert len(plan.mapping) >= 2
        assert all(src != dst for src, dst in plan.mapping.items())
        # Bijective on P.
        assert set(plan.mapping) == set(plan.mapping.values()) == set(plan.perturbed_nodes)

    def test_explicit_nodes(self, triangle_graph):
        relabelled, plan = apply_masquerade(triangle_graph, nodes=["a", "b"], seed=0)
        assert plan.mapping == {"a": "b", "b": "a"}
        assert relabelled.weight("b", "c") == 2.0

    def test_zero_fraction_is_identity(self, triangle_graph):
        relabelled, plan = apply_masquerade(triangle_graph, fraction=0.0, seed=0)
        assert plan.mapping == {}
        assert relabelled == triangle_graph

    def test_small_fraction_bumps_to_two_nodes(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        _relabelled, plan = apply_masquerade(
            graph, fraction=0.01, candidates=tiny_enterprise.local_hosts, seed=2
        )
        assert len(plan.mapping) == 2

    def test_deterministic_with_seed(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        first = apply_masquerade(graph, fraction=0.2, candidates=hosts, seed=7)
        second = apply_masquerade(graph, fraction=0.2, candidates=hosts, seed=7)
        assert first[1].mapping == second[1].mapping
        assert first[0] == second[0]

    def test_defaults_to_left_partition(self, small_bipartite):
        _relabelled, plan = apply_masquerade(small_bipartite, fraction=1.0, seed=0)
        assert plan.perturbed_nodes == {"u1", "u2"}

    def test_both_modes_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            apply_masquerade(triangle_graph, fraction=0.5, nodes=["a", "b"])
        with pytest.raises(PerturbationError):
            apply_masquerade(triangle_graph)

    def test_invalid_fraction(self, triangle_graph):
        with pytest.raises(PerturbationError):
            apply_masquerade(triangle_graph, fraction=1.5)

    def test_unknown_nodes_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            apply_masquerade(triangle_graph, nodes=["a", "ghost"])

    def test_single_node_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            apply_masquerade(triangle_graph, nodes=["a"])

    def test_plan_pairs_view(self):
        plan = MasqueradePlan(mapping={"a": "b"}, perturbed_nodes=frozenset({"a", "b"}))
        assert plan.pairs == [("a", "b")]
