"""Unit tests for auxiliary noise models."""

import pytest

from repro.exceptions import PerturbationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph
from repro.perturb.noise import drop_random_nodes, jitter_weights


class TestJitterWeights:
    def test_zero_std_is_exact_copy(self, triangle_graph):
        jittered = jitter_weights(triangle_graph, relative_std=0.0, rng=0)
        assert jittered == triangle_graph

    def test_membership_preserved(self, triangle_graph):
        jittered = jitter_weights(triangle_graph, relative_std=0.5, rng=0)
        assert set(jittered.nodes()) == set(triangle_graph.nodes())
        assert {(s, d) for s, d, _w in jittered.edges()} == {
            (s, d) for s, d, _w in triangle_graph.edges()
        }

    def test_weights_change_but_stay_positive(self, triangle_graph):
        jittered = jitter_weights(triangle_graph, relative_std=0.5, rng=0)
        assert jittered != triangle_graph
        assert all(weight > 0 for _s, _d, weight in jittered.edges())

    def test_negative_std_rejected(self, triangle_graph):
        with pytest.raises(PerturbationError):
            jitter_weights(triangle_graph, relative_std=-0.1)

    def test_bipartite_preserved(self, small_bipartite):
        jittered = jitter_weights(small_bipartite, relative_std=0.3, rng=1)
        assert isinstance(jittered, BipartiteGraph)
        assert jittered.side("u1") == "left"

    def test_deterministic(self, triangle_graph):
        first = jitter_weights(triangle_graph, relative_std=0.3, rng=5)
        second = jitter_weights(triangle_graph, relative_std=0.3, rng=5)
        assert first == second


class TestDropRandomNodes:
    def test_zero_fraction_copy(self, triangle_graph):
        survivor = drop_random_nodes(triangle_graph, fraction=0.0, rng=0)
        assert survivor == triangle_graph

    def test_full_fraction_empties_graph(self, triangle_graph):
        survivor = drop_random_nodes(triangle_graph, fraction=1.0, rng=0)
        assert survivor.num_nodes == 0

    def test_partial_drop(self, star_graph):
        survivor = drop_random_nodes(star_graph, fraction=0.5, rng=0)
        assert survivor.num_nodes == 3  # 6 nodes, drop 3

    def test_invalid_fraction(self, triangle_graph):
        with pytest.raises(PerturbationError):
            drop_random_nodes(triangle_graph, fraction=1.5)

    def test_original_untouched(self, triangle_graph):
        snapshot = triangle_graph.copy()
        drop_random_nodes(triangle_graph, fraction=0.5, rng=0)
        assert triangle_graph == snapshot
