"""Unit tests for the paper's insert/delete robustness perturbation."""

import numpy as np
import pytest

from repro.exceptions import PerturbationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph
from repro.perturb.edge_perturbation import (
    delete_weight_units,
    insert_random_edges,
    perturb_graph,
)


@pytest.fixture
def weighted_graph():
    graph = CommGraph()
    for i in range(10):
        for j in range(3):
            graph.add_edge(f"src{i}", f"dst{(i + j) % 12}", float(j + 1))
    return graph


class TestInsertions:
    def test_count_respected(self, weighted_graph):
        perturbed = insert_random_edges(weighted_graph, count=5, rng=0)
        # New edges may overwrite existing ones, so edge count grows by at
        # most 5, but total insertion operations are exactly 5 (weights from
        # the pool are positive so no edge disappears).
        assert perturbed.num_edges >= weighted_graph.num_edges
        assert perturbed.num_edges <= weighted_graph.num_edges + 5

    def test_zero_count_is_copy(self, weighted_graph):
        perturbed = insert_random_edges(weighted_graph, count=0, rng=0)
        assert perturbed == weighted_graph
        assert perturbed is not weighted_graph

    def test_original_untouched(self, weighted_graph):
        snapshot = weighted_graph.copy()
        insert_random_edges(weighted_graph, count=20, rng=1)
        assert weighted_graph == snapshot

    def test_weights_come_from_pool(self, weighted_graph):
        pool = set(weighted_graph.edge_weights())
        perturbed = insert_random_edges(weighted_graph, count=30, rng=2)
        assert set(perturbed.edge_weights()) <= pool

    def test_deterministic_with_seed(self, weighted_graph):
        first = insert_random_edges(weighted_graph, count=10, rng=42)
        second = insert_random_edges(weighted_graph, count=10, rng=42)
        assert first == second

    def test_negative_count_rejected(self, weighted_graph):
        with pytest.raises(PerturbationError):
            insert_random_edges(weighted_graph, count=-1)

    def test_empty_graph_rejected(self):
        with pytest.raises(PerturbationError):
            insert_random_edges(CommGraph(), count=1)

    def test_self_loop_only_graph_rejected(self):
        graph = CommGraph([("a", "a", 1.0)])
        with pytest.raises(PerturbationError):
            insert_random_edges(graph, count=1, rng=0)

    def test_bipartite_constraint_respected(self, small_bipartite):
        perturbed = insert_random_edges(small_bipartite, count=10, rng=3)
        assert isinstance(perturbed, BipartiteGraph)
        for src, dst, _weight in perturbed.edges():
            assert perturbed.side(src) == "left"
            assert perturbed.side(dst) == "right"

    def test_no_self_loops_inserted(self, weighted_graph):
        perturbed = insert_random_edges(weighted_graph, count=50, rng=4)
        assert all(src != dst for src, dst, _w in perturbed.edges())


class TestDeletions:
    def test_total_weight_drops_by_count(self, weighted_graph):
        before = weighted_graph.total_weight
        perturbed = delete_weight_units(weighted_graph, count=10, rng=0)
        assert perturbed.total_weight == pytest.approx(before - 10)

    def test_deleting_everything(self, weighted_graph):
        total = int(weighted_graph.total_weight)
        perturbed = delete_weight_units(weighted_graph, count=total, rng=0)
        assert perturbed.total_weight == pytest.approx(0.0)
        assert perturbed.num_edges == 0

    def test_overshoot_clamps_to_total(self, weighted_graph):
        total = int(weighted_graph.total_weight)
        perturbed = delete_weight_units(weighted_graph, count=total * 10, rng=0)
        assert perturbed.total_weight == pytest.approx(0.0)

    def test_zero_count_is_copy(self, weighted_graph):
        assert delete_weight_units(weighted_graph, count=0, rng=0) == weighted_graph

    def test_fractional_weights_fall_back_to_multinomial(self):
        graph = CommGraph([("a", "b", 5.5), ("a", "c", 3.5)])
        perturbed = delete_weight_units(graph, count=3, rng=0)
        assert perturbed.total_weight <= graph.total_weight
        assert perturbed.total_weight >= graph.total_weight - 3 - 1e-9

    def test_deterministic_with_seed(self, weighted_graph):
        first = delete_weight_units(weighted_graph, count=7, rng=9)
        second = delete_weight_units(weighted_graph, count=7, rng=9)
        assert first == second

    def test_negative_count_rejected(self, weighted_graph):
        with pytest.raises(PerturbationError):
            delete_weight_units(weighted_graph, count=-1)

    def test_empty_graph_rejected(self):
        with pytest.raises(PerturbationError):
            delete_weight_units(CommGraph(), count=1)

    def test_weight_proportional_bias(self):
        # One massive edge and many tiny ones: deletions should overwhelmingly
        # hit the massive edge.
        graph = CommGraph([("a", "heavy", 1000.0)])
        for i in range(10):
            graph.add_edge("a", f"light{i}", 1.0)
        perturbed = delete_weight_units(graph, count=100, rng=0)
        assert perturbed.weight("a", "heavy") < 1000.0
        survivors = sum(1 for i in range(10) if perturbed.has_edge("a", f"light{i}"))
        assert survivors >= 7  # light edges mostly untouched


class TestFullPerturbation:
    def test_alpha_beta_zero_is_identity(self, weighted_graph):
        assert perturb_graph(weighted_graph, 0.0, 0.0, rng=0) == weighted_graph

    def test_insert_then_delete(self, weighted_graph):
        perturbed = perturb_graph(weighted_graph, alpha=0.2, beta=0.2, rng=0)
        assert perturbed != weighted_graph
        assert perturbed.num_nodes >= weighted_graph.num_nodes

    def test_invalid_intensities(self, weighted_graph):
        with pytest.raises(PerturbationError):
            perturb_graph(weighted_graph, alpha=-0.1, beta=0.0)
        with pytest.raises(PerturbationError):
            perturb_graph(weighted_graph, alpha=0.0, beta=-0.1)

    def test_generator_instance_accepted(self, weighted_graph):
        rng = np.random.default_rng(5)
        perturbed = perturb_graph(weighted_graph, 0.1, 0.1, rng=rng)
        assert perturbed.num_nodes >= weighted_graph.num_nodes

    def test_harsher_perturbation_moves_further(self, tiny_enterprise):
        """Failure-injection sanity: signature distortion grows with intensity."""
        from repro.core.distances import dist_scaled_hellinger
        from repro.core.scheme import create_scheme

        graph = tiny_enterprise.graphs[0]
        hosts = tiny_enterprise.local_hosts
        scheme = create_scheme("tt", k=10)
        base = scheme.compute_all(graph, hosts)

        def mean_distortion(intensity):
            perturbed = perturb_graph(graph, intensity, intensity, rng=11)
            moved = scheme.compute_all(perturbed, hosts)
            return sum(
                dist_scaled_hellinger(base[h], moved[h]) for h in hosts
            ) / len(hosts)

        assert mean_distortion(0.4) > mean_distortion(0.1)


class TestPerturbationEdgeCases:
    """Boundary cases of the full perturbation model (ISSUE 1 satellite)."""

    def test_p_zero_is_exact_no_op_on_any_graph(self, weighted_graph, small_bipartite):
        for graph in (weighted_graph, small_bipartite):
            perturbed = perturb_graph(graph, 0.0, 0.0, rng=0)
            assert perturbed == graph
            assert perturbed is not graph  # still a defensive copy

    def test_p_one_bounds(self, weighted_graph):
        """alpha = beta = 1: at most |E| new edges, exactly |E| units deleted."""
        num_edges = weighted_graph.num_edges
        total = weighted_graph.total_weight
        perturbed = perturb_graph(weighted_graph, alpha=1.0, beta=1.0, rng=3)
        # Insertions can at most double the edge count (overwrites collapse).
        assert perturbed.num_edges <= 2 * num_edges
        # The insertion pass assigns weights from the original pool, so the
        # perturbed total is bounded by (old + |E| * max_pool) - deleted units.
        max_pool = max(weighted_graph.edge_weights())
        assert perturbed.total_weight <= total + num_edges * max_pool
        assert perturbed.total_weight >= 0.0

    def test_empty_graph_zero_intensity_is_noop(self):
        empty = CommGraph()
        perturbed = perturb_graph(empty, 0.0, 0.0, rng=0)
        assert perturbed.num_nodes == 0
        assert perturbed.num_edges == 0

    def test_empty_graph_positive_intensity_rejected(self):
        # round(alpha * 0) == 0 insertions, so an edgeless graph only fails
        # once a deletion/insertion is actually requested.
        empty = CommGraph()
        assert perturb_graph(empty, 0.4, 0.4, rng=0) == empty
        with pytest.raises(PerturbationError):
            insert_random_edges(empty, count=1, rng=0)
        with pytest.raises(PerturbationError):
            delete_weight_units(empty, count=1, rng=0)

    def test_singleton_graph(self):
        single = CommGraph()
        single.add_node("loner")
        perturbed = perturb_graph(single, 0.4, 0.4, rng=0)
        assert perturbed.nodes() == ["loner"]
        assert perturbed.num_edges == 0
        with pytest.raises(PerturbationError):
            insert_random_edges(single, count=1, rng=0)

    def test_seed_determinism_across_two_runs(self, weighted_graph):
        first = perturb_graph(weighted_graph, 0.3, 0.3, rng=1234)
        second = perturb_graph(weighted_graph, 0.3, 0.3, rng=1234)
        assert first == second
        different = perturb_graph(weighted_graph, 0.3, 0.3, rng=4321)
        assert different != first  # overwhelmingly likely for this size

    def test_seed_determinism_with_generator_objects(self, weighted_graph):
        first = perturb_graph(weighted_graph, 0.3, 0.3, rng=np.random.default_rng(7))
        second = perturb_graph(weighted_graph, 0.3, 0.3, rng=np.random.default_rng(7))
        assert first == second


class TestGeneratorPlumbing:
    """RNG plumbing guards (ISSUE 3 satellite): a shared generator must
    advance between draws, never be silently re-seeded."""

    def test_generator_instance_passes_through_default_rng(self):
        # np.random.default_rng(gen) is gen — the contract _resolve_rng
        # relies on: passing a Generator must not reset its stream.
        generator = np.random.default_rng(3)
        assert np.random.default_rng(generator) is generator

    def test_sequential_perturbations_from_one_generator_differ(self, weighted_graph):
        generator = np.random.default_rng(21)
        first = perturb_graph(weighted_graph, 0.3, 0.3, rng=generator)
        second = perturb_graph(weighted_graph, 0.3, 0.3, rng=generator)
        # Had perturb_graph re-seeded internally, both draws would be
        # identical; a shared stream must keep advancing.
        assert first != second

    def test_generator_state_advances(self, weighted_graph):
        generator = np.random.default_rng(21)
        before = generator.bit_generator.state
        perturb_graph(weighted_graph, 0.3, 0.3, rng=generator)
        assert generator.bit_generator.state != before
