"""Tests for the zero-copy shared-memory recompute engine.

The engine's whole contract is *byte-identity with the serial path plus
guaranteed segment cleanup*, so most tests here compare against
``compute_all`` directly (object equality on :class:`Signature`, entry
tuples included) and then assert that no ``/dev/shm`` segment outlives
its manifest — including when a worker dies mid-dispatch.
"""

import os
import random
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.packed import SignaturePack, cross_pair_distances
from repro.core.scheme import create_scheme
from repro.core.signature import Signature
from repro.core.top_talkers import TopTalkers
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph
from repro.graph.windows import GraphSequence
from repro.graph.stream import EdgeRecord
from repro.parallel.shm import (
    ShmEngine,
    ShmError,
    active_segment_names,
    attach_graph,
    attach_pack,
    default_engine,
    publish_graph,
    publish_pack,
    release_manifest,
    reset_default_engine,
)

SCHEME_GRID = [
    ("tt", {}),
    ("ut", {}),
    ("it", {}),
    ("rwr", {"max_hops": 3}),
    ("rwr", {}),  # unbounded: not partition-safe, runs whole-batch
]


def random_graph(seed, num_nodes=40, num_edges=160):
    rng = random.Random(seed)
    graph = CommGraph()
    for _ in range(num_edges):
        src = f"h{rng.randrange(num_nodes)}"
        dst = f"h{rng.randrange(num_nodes)}"
        if src != dst:
            graph.add_edge(src, dst, rng.uniform(0.25, 9.0))
    return graph


def random_bipartite(seed, users=12, hosts=8, num_edges=60):
    rng = random.Random(seed)
    graph = BipartiteGraph()
    for _ in range(num_edges):
        graph.add_edge(
            f"u{rng.randrange(users)}", f"s{rng.randrange(hosts)}", rng.uniform(0.5, 4.0)
        )
    return graph


def population(graph):
    return [node for node in graph.nodes() if graph.out_strength(node) > 0]


@pytest.fixture(scope="module")
def engine():
    # Tiny message size forces multi-chunk dispatches even on small graphs,
    # exercising the merge path; 2 workers exercises real cross-process IPC.
    with ShmEngine(jobs=2, message_size=7) as shared:
        yield shared


class CrashScheme(TopTalkers):
    """A scheme whose batch kernel kills its worker process outright."""

    name = "crash"

    def _compute_batch(self, graph, nodes):
        os._exit(13)


class TestManifestRoundTrip:
    def test_graph_roundtrip_is_exact(self):
        graph = random_graph(3)
        manifest = publish_graph(graph)
        try:
            clone = attach_graph(manifest)
            assert list(clone.nodes()) == list(graph.nodes())
            assert clone.num_edges == graph.num_edges
            assert clone.total_weight == graph.total_weight
            for node in graph.nodes():
                # Insertion order AND exact float weights must survive.
                assert list(clone.out_neighbors(node).items()) == list(
                    graph.out_neighbors(node).items()
                )
                assert list(clone.in_neighbors(node).items()) == list(
                    graph.in_neighbors(node).items()
                )
        finally:
            release_manifest(manifest)

    def test_bipartite_roundtrip_keeps_sides(self):
        graph = random_bipartite(4)
        manifest = publish_graph(graph)
        try:
            clone = attach_graph(manifest)
            assert isinstance(clone, BipartiteGraph)
            assert clone.left_nodes == graph.left_nodes
            assert clone.right_nodes == graph.right_nodes
        finally:
            release_manifest(manifest)

    def test_pack_roundtrip_is_exact(self):
        signatures = {
            f"v{i}": Signature(f"v{i}", {f"m{j}": float(j + 1) for j in range(i % 4)})
            for i in range(10)
        }
        pack = SignaturePack.from_signatures(signatures)
        manifest = publish_pack(pack)
        try:
            clone = attach_pack(manifest)
            assert clone.owners == pack.owners
            assert clone.signatures == pack.signatures
            assert np.array_equal(clone.matrix.toarray(), pack.matrix.toarray())
        finally:
            release_manifest(manifest)

    def test_release_unlinks_segments(self):
        manifest = publish_graph(random_graph(5))
        assert active_segment_names()
        release_manifest(manifest)
        assert active_segment_names() == []


class TestComputeEquivalence:
    @pytest.mark.parametrize("name,params", SCHEME_GRID)
    def test_byte_identical_to_serial(self, engine, name, params):
        scheme = create_scheme(name, k=5, **params)
        graph = random_graph(11)
        targets = population(graph)
        serial = scheme.compute_all(graph, targets)
        parallel = engine.compute_batch(scheme, graph, targets)
        assert list(parallel) == list(serial)  # same dict ordering
        assert parallel == serial
        for node in serial:
            assert parallel[node].entries == serial[node].entries

    def test_bipartite_byte_identical(self, engine):
        scheme = create_scheme("rwr", k=4, max_hops=3)
        graph = random_bipartite(12)
        targets = graph.left_nodes
        serial = scheme.compute_all(graph, targets)
        parallel = engine.compute_batch(scheme, graph, targets)
        assert parallel == serial

    def test_strategy_kwarg_routes_through_engine(self, engine):
        scheme = create_scheme("tt", k=5)
        graph = random_graph(13)
        serial = scheme.compute_all(graph)
        parallel = scheme.compute_all(graph, strategy="shm", engine=engine)
        assert parallel == serial

    def test_delta_path_byte_identical(self, engine):
        rng = random.Random(17)
        records = [
            EdgeRecord(
                time=t + 0.5,
                src=f"h{rng.randrange(25)}",
                dst=f"h{rng.randrange(25)}",
                weight=rng.uniform(0.5, 4.0),
            )
            for t in range(4)
            for _ in range(80)
        ]
        records.sort()
        sequence = GraphSequence.from_sliding_records(records, num_windows=4)
        scheme = create_scheme("tt", k=5)

        def chain(**kwargs):
            maps = [scheme.compute_all(sequence.graphs[0], **kwargs)]
            for t in range(1, len(sequence)):
                maps.append(
                    scheme.compute_all(
                        sequence.graphs[t],
                        delta=sequence.deltas[t - 1],
                        previous=maps[-1],
                        **kwargs,
                    )
                )
            return maps

        assert chain(strategy="shm", engine=engine) == chain()

    def test_randomized_property_all_schemes(self, engine):
        # The property the whole PR hangs on: for any graph and any
        # partitioning geometry the engine output is the serial output.
        for seed in range(6):
            graph = random_graph(100 + seed, num_nodes=30, num_edges=120)
            targets = population(graph)
            for name, params in SCHEME_GRID:
                scheme = create_scheme(name, k=4, **params)
                serial = scheme.compute_all(graph, targets)
                parallel = engine.compute_batch(scheme, graph, targets)
                assert parallel == serial, (seed, name, params)

    def test_unknown_strategy_rejected(self):
        from repro.exceptions import SchemeError

        scheme = create_scheme("tt", k=3)
        with pytest.raises(SchemeError, match="strategy"):
            scheme.compute_all(random_graph(1), strategy="carrier-pigeon")

    def test_engine_with_serial_strategy_rejected(self, engine):
        from repro.exceptions import SchemeError

        scheme = create_scheme("tt", k=3)
        with pytest.raises(SchemeError, match="engine"):
            scheme.compute_all(random_graph(1), strategy="serial", engine=engine)


class TestPartitionSafety:
    def test_base_schemes_partition_safe(self):
        graph = random_graph(2)
        for name in ("tt", "ut", "it"):
            assert create_scheme(name, k=3).partition_batch_safe(graph)

    def test_rwr_hop_limited_safe_unbounded_not(self):
        graph = random_graph(2)
        assert create_scheme("rwr", k=3, max_hops=3).partition_batch_safe(graph)
        assert not create_scheme("rwr", k=3).partition_batch_safe(graph)

    def test_unbounded_rwr_runs_as_single_task(self, engine):
        scheme = create_scheme("rwr", k=4)
        graph = random_graph(21)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = engine.compute_batch(scheme, graph, population(graph))
        assert result == scheme.compute_all(graph, population(graph))
        assert registry.counter_value("shm.tasks", op="compute") == 1


class TestPairDistances:
    def test_matches_cross_pair_distances(self, engine):
        rng = random.Random(31)
        sigs_a = {
            f"v{i}": Signature(
                f"v{i}", {f"m{rng.randrange(20)}": rng.uniform(0.1, 5.0) for _ in range(4)}
            )
            for i in range(25)
        }
        sigs_b = {
            owner: Signature(
                owner, {f"m{rng.randrange(20)}": rng.uniform(0.1, 5.0) for _ in range(4)}
            )
            for owner in sigs_a
        }
        pack_a = SignaturePack.from_signatures(sigs_a)
        pack_b = SignaturePack.from_signatures(sigs_b, order=pack_a.owners)
        rows = np.arange(len(pack_a))
        for metric in ("jaccard", "dice", "sdice", "shel"):
            expected = cross_pair_distances(pack_a, pack_b, rows, rows, metric)
            actual = engine.pair_distances(pack_a, pack_b, rows, rows, metric)
            assert np.array_equal(actual, expected)


class TestLifecycle:
    def test_context_manager_cleans_up(self):
        with ShmEngine(jobs=2) as local:
            local.compute_batch(create_scheme("tt", k=3), random_graph(41), None)
            names = local.segment_names()
            assert names
        assert local.closed
        for name in names:
            assert not Path("/dev/shm", name).exists()

    def test_compute_after_close_raises(self):
        local = ShmEngine(jobs=1)
        local.close()
        with pytest.raises(ShmError, match="closed"):
            local.compute_batch(create_scheme("tt", k=3), random_graph(42), None)

    def test_close_is_idempotent(self):
        local = ShmEngine(jobs=1)
        local.close()
        local.close()

    def test_worker_crash_cleans_segments_and_pool_recovers(self):
        local = ShmEngine(jobs=2)
        graph = random_graph(43)
        with pytest.raises(BrokenProcessPool):
            local.compute_batch(CrashScheme(k=3), graph, population(graph))
        # Segments survive the crash (the parent owns them) ...
        names = local.segment_names()
        assert names
        # ... the next dispatch transparently rebuilds the pool ...
        scheme = create_scheme("tt", k=3)
        assert local.compute_batch(scheme, graph, None) == scheme.compute_all(graph)
        # ... and close() unlinks everything, worker corpses included.
        local.close()
        for name in names:
            assert not Path("/dev/shm", name).exists()
        assert local.segment_names() == []

    def test_default_engine_reuse_and_reset(self):
        reset_default_engine()
        first = default_engine(jobs=2)
        assert default_engine(jobs=2) is first
        other = default_engine(jobs=1)  # parameter change -> new engine
        assert other is not first
        assert first.closed
        reset_default_engine()
        assert other.closed

    def test_graph_version_bump_invalidates_cached_manifest(self, engine):
        scheme = create_scheme("tt", k=3)
        graph = random_graph(44)
        before = engine.compute_batch(scheme, graph, None)
        assert before == scheme.compute_all(graph)
        graph.add_edge("fresh-src", "fresh-dst", 5.0)
        after = engine.compute_batch(scheme, graph, None)
        assert after == scheme.compute_all(graph)
        assert "fresh-src" in after


class TestObservability:
    def test_metrics_and_span_recorded(self, engine):
        scheme = create_scheme("tt", k=3)
        graph = random_graph(51)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("caller"):
                engine.compute_batch(scheme, graph, population(graph))
        assert registry.counter_value("shm.dispatches", op="compute") == 1
        assert registry.counter_value("shm.tasks", op="compute") >= 2
        assert registry.counter_total("shm.bytes_shared") > 0
        span_paths = [tuple(span["path"]) for span in registry.snapshot()["spans"]]
        assert any(
            len(path) >= 2
            and path[0] == "caller"
            and path[1].startswith("shm.dispatch")
            for path in span_paths
        )

    def test_worker_metrics_merged_in_input_order(self, engine):
        scheme = create_scheme("tt", k=3)
        graph = random_graph(52)
        targets = population(graph)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            engine.compute_batch(scheme, graph, targets)
        # Scheme kernels count per-node computes; the merged total must
        # equal the serial run's regardless of worker scheduling.
        serial_registry = obs.MetricsRegistry()
        with obs.use_registry(serial_registry):
            scheme.compute_all(graph, targets)
        shm_counts = {
            key: value
            for key, value in registry.counters_flat().items()
            if not key.startswith("shm.")
        }
        serial_counts = dict(serial_registry.counters_flat())
        assert shm_counts == serial_counts

    def test_disabled_registry_stays_silent(self, engine):
        scheme = create_scheme("tt", k=3)
        graph = random_graph(53)
        registry = obs.MetricsRegistry()
        engine.compute_batch(scheme, graph, None)  # no active registry
        with obs.use_registry(registry):
            pass
        assert registry.counters_flat() == {}

    def test_workers_gauge_tracks_pool(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with ShmEngine(jobs=2) as local:
                local.compute_batch(create_scheme("tt", k=3), random_graph(54), None)
                assert registry.snapshot()["gauges"][0][2] == 2
        assert ("shm.workers", {}, 0.0) in [
            tuple(entry[:2]) + (entry[2],) for entry in registry.snapshot()["gauges"]
        ]
