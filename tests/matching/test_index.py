"""Unit tests for the exact nearest-neighbour signature index."""

import pytest

from repro.core.distances import dist_jaccard
from repro.core.signature import Signature
from repro.exceptions import MatchingError
from repro.matching.index import SignatureIndex


def sig(owner, *members):
    return Signature(owner, {member: 1.0 for member in members})


@pytest.fixture
def index():
    idx = SignatureIndex(dist_jaccard)
    idx.add_all(
        [
            sig("v1", "a", "b", "c"),
            sig("v2", "a", "b", "d"),
            sig("v3", "x", "y", "z"),
        ]
    )
    return idx


class TestStorage:
    def test_add_and_get(self, index):
        assert len(index) == 3
        assert "v1" in index
        assert index.get("v1").nodes == {"a", "b", "c"}

    def test_get_missing_raises(self, index):
        with pytest.raises(MatchingError):
            index.get("ghost")

    def test_add_replaces(self, index):
        index.add(sig("v1", "q"))
        assert index.get("v1").nodes == {"q"}
        assert len(index) == 3

    def test_owners(self, index):
        assert set(index.owners()) == {"v1", "v2", "v3"}


class TestQuery:
    def test_nearest_neighbour(self, index):
        results = index.query(sig("v1", "a", "b", "c"), k=1)
        assert results[0][0] == "v2"  # self excluded, v2 shares {a, b}

    def test_include_self(self, index):
        results = index.query(sig("v1", "a", "b", "c"), k=1, exclude_self=False)
        assert results[0] == ("v1", 0.0)

    def test_k_larger_than_index(self, index):
        results = index.query(sig("probe", "a"), k=10)
        assert len(results) == 3

    def test_results_sorted(self, index):
        results = index.query(sig("probe", "a", "b"), k=3)
        distances = [distance for _owner, distance in results]
        assert distances == sorted(distances)

    def test_invalid_k(self, index):
        with pytest.raises(MatchingError):
            index.query(sig("probe", "a"), k=0)


class TestPairsWithin:
    def test_finds_similar_pair_only(self, index):
        pairs = index.pairs_within(0.6)
        assert [(first, second) for first, second, _d in pairs] == [("v1", "v2")]

    def test_threshold_one_returns_all_non_disjoint(self, index):
        pairs = index.pairs_within(1.0)
        assert len(pairs) == 1  # v3 is disjoint from both others (distance 1)

    def test_threshold_validation(self, index):
        with pytest.raises(MatchingError):
            index.pairs_within(1.5)

    def test_sorted_by_distance(self):
        idx = SignatureIndex(dist_jaccard)
        idx.add_all(
            [
                sig("a", "1", "2"),
                sig("b", "1", "2"),
                sig("c", "1", "3"),
            ]
        )
        pairs = idx.pairs_within(1.0)
        distances = [d for _x, _y, d in pairs]
        assert distances == sorted(distances)
        assert pairs[0][:2] == ("a", "b")
