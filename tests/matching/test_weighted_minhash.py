"""Unit tests for weighted MinHash (ICWS) and the SDice estimator."""

import numpy as np
import pytest

from repro.core.distances import dist_scaled_dice
from repro.core.signature import Signature
from repro.exceptions import MatchingError
from repro.matching.weighted_minhash import (
    WeightedMinHasher,
    estimate_sdice_distance,
    weighted_jaccard_distance,
)


class TestWeightedJaccardReference:
    def test_matches_dist_scaled_dice_on_signatures(self):
        first = Signature("u", {"a": 2.0, "b": 1.0})
        second = Signature("v", {"a": 4.0, "c": 3.0})
        assert weighted_jaccard_distance(
            first.as_dict(), second.as_dict()
        ) == pytest.approx(dist_scaled_dice(first, second))

    def test_empty_inputs(self):
        assert weighted_jaccard_distance({}, {}) == 0.0
        assert weighted_jaccard_distance({"a": 1.0}, {}) == 1.0

    def test_identical_sets_zero(self):
        weights = {"a": 2.5, "b": 0.5}
        assert weighted_jaccard_distance(weights, weights) == 0.0


class TestSketching:
    def test_length_and_determinism(self):
        hasher = WeightedMinHasher(num_hashes=32, seed=1)
        weights = {"a": 2.0, "b": 5.0}
        first = hasher.sketch(weights)
        second = hasher.sketch(dict(weights))
        assert first.shape == (32,)
        assert np.array_equal(first, second)

    def test_invalid_num_hashes(self):
        with pytest.raises(MatchingError):
            WeightedMinHasher(num_hashes=0)

    def test_empty_weights_reserved_sketch(self):
        hasher = WeightedMinHasher(num_hashes=8, seed=0)
        sketch = hasher.sketch({})
        assert (sketch == np.iinfo(np.uint64).max).all()
        # Non-positive weights are treated as absent.
        assert np.array_equal(sketch, hasher.sketch({"a": 0.0}))

    def test_identical_weighted_sets_collide_everywhere(self):
        hasher = WeightedMinHasher(num_hashes=64, seed=0)
        weights = {"a": 3.0, "b": 1.5, "c": 0.25}
        assert estimate_sdice_distance(
            hasher.sketch(weights), hasher.sketch(weights)
        ) == 0.0

    def test_common_scaling_invariance(self):
        """Weighted Jaccard is invariant under scaling both sets; ICWS
        sketches of a set and its scaled copy still estimate distance 0
        against a consistently scaled counterpart."""
        hasher = WeightedMinHasher(num_hashes=128, seed=3)
        a = {"x": 2.0, "y": 7.0}
        b = {"x": 1.0, "y": 7.0, "z": 3.0}
        plain = estimate_sdice_distance(hasher.sketch(a), hasher.sketch(b))
        scaled = estimate_sdice_distance(
            hasher.sketch({k: 10 * v for k, v in a.items()}),
            hasher.sketch({k: 10 * v for k, v in b.items()}),
        )
        assert abs(plain - scaled) < 0.15

    def test_sketch_signature(self):
        hasher = WeightedMinHasher(num_hashes=16, seed=0)
        signature = Signature("v", {"a": 2.0})
        assert np.array_equal(
            hasher.sketch_signature(signature), hasher.sketch({"a": 2.0})
        )


class TestEstimator:
    def test_shape_mismatch(self):
        hasher = WeightedMinHasher(num_hashes=8, seed=0)
        other = WeightedMinHasher(num_hashes=16, seed=0)
        with pytest.raises(MatchingError):
            estimate_sdice_distance(
                hasher.sketch({"a": 1.0}), other.sketch({"a": 1.0})
            )

    def test_empty_sketch_rejected(self):
        empty = np.asarray([], dtype=np.uint64)
        with pytest.raises(MatchingError):
            estimate_sdice_distance(empty, empty)

    @pytest.mark.parametrize(
        "a,b",
        [
            ({"a": 2.0, "b": 1.0}, {"a": 4.0, "c": 3.0}),
            ({"a": 1.0}, {"a": 1.0, "b": 1.0}),
            ({"a": 5.0, "b": 5.0}, {"a": 5.0, "b": 1.0}),
        ],
    )
    def test_estimator_close_to_truth(self, a, b):
        truth = weighted_jaccard_distance(a, b)
        hasher = WeightedMinHasher(num_hashes=512, seed=7)
        estimate = estimate_sdice_distance(hasher.sketch(a), hasher.sketch(b))
        assert estimate == pytest.approx(truth, abs=0.12)

    def test_estimator_unbiased_over_seeds(self):
        a = {"a": 3.0, "b": 1.0, "c": 2.0}
        b = {"a": 1.0, "b": 1.0, "d": 4.0}
        truth = weighted_jaccard_distance(a, b)
        estimates = []
        for seed in range(25):
            hasher = WeightedMinHasher(num_hashes=64, seed=seed)
            estimates.append(
                estimate_sdice_distance(hasher.sketch(a), hasher.sketch(b))
            )
        assert float(np.mean(estimates)) == pytest.approx(truth, abs=0.06)

    def test_collides_with_lsh_banding(self):
        """ICWS sketches plug directly into the banding index."""
        from repro.matching.lsh import LshIndex

        hasher = WeightedMinHasher(num_hashes=32, seed=0)
        index = LshIndex(bands=8, rows_per_band=4)
        weights = {"a": 3.0, "b": 1.0}
        index.add("stored", hasher.sketch(weights))
        assert "stored" in index.candidates(hasher.sketch(weights))

    def test_signature_level_agreement_on_dataset(self, tiny_enterprise):
        """End-to-end: ICWS estimates Dist_SDice between real TT signatures."""
        from repro.core.scheme import create_scheme

        graph = tiny_enterprise.graphs[0]
        hosts = tiny_enterprise.local_hosts[:12]
        signatures = create_scheme("tt", k=10).compute_all(graph, hosts)
        hasher = WeightedMinHasher(num_hashes=256, seed=2)
        sketches = {h: hasher.sketch_signature(signatures[h]) for h in hosts}
        errors = []
        for i, first in enumerate(hosts):
            for second in hosts[i + 1 :]:
                truth = dist_scaled_dice(signatures[first], signatures[second])
                estimate = estimate_sdice_distance(
                    sketches[first], sketches[second]
                )
                errors.append(abs(truth - estimate))
        assert float(np.mean(errors)) < 0.08
