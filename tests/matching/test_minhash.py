"""Unit tests for MinHash sketches."""

import numpy as np
import pytest

from repro.core.signature import Signature
from repro.exceptions import MatchingError
from repro.matching.minhash import MinHasher, estimate_jaccard_distance


class TestSketching:
    def test_sketch_length(self):
        hasher = MinHasher(num_hashes=64, seed=0)
        assert hasher.sketch({"a", "b"}).shape == (64,)

    def test_deterministic(self):
        hasher = MinHasher(num_hashes=32, seed=1)
        assert np.array_equal(hasher.sketch({"a", "b"}), hasher.sketch({"b", "a"}))

    def test_empty_set_all_max(self):
        hasher = MinHasher(num_hashes=8, seed=0)
        sketch = hasher.sketch(set())
        assert (sketch == np.iinfo(np.uint64).max).all()

    def test_invalid_num_hashes(self):
        with pytest.raises(MatchingError):
            MinHasher(num_hashes=0)

    def test_sketch_signature_uses_node_set(self):
        hasher = MinHasher(num_hashes=16, seed=0)
        light = Signature("v", {"a": 0.1, "b": 0.1})
        heavy = Signature("u", {"a": 9.0, "b": 9.0})
        assert np.array_equal(
            hasher.sketch_signature(light), hasher.sketch_signature(heavy)
        )


class TestJaccardEstimation:
    def test_identical_sets_distance_zero(self):
        hasher = MinHasher(num_hashes=64, seed=0)
        a = hasher.sketch({"x", "y", "z"})
        b = hasher.sketch({"x", "y", "z"})
        assert estimate_jaccard_distance(a, b) == 0.0

    def test_disjoint_sets_distance_near_one(self):
        hasher = MinHasher(num_hashes=128, seed=0)
        a = hasher.sketch({f"a-{i}" for i in range(20)})
        b = hasher.sketch({f"b-{i}" for i in range(20)})
        assert estimate_jaccard_distance(a, b) > 0.9

    def test_estimate_close_to_truth(self):
        hasher = MinHasher(num_hashes=256, seed=2)
        # |A ∩ B| = 10, |A ∪ B| = 30 -> Jaccard similarity 1/3.
        shared = {f"s-{i}" for i in range(10)}
        a = shared | {f"a-{i}" for i in range(10)}
        b = shared | {f"b-{i}" for i in range(10)}
        estimated = estimate_jaccard_distance(hasher.sketch(a), hasher.sketch(b))
        assert estimated == pytest.approx(1 - 1 / 3, abs=0.12)

    def test_estimator_unbiased_over_seeds(self):
        shared = {f"s-{i}" for i in range(5)}
        a = shared | {"a1", "a2", "a3", "a4", "a5"}
        b = shared | {"b1", "b2", "b3", "b4", "b5"}
        truth = 1 - 5 / 15
        estimates = []
        for seed in range(30):
            hasher = MinHasher(num_hashes=64, seed=seed)
            estimates.append(
                estimate_jaccard_distance(hasher.sketch(a), hasher.sketch(b))
            )
        assert np.mean(estimates) == pytest.approx(truth, abs=0.05)

    def test_shape_mismatch_rejected(self):
        small = MinHasher(num_hashes=8, seed=0).sketch({"a"})
        large = MinHasher(num_hashes=16, seed=0).sketch({"a"})
        with pytest.raises(MatchingError):
            estimate_jaccard_distance(small, large)

    def test_empty_sketch_comparison_rejected(self):
        empty = np.asarray([], dtype=np.uint64)
        with pytest.raises(MatchingError):
            estimate_jaccard_distance(empty, empty)
