"""Unit tests for the LSH banding index and the approximate signature index."""

import pytest

from repro.core.distances import dist_jaccard
from repro.core.signature import Signature
from repro.exceptions import MatchingError
from repro.matching.lsh import ApproxSignatureIndex, LshIndex
from repro.matching.minhash import MinHasher


def sig(owner, *members):
    return Signature(owner, {member: 1.0 for member in members})


class TestLshIndex:
    def test_parameter_validation(self):
        with pytest.raises(MatchingError):
            LshIndex(bands=0)
        with pytest.raises(MatchingError):
            LshIndex(rows_per_band=0)

    def test_sketch_length_enforced(self):
        index = LshIndex(bands=4, rows_per_band=4)
        hasher = MinHasher(num_hashes=8)
        with pytest.raises(MatchingError):
            index.add("x", hasher.sketch({"a"}))

    def test_identical_sets_always_candidates(self):
        index = LshIndex(bands=4, rows_per_band=4)
        hasher = MinHasher(num_hashes=16, seed=0)
        index.add("v1", hasher.sketch({"a", "b", "c"}))
        candidates = index.candidates(hasher.sketch({"a", "b", "c"}))
        assert "v1" in candidates

    def test_exclude(self):
        index = LshIndex(bands=4, rows_per_band=2)
        hasher = MinHasher(num_hashes=8, seed=0)
        index.add("v1", hasher.sketch({"a"}))
        assert index.candidates(hasher.sketch({"a"}), exclude="v1") == set()

    def test_disjoint_sets_rarely_candidates(self):
        index = LshIndex(bands=4, rows_per_band=8)
        hasher = MinHasher(num_hashes=32, seed=0)
        index.add("v1", hasher.sketch({f"a-{i}" for i in range(20)}))
        candidates = index.candidates(hasher.sketch({f"b-{i}" for i in range(20)}))
        assert "v1" not in candidates

    def test_candidate_probability_scurve(self):
        index = LshIndex(bands=16, rows_per_band=4)
        low = index.candidate_probability(0.1)
        mid = index.candidate_probability(0.5)
        high = index.candidate_probability(0.9)
        assert low < mid < high
        assert index.candidate_probability(0.0) == 0.0
        assert index.candidate_probability(1.0) == 1.0
        with pytest.raises(MatchingError):
            index.candidate_probability(1.5)

    def test_len(self):
        index = LshIndex(bands=2, rows_per_band=2)
        hasher = MinHasher(num_hashes=4, seed=0)
        index.add("a", hasher.sketch({"x"}))
        index.add("b", hasher.sketch({"y"}))
        assert len(index) == 2


class TestApproxSignatureIndex:
    def test_query_finds_identical_signature(self):
        index = ApproxSignatureIndex(bands=8, rows_per_band=4)
        index.add_all([sig("v1", "a", "b"), sig("v2", "x", "y")])
        results = index.query(sig("probe", "a", "b"), k=1)
        assert results and results[0][0] == "v1"
        assert results[0][1] == 0.0

    def test_self_exclusion(self):
        index = ApproxSignatureIndex(bands=8, rows_per_band=4)
        index.add(sig("v1", "a", "b"))
        assert index.query(sig("v1", "a", "b"), k=1) == []

    def test_distances_are_exact(self):
        index = ApproxSignatureIndex(bands=8, rows_per_band=2)
        stored = sig("v1", "a", "b", "c")
        index.add(stored)
        probe = sig("probe", "a", "b", "d")
        results = index.query(probe, k=1)
        if results:  # candidate generation is probabilistic
            assert results[0][1] == pytest.approx(dist_jaccard(probe, stored))

    def test_invalid_k(self):
        index = ApproxSignatureIndex()
        with pytest.raises(MatchingError):
            index.query(sig("probe", "a"), k=0)

    def test_len(self):
        index = ApproxSignatureIndex()
        index.add(sig("v1", "a"))
        assert len(index) == 1

    def test_high_recall_on_alias_population(self, tiny_enterprise):
        """Integration: near-duplicate alias signatures are recovered."""
        from repro.core.scheme import create_scheme

        graph = tiny_enterprise.graphs[0]
        signatures = create_scheme("tt", k=10).compute_all(
            graph, tiny_enterprise.local_hosts
        )
        exact = {}
        for host, signature in signatures.items():
            best, best_distance = None, 2.0
            for other, other_signature in signatures.items():
                if other == host:
                    continue
                distance = dist_jaccard(signature, other_signature)
                if distance < best_distance:
                    best, best_distance = other, distance
            exact[host] = (best, best_distance)

        index = ApproxSignatureIndex(bands=64, rows_per_band=2)
        index.add_all(signatures.values())
        hits = 0
        evaluated = 0
        for host, (truth, truth_distance) in exact.items():
            if truth_distance > 0.6:
                continue  # only near-duplicates are LSH's contract
            evaluated += 1
            results = index.query(signatures[host], k=1)
            if results and abs(results[0][1] - truth_distance) < 1e-12:
                hits += 1
        assert evaluated > 0
        assert hits / evaluated > 0.8
