"""Round-trip properties of the columnar segment format.

The encoding must be a pure function of its content (equal inputs give
equal bytes), decode back bit-exactly — including non-ASCII labels, empty
signatures and extreme float weights — and keep its LSH band columns
consistent with the scalar MinHash path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import Signature
from repro.exceptions import StoreError
from repro.matching.minhash import MinHasher
from repro.store import (
    SEGMENT_MAGIC,
    IndexParams,
    encode_segment,
    read_segment,
    write_segment,
)

# Labels exercise the interning table: ASCII, combining marks, CJK, emoji,
# and the empty-adjacent single-codepoint cases.
node_labels = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1,
    max_size=12,
)

# Signature entries must be strictly positive (core invariant); span the
# full positive float64 range including subnormals.
# Total weight must stay finite (Signature fsums its entries), so the cap
# leaves headroom for several near-max entries in one signature.
weights = st.one_of(
    st.floats(min_value=1e-300, max_value=1e300, allow_nan=False),
    st.just(5e-324),
)


@st.composite
def window_maps(draw):
    """One window's ``{owner: Signature}`` map (possibly-empty signatures)."""
    owners = draw(st.lists(node_labels, min_size=0, max_size=6, unique=True))
    out = {}
    for owner in owners:
        entries = draw(
            st.dictionaries(node_labels, weights, min_size=0, max_size=5)
        )
        entries.pop(owner, None)  # a signature cannot contain its owner
        out[owner] = Signature(owner, entries)
    return out


def roundtrip(tmp_path, windows, **kwargs):
    path = tmp_path / "seg.rseg"
    write_segment(path, windows, **kwargs)
    return read_segment(path)


def roundtrip_tmp(windows, **kwargs):
    """Hypothesis-friendly round-trip: fresh temp dir per example (mmap off
    so the file can be removed immediately)."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "seg.rseg"
        write_segment(path, windows, **kwargs)
        return read_segment(path, mmap=False)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(window_map=window_maps())
    def test_single_window_roundtrips_exactly(self, window_map):
        segment = roundtrip_tmp([(0, window_map)])
        decoded = segment.signatures_for_window(0)
        assert set(decoded) == set(window_map)
        for owner, signature in window_map.items():
            got = decoded[owner]
            assert got.owner == owner
            # Bit-exact float64 round-trip: compare raw reprs, not approx.
            assert dict(got.entries) == dict(signature.entries)

    @settings(max_examples=30, deadline=None)
    @given(maps=st.lists(window_maps(), min_size=1, max_size=4))
    def test_multi_window_roundtrips_in_order(self, maps):
        windows = list(enumerate(maps))
        segment = roundtrip_tmp(windows)
        assert segment.windows() == [w for w, _ in windows]
        for window, window_map in windows:
            decoded = segment.signatures_for_window(window)
            assert {
                owner: dict(sig.entries) for owner, sig in decoded.items()
            } == {
                owner: dict(sig.entries) for owner, sig in window_map.items()
            }

    @settings(max_examples=30, deadline=None)
    @given(window_map=window_maps())
    def test_encoding_is_deterministic(self, window_map):
        params = IndexParams(bands=2, rows_per_band=2)
        first = encode_segment([(0, window_map)], index_params=params)
        second = encode_segment([(0, dict(window_map))], index_params=params)
        assert first == second
        assert first.startswith(SEGMENT_MAGIC)


class TestEdgeCases:
    def test_non_ascii_labels(self, tmp_path):
        window_map = {
            "naïve-节点": Signature("naïve-节点", {"ψ-dst": 0.5, "🛰": 1.25}),
            "Ω": Signature("Ω", {}),
        }
        segment = roundtrip(tmp_path, [(0, window_map)])
        decoded = segment.signatures_for_window(0)
        assert dict(decoded["naïve-节点"].entries) == {"ψ-dst": 0.5, "🛰": 1.25}
        assert decoded["Ω"].entries == ()

    def test_empty_signatures_and_empty_window(self, tmp_path):
        windows = [
            (0, {"lonely": Signature("lonely", {})}),
            (1, {}),
            (2, {"busy": Signature("busy", {"x": 1.0})}),
        ]
        segment = roundtrip(tmp_path, windows)
        assert segment.windows() == [0, 1, 2]
        assert segment.signatures_for_window(0)["lonely"].entries == ()
        assert segment.signatures_for_window(1) == {}
        assert dict(segment.signatures_for_window(2)["busy"].entries) == {"x": 1.0}

    def test_large_and_tiny_weights_bit_exact(self, tmp_path):
        values = {
            "huge": 1.7976931348623157e308,  # largest finite float64
            "tiny": 5e-324,  # smallest subnormal
            "pi": math.pi,
        }
        window_map = {"n": Signature("n", values)}
        segment = roundtrip(tmp_path, [(0, window_map)])
        decoded = dict(segment.signatures_for_window(0)["n"].entries)
        for key, value in values.items():
            # == catches value equality; repr catches the exact bit pattern.
            assert decoded[key] == value and repr(decoded[key]) == repr(value)

    def test_non_string_labels_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="string node labels"):
            encode_segment([(0, {(1, 2): Signature((1, 2), {"x": 1.0})})])

    def test_metas_and_modes_roundtrip(self, tmp_path):
        windows = [(3, {"n": Signature("n", {"x": 1.0})})]
        segment = roundtrip(
            tmp_path,
            windows,
            metas={3: {"records": 17}},
            modes={3: "degraded"},
        )
        assert segment.meta_for(3) == {"records": 17}
        assert segment.mode_for(3) == "degraded"


class TestIndexColumns:
    def test_band_hashes_match_scalar_minhash_path(self, tmp_path):
        params = IndexParams(bands=4, rows_per_band=4, seed=3)
        rng = np.random.default_rng(11)
        window_map = {
            f"node-{i}": Signature(
                f"node-{i}",
                {f"dst-{j}": float(rng.random()) for j in rng.choice(40, size=6)},
            )
            for i in range(20)
        }
        segment = roundtrip(tmp_path, [(0, window_map)], index_params=params)
        hasher = MinHasher(num_hashes=params.num_hashes, seed=params.seed)
        from repro.store.index import band_hashes, query_band_hashes

        for row in range(segment.num_rows):
            signature = segment.signature_at(row)
            scalar = query_band_hashes(signature, params)
            assert np.array_equal(segment.band_hashes[row], scalar), (
                f"row {row} ({signature.owner}) disagrees with the scalar "
                "MinHash path"
            )
            # And the sketch underneath is the plain MinHasher sketch.
            expected = band_hashes(
                np.asarray([hasher.sketch_signature(signature)], dtype=np.uint64),
                params,
            )[0]
            assert np.array_equal(segment.band_hashes[row], expected)

    def test_unindexed_segment_has_empty_band_table(self, tmp_path):
        segment = roundtrip(
            tmp_path, [(0, {"n": Signature("n", {"x": 1.0})})], index_params=None
        )
        assert segment.band_hashes.shape == (1, 0)
