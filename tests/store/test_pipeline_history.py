"""PipelineConfig.history_dir: the pipeline archives every window it closes."""

from __future__ import annotations

from repro.pipeline import (
    CheckpointStore,
    IterableRecordSource,
    PipelineConfig,
    SignaturePipeline,
)
from repro.store import HistoryCheckpointStore, HistoryStore


def records(n=90, hosts=5, services=7):
    return [
        (float(i), f"h-{i % hosts}", f"s-{(i * 3) % services}", 1.0 + i % 4)
        for i in range(n)
    ]


def test_pipeline_archives_every_window(tmp_path):
    config = PipelineConfig(
        scheme="tt", k=4, num_windows=3, history_dir=str(tmp_path / "hist")
    )
    store = CheckpointStore(tmp_path / "ckpt")
    result = SignaturePipeline(
        IterableRecordSource(records()), store, config
    ).run()
    history = HistoryStore(tmp_path / "hist")
    assert history.windows() == [0, 1, 2]
    for window, signatures in enumerate(result.signatures):
        archived = history.load_window(window)
        assert {
            owner: dict(sig.entries) for owner, sig in archived.items()
        } == {owner: dict(sig.entries) for owner, sig in signatures.items()}
    assert history.window_meta(0).get("num_records", 0) > 0


def test_fresh_run_clears_stale_history(tmp_path):
    config = PipelineConfig(
        scheme="tt", k=4, num_windows=3, history_dir=str(tmp_path / "hist")
    )
    SignaturePipeline(
        IterableRecordSource(records()), CheckpointStore(tmp_path / "c1"), config
    ).run()
    # A fresh (non-resume) run must not leave the previous run's windows
    # visible beyond what it writes itself.
    SignaturePipeline(
        IterableRecordSource(records(60)), CheckpointStore(tmp_path / "c2"),
        PipelineConfig(
            scheme="tt", k=4, num_windows=2, history_dir=str(tmp_path / "hist")
        ),
    ).run()
    assert HistoryStore(tmp_path / "hist").windows() == [0, 1]


def test_history_dir_matching_backend_store_is_not_duplicated(tmp_path):
    # When the checkpoint store IS a HistoryCheckpointStore over the same
    # directory, the runner must not append every window twice.
    config = PipelineConfig(
        scheme="tt", k=4, num_windows=3, history_dir=str(tmp_path / "hist")
    )
    store = HistoryCheckpointStore(tmp_path / "hist")
    SignaturePipeline(IterableRecordSource(records()), store, config).run()
    history = HistoryStore(tmp_path / "hist")
    assert history.windows() == [0, 1, 2]
    assert len(history.segment_records()) == 3
