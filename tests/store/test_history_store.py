"""HistoryStore behaviour: append/supersede, time travel, crash recovery.

The crash cases matter most: a segment written but never committed to the
manifest (orphan), a committed segment truncated on disk (corrupt), and a
torn final manifest line must all be *skipped and reported* — never turned
into wrong answers or exceptions on the read path.
"""

from __future__ import annotations

import json

import pytest

from repro.core.signature import Signature
from repro.exceptions import StoreError
from repro.store import HistoryStore, IndexParams
from repro.store.history import MANIFEST_NAME
from repro.store.segments import SEGMENT_SUFFIX


def sig(owner, **entries):
    return Signature(owner, {k.replace("_", "-"): v for k, v in entries.items()})


def make_store(tmp_path, windows=3):
    store = HistoryStore(tmp_path / "hist")
    for window in range(windows):
        store.append(
            [
                (
                    window,
                    {
                        "a": sig("a", x=1.0 + window, y=2.0),
                        "b": sig("b", z=0.5),
                    },
                )
            ],
            metas={window: {"records": 10 + window}},
        )
    return store


class TestAppendAndRead:
    def test_windows_accumulate(self, tmp_path):
        store = make_store(tmp_path)
        assert store.windows() == [0, 1, 2]
        assert store.max_window() == 2
        assert dict(store.load_window(1)["a"].entries) == {"x": 2.0, "y": 2.0}
        assert store.window_meta(2) == {"records": 12}

    def test_fresh_instance_sees_committed_windows(self, tmp_path):
        make_store(tmp_path)
        reopened = HistoryStore(tmp_path / "hist")
        assert reopened.windows() == [0, 1, 2]
        assert reopened.signature("b", 0) is not None

    def test_append_supersedes_recorded_future(self, tmp_path):
        store = make_store(tmp_path)
        store.append([(1, {"c": sig("c", w=9.0)})])
        # Window 1 is replaced and window 2 (>= the new minimum) dropped:
        # the checkpoint backend's truncate-and-rewrite resume contract.
        assert store.windows() == [0, 1]
        assert store.signature("a", 1) is None
        assert dict(store.signature("c", 1).entries) == {"w": 9.0}

    def test_non_sequential_appends_are_fine_for_history(self, tmp_path):
        store = HistoryStore(tmp_path / "h")
        store.append([(0, {"a": sig("a", x=1.0)}), (1, {"a": sig("a", x=2.0)})])
        store.append([(2, {"a": sig("a", x=3.0)})])
        assert store.windows() == [0, 1, 2]
        assert [w for w, _ in store.trajectory("a")] == [0, 1, 2]

    def test_state_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        store.set_state({"config": {"k": 10}})
        assert HistoryStore(tmp_path / "hist").state() == {"config": {"k": 10}}


class TestTimeTravel:
    def test_trajectory_bounds(self, tmp_path):
        store = make_store(tmp_path, windows=5)
        points = store.trajectory("a", 1, 4)
        assert [w for w, _ in points] == [1, 2, 3]
        assert all(p.owner == "a" for _, p in points)

    def test_query_finds_lookalike(self, tmp_path):
        store = HistoryStore(tmp_path / "h")
        crowd = {
            f"noise-{i}": sig(f"noise-{i}", **{f"n{i}{j}": 1.0 for j in range(3)})
            for i in range(20)
        }
        crowd["victim"] = Signature("victim", {"svc-a": 1.0, "svc-b": 2.0})
        # Identical neighbour set => identical MinHash sketch => the LSH
        # index must surface the masquerader with distance 0.
        crowd["masquerader"] = Signature("masquerader", {"svc-a": 1.0, "svc-b": 2.0})
        store.append([(0, crowd)])
        matches = store.query(crowd["victim"], 0, k=3)
        assert matches and matches[0].owner in ("masquerader", "victim")
        exact = [m for m in matches if m.distance == 0.0]
        assert {m.owner for m in exact} == {"masquerader", "victim"}

    def test_exhaustive_query_covers_all_rows(self, tmp_path):
        store = make_store(tmp_path)
        probe = sig("probe", q=1.0)
        hits = store.query(probe, 0, k=10, exhaustive=True)
        assert {hit.owner for hit in hits} == {"a", "b"}

    def test_query_missing_window_is_empty(self, tmp_path):
        store = make_store(tmp_path)
        assert store.query(sig("probe", q=1.0), 99) == []

    def test_query_rejects_bad_k(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(StoreError, match="k must be >= 1"):
            store.query(sig("probe", q=1.0), 0, k=0)


class TestCompaction:
    def test_compact_removes_dead_segments_only(self, tmp_path):
        store = make_store(tmp_path)
        store.append([(0, {"fresh": sig("fresh", x=1.0)})])  # supersedes all
        dir_ = store.directory
        before = sorted(p.name for p in dir_.glob(f"*{SEGMENT_SUFFIX}"))
        assert len(before) == 4
        removed = store.compact()
        assert len(removed) == 3
        after = sorted(p.name for p in dir_.glob(f"*{SEGMENT_SUFFIX}"))
        assert len(after) == 1
        assert store.windows() == [0]
        assert dict(store.load_window(0)["fresh"].entries) == {"x": 1.0}

    def test_compact_preserves_query_results(self, tmp_path):
        store = make_store(tmp_path, windows=4)
        store.append([(2, {"late": sig("late", x=7.0)})])
        probe = sig("probe", x=1.0, y=2.0)
        before = [
            (m.owner, m.window, m.distance)
            for m in store.query(probe, 1, k=5, exhaustive=True)
        ]
        trajectory_before = [(w, dict(s.entries)) for w, s in store.trajectory("a")]
        store.compact()
        after = [
            (m.owner, m.window, m.distance)
            for m in store.query(probe, 1, k=5, exhaustive=True)
        ]
        assert before == after
        reopened = HistoryStore(store.directory)
        assert [
            (w, dict(s.entries)) for w, s in reopened.trajectory("a")
        ] == trajectory_before


class TestCrashRecovery:
    def test_orphan_segment_is_reported_not_served(self, tmp_path):
        store = make_store(tmp_path)
        # Crash between segment write and manifest append: the file exists
        # but no manifest line commits it.
        orphan = store.directory / f"seg-999999{SEGMENT_SUFFIX}"
        orphan.write_bytes((store.directory / f"seg-000000{SEGMENT_SUFFIX}").read_bytes())
        scan = store.scan()
        assert any("orphan" in issue for issue in scan.issues)
        assert sorted(scan.windows) == [0, 1, 2]

    def test_truncated_segment_is_skipped_and_reported(self, tmp_path):
        store = make_store(tmp_path)
        target = store.directory / f"seg-000001{SEGMENT_SUFFIX}"
        blob = target.read_bytes()
        target.write_bytes(blob[: len(blob) // 2])  # torn mid-write
        fresh = HistoryStore(store.directory)
        scan = fresh.scan()
        assert any("seg-000001" in issue for issue in scan.issues)
        # The damaged window is dropped from the live view, the rest serve.
        assert sorted(scan.windows) == [0, 2]
        assert fresh.signature("a", 0) is not None
        assert fresh.signature("a", 1) is None

    def test_missing_segment_is_skipped_and_reported(self, tmp_path):
        store = make_store(tmp_path)
        (store.directory / f"seg-000002{SEGMENT_SUFFIX}").unlink()
        scan = store.scan()
        assert any("seg-000002" in issue for issue in scan.issues)
        assert sorted(scan.windows) == [0, 1]

    def test_torn_final_manifest_line_is_skipped(self, tmp_path):
        store = make_store(tmp_path)
        manifest = store.directory / MANIFEST_NAME
        with open(manifest, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "file": "seg-0000')  # no newline: torn
        fresh = HistoryStore(store.directory)
        assert fresh.windows() == [0, 1, 2]
        assert any("torn" in issue or "truncated" in issue for issue in fresh.issues())

    def test_corrupt_committed_manifest_line_raises(self, tmp_path):
        store = make_store(tmp_path)
        manifest = store.directory / MANIFEST_NAME
        lines = manifest.read_text().splitlines()
        lines[1] = "not json at all"
        manifest.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError):
            HistoryStore(store.directory)

    def test_append_after_recovery_continues_sequence(self, tmp_path):
        store = make_store(tmp_path)
        target = store.directory / f"seg-000002{SEGMENT_SUFFIX}"
        target.write_bytes(target.read_bytes()[:40])
        fresh = HistoryStore(store.directory)
        fresh.scan()
        fresh.append([(2, {"redo": sig("redo", x=1.0)})])
        assert fresh.windows() == [0, 1, 2]
        reopened = HistoryStore(store.directory)
        reopened.scan()
        assert dict(reopened.load_window(2)["redo"].entries) == {"x": 1.0}
