"""HistoryCheckpointStore: the CheckpointStore contract over columnar history.

The acceptance bar is *byte identity*: a pipeline resumed from the
history-backed store must reproduce exactly what the JSON-file store
produces on the same trace, and the run-state ``contract`` stamp must ride
along so cross-strategy resumes are still refused.
"""

from __future__ import annotations

import json

import pytest

from repro.core.signature import Signature
from repro.core.signature_io import save_signatures
from repro.exceptions import CheckpointError
from repro.pipeline import (
    CheckpointStore,
    IterableRecordSource,
    PipelineConfig,
    SignaturePipeline,
)
from repro.store import HistoryCheckpointStore
from repro.store.segments import SEGMENT_SUFFIX


def trace_records(n=120, hosts=6, services=9):
    out = []
    for i in range(n):
        out.append(
            (
                float(i),
                f"host-{i % hosts:03d}",
                f"svc-{(i * 7) % services:03d}",
                1.0 + (i % 5) * 0.25,
            )
        )
    return out


def run_pipeline(store, *, resume=False, num_windows=4):
    source = IterableRecordSource(trace_records())
    config = PipelineConfig(scheme="tt", k=5, num_windows=num_windows)
    return SignaturePipeline(source, store, config).run(resume=resume)


def window_bytes(signatures, tmp_path, name):
    """Canonical byte serialisation of one window's signature map."""
    path = tmp_path / name
    save_signatures(signatures, path)
    return path.read_bytes()


class TestCheckpointContract:
    def test_save_and_load_roundtrip(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "h")
        signatures = {"a": Signature("a", {"x": 1.5}), "b": Signature("b", {"y": 2.0})}
        entry = store.save_window(0, signatures, {"records": 3})
        assert entry.window == 0
        loaded, meta = store.load_window(0)
        assert meta["records"] == 3
        assert {k: dict(v.entries) for k, v in loaded.items()} == {
            "a": {"x": 1.5},
            "b": {"y": 2.0},
        }

    def test_non_sequential_save_rejected(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "h")
        with pytest.raises(CheckpointError):
            store.save_window(1, {"a": Signature("a", {"x": 1.0})}, {})

    def test_run_state_roundtrips(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "h")
        store.set_run_state({"contract": "exact", "config": {"k": 5}})
        fresh = HistoryCheckpointStore(tmp_path / "h")
        assert fresh.run_state() == {"contract": "exact", "config": {"k": 5}}

    def test_corrupt_segment_fails_hash_verification(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "h")
        store.save_window(0, {"a": Signature("a", {"x": 1.0})}, {})
        [segment] = store.history.directory.glob(f"*{SEGMENT_SUFFIX}")
        blob = bytearray(segment.read_bytes())
        blob[-1] ^= 0xFF
        segment.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="hash verification"):
            HistoryCheckpointStore(tmp_path / "h").load_window(0)

    def test_scan_reports_contiguous_prefix(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "h")
        for window in range(3):
            store.save_window(window, {"a": Signature("a", {"x": 1.0 + window})}, {})
        [*_, last] = sorted(store.history.directory.glob(f"*{SEGMENT_SUFFIX}"))
        last.unlink()
        scan = HistoryCheckpointStore(tmp_path / "h").scan()
        assert scan.next_window == 2
        assert scan.issues


class TestByteIdenticalResume:
    def test_fresh_runs_agree_across_backends(self, tmp_path):
        json_result = run_pipeline(CheckpointStore(tmp_path / "json"))
        hist_result = run_pipeline(HistoryCheckpointStore(tmp_path / "hist"))
        assert len(json_result.signatures) == len(hist_result.signatures)
        for window, (left, right) in enumerate(
            zip(json_result.signatures, hist_result.signatures)
        ):
            assert window_bytes(left, tmp_path, f"l{window}.json") == window_bytes(
                right, tmp_path, f"r{window}.json"
            ), f"window {window} differs between JSON and history backends"

    def test_resume_from_history_backend_is_byte_identical(self, tmp_path):
        json_store = CheckpointStore(tmp_path / "json")
        hist_store = HistoryCheckpointStore(tmp_path / "hist")
        baseline = run_pipeline(json_store)
        run_pipeline(hist_store)
        resumed = run_pipeline(
            HistoryCheckpointStore(tmp_path / "hist"), resume=True
        )
        assert [r.mode for r in resumed.report.windows] == (
            ["cached"] * len(baseline.signatures)
        )
        for window, (left, right) in enumerate(
            zip(baseline.signatures, resumed.signatures)
        ):
            assert window_bytes(left, tmp_path, f"b{window}.json") == window_bytes(
                right, tmp_path, f"h{window}.json"
            ), f"resumed window {window} diverged from the JSON baseline"

    def test_resume_after_truncated_tail_recomputes_it(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "hist")
        baseline = run_pipeline(store)
        [*_, last] = sorted(store.history.directory.glob(f"*{SEGMENT_SUFFIX}"))
        blob = last.read_bytes()
        last.write_bytes(blob[: len(blob) // 3])
        resumed = run_pipeline(
            HistoryCheckpointStore(tmp_path / "hist"), resume=True
        )
        for window, (left, right) in enumerate(
            zip(baseline.signatures, resumed.signatures)
        ):
            assert window_bytes(left, tmp_path, f"x{window}.json") == window_bytes(
                right, tmp_path, f"y{window}.json"
            )

    def test_contract_stamp_refuses_cross_strategy_resume(self, tmp_path):
        store = HistoryCheckpointStore(tmp_path / "hist")
        source = IterableRecordSource(trace_records())
        SignaturePipeline(
            source, store, PipelineConfig(scheme="tt", k=5, num_windows=3)
        ).run()
        sketch_config = PipelineConfig(
            scheme="tt", k=5, num_windows=3, strategy="sketch"
        )
        with pytest.raises(Exception, match="contract"):
            SignaturePipeline(
                IterableRecordSource(trace_records()),
                HistoryCheckpointStore(tmp_path / "hist"),
                sketch_config,
            ).run(resume=True)
