"""Unit tests for ASCII report rendering."""

import pytest

from repro.experiments.report import format_series_block, format_table, sparkline


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["name", "value"], [["alpha", 0.5], ["beta", 1.0]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "0.5000" in lines[3]

    def test_column_widths_aligned(self):
        text = format_table(["x"], [["short"], ["a-much-longer-value"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_integers_pass_through(self):
        text = format_table(["n"], [[42]])
        assert "42" in text


class TestSparkline:
    def test_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " " and line[-1] == "@"

    def test_clamping(self):
        assert sparkline([-5.0, 5.0]) == sparkline([0.0, 1.0])

    def test_length_matches_input(self):
        assert len(sparkline([0.5] * 17)) == 17

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            sparkline([0.5], low=1.0, high=0.0)


class TestSeriesBlock:
    def test_labels_and_bars(self):
        text = format_series_block(
            "Curves", [("fast", [0.0, 1.0]), ("slow", [0.0, 0.5])]
        )
        lines = text.splitlines()
        assert lines[0] == "Curves"
        assert lines[1].startswith("  fast")
        assert "|" in lines[1]

    def test_empty_series(self):
        assert format_series_block("Nothing", []) == "Nothing"
