"""Unit tests for experiment configuration and dataset caching."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import (
    NETWORK_K,
    QUERYLOG_K,
    ExperimentConfig,
    application_schemes,
    get_enterprise_dataset,
    get_querylog_dataset,
    make_schemes,
)


class TestConfig:
    def test_defaults_are_paper_values(self):
        config = ExperimentConfig()
        assert config.scale == "paper"
        assert config.distances == ("jaccard", "dice", "sdice", "shel")
        assert config.reset_probability == 0.1
        assert config.rwr_hops == (3, 5, 7)
        assert NETWORK_K == 10 and QUERYLOG_K == 3

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale="galactic")


class TestDatasetCaching:
    def test_enterprise_cached(self):
        assert get_enterprise_dataset("small") is get_enterprise_dataset("small")

    def test_querylog_cached(self):
        assert get_querylog_dataset("small") is get_querylog_dataset("small")

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            get_enterprise_dataset("huge")
        with pytest.raises(ExperimentError):
            get_querylog_dataset("huge")

    def test_small_scale_structure(self):
        data = get_enterprise_dataset("small")
        assert len(data.local_hosts) == 60
        assert len(data.graphs) == 3
        querylog = get_querylog_dataset("small")
        assert len(querylog.users) == 80


class TestSchemeLineups:
    def test_make_schemes_labels(self):
        schemes = make_schemes(k=10)
        assert list(schemes) == ["TT", "UT", "RWR^3", "RWR^5", "RWR^7"]
        assert schemes["RWR^5"].max_hops == 5
        assert all(scheme.k == 10 for scheme in schemes.values())

    def test_make_schemes_without_rwr(self):
        assert list(make_schemes(k=5, include_rwr=False)) == ["TT", "UT"]

    def test_application_schemes(self):
        schemes = application_schemes(k=10)
        assert list(schemes) == ["TT", "UT", "RWR"]
        assert schemes["RWR"].max_hops == 3
