"""Unit tests for the figure shape-check functions on synthetic results.

The benches rely on these checks to assert the paper's qualitative claims;
here each check is fed hand-built result objects so its logic (orderings,
tolerances, aggregation over distances) is verified independently of any
dataset.
"""

import pytest

from repro.core.properties import PropertyEllipse
from repro.experiments.fig1_properties import check_fig1_shape
from repro.experiments.fig3_auc import Fig3Result, check_fig3_shape
from repro.experiments.fig4_robustness import Fig4Result, check_fig4_shape
from repro.experiments.fig6_masquerading import Fig6Result, check_fig6_shape


def ellipse(scheme, persistence, uniqueness, distance="Dist_SHel"):
    return PropertyEllipse(
        scheme=scheme,
        distance=distance,
        mean_persistence=persistence,
        std_persistence=0.1,
        mean_uniqueness=uniqueness,
        std_uniqueness=0.1,
        num_nodes=10,
        num_pairs=45,
    )


class TestFig1Check:
    def test_paper_ordering_passes(self):
        ellipses = [
            ellipse("UT", 0.1, 0.99),
            ellipse("TT", 0.4, 0.95),
            ellipse("RWR^3", 0.5, 0.85),
        ]
        checks = check_fig1_shape(ellipses)
        assert checks == {"ut_most_unique": True, "rwr_most_persistent": True}

    def test_inverted_uniqueness_fails(self):
        ellipses = [
            ellipse("UT", 0.1, 0.5),   # UT should be most unique but is not
            ellipse("TT", 0.4, 0.95),
            ellipse("RWR^3", 0.5, 0.85),
        ]
        assert not check_fig1_shape(ellipses)["ut_most_unique"]

    def test_near_tie_within_tolerance_passes(self):
        ellipses = [
            ellipse("UT", 0.39, 0.99),  # UT persistence 0.01 above TT
            ellipse("TT", 0.38, 0.95),
            ellipse("RWR^3", 0.5, 0.85),
        ]
        assert check_fig1_shape(ellipses)["rwr_most_persistent"]

    def test_averaged_over_distances(self):
        ellipses = [
            ellipse("UT", 0.1, 0.99, "Dist_Jac"),
            ellipse("UT", 0.1, 0.80, "Dist_SHel"),  # weak on one distance
            ellipse("TT", 0.4, 0.85, "Dist_Jac"),
            ellipse("TT", 0.4, 0.85, "Dist_SHel"),
            ellipse("RWR^3", 0.5, 0.5, "Dist_Jac"),
            ellipse("RWR^3", 0.5, 0.5, "Dist_SHel"),
        ]
        # Means: UT 0.895 >= TT 0.85 - tol -> still passes.
        assert check_fig1_shape(ellipses)["ut_most_unique"]


def fig3(dataset, auc):
    labels = tuple(next(iter(auc.values())).keys())
    return Fig3Result(dataset=dataset, scheme_labels=labels, auc=auc)


class TestFig3Check:
    def test_network_paper_shape_passes(self):
        auc = {
            "shel": {"TT": 0.91, "UT": 0.88, "RWR^3": 0.92, "RWR^5": 0.915, "RWR^7": 0.916}
        }
        checks = check_fig3_shape(fig3("network", auc))
        assert checks["multi_hop_beats_one_hop"]
        assert checks["rwr3_best_rwr"]

    def test_rwr3_not_best_fails(self):
        auc = {
            "shel": {"TT": 0.91, "UT": 0.88, "RWR^3": 0.90, "RWR^5": 0.95, "RWR^7": 0.91}
        }
        assert not check_fig3_shape(fig3("network", auc))["rwr3_best_rwr"]

    def test_one_hop_far_ahead_fails(self):
        auc = {
            "shel": {"TT": 0.99, "UT": 0.88, "RWR^3": 0.90, "RWR^5": 0.89, "RWR^7": 0.88}
        }
        assert not check_fig3_shape(fig3("network", auc))["multi_hop_beats_one_hop"]

    def test_querylog_near_perfect(self):
        good = {"shel": {"TT": 0.999, "UT": 1.0, "RWR^3": 0.99, "RWR^5": 0.985, "RWR^7": 0.98}}
        bad = {"shel": {"TT": 0.999, "UT": 1.0, "RWR^3": 0.99, "RWR^5": 0.985, "RWR^7": 0.90}}
        assert check_fig3_shape(fig3("querylog", good))["all_near_perfect"]
        assert not check_fig3_shape(fig3("querylog", bad))["all_near_perfect"]


def fig4(robustness):
    intensities = tuple(robustness)
    labels = tuple(next(iter(next(iter(robustness.values())).values())).keys())
    auc = {
        intensity: {d: {label: 1.0 for label in labels} for d in per}
        for intensity, per in robustness.items()
    }
    return Fig4Result(
        intensities=intensities, scheme_labels=labels, auc=auc, robustness=robustness
    )


class TestFig4Check:
    def test_paper_ordering_passes(self):
        result = fig4(
            {
                0.1: {"shel": {"TT": 0.85, "UT": 0.80, "RWR": 0.83}},
                0.4: {"shel": {"TT": 0.62, "UT": 0.57, "RWR": 0.61}},
            }
        )
        checks = check_fig4_shape(result)
        assert all(checks.values()), checks

    def test_ut_not_least_fails(self):
        result = fig4(
            {
                0.1: {"shel": {"TT": 0.85, "UT": 0.84, "RWR": 0.80}},
                0.4: {"shel": {"TT": 0.62, "UT": 0.61, "RWR": 0.57}},
            }
        )
        assert not check_fig4_shape(result)["ut_least_robust"]

    def test_improvement_with_intensity_fails(self):
        result = fig4(
            {
                0.1: {"shel": {"TT": 0.60, "UT": 0.55, "RWR": 0.58}},
                0.4: {"shel": {"TT": 0.85, "UT": 0.80, "RWR": 0.83}},
            }
        )
        assert not check_fig4_shape(result)["robustness_degrades_with_intensity"]

    def test_tt_within_small_margin_passes(self):
        result = fig4(
            {
                0.1: {"shel": {"TT": 0.845, "UT": 0.80, "RWR": 0.85}},  # TT -0.005
                0.4: {"shel": {"TT": 0.62, "UT": 0.57, "RWR": 0.61}},
            }
        )
        assert check_fig4_shape(result)["tt_most_robust"]


def fig6(accuracy):
    budgets = tuple(accuracy)
    labels = tuple(next(iter(accuracy.values())).keys())
    fractions = tuple(next(iter(next(iter(accuracy.values())).values())).keys())
    return Fig6Result(
        fractions=fractions,
        top_matches=budgets,
        scheme_labels=labels,
        accuracy=accuracy,
    )


class TestFig6Check:
    def test_paper_shape_passes(self):
        result = fig6(
            {
                1: {
                    "TT": {0.05: 0.95, 0.4: 0.7},
                    "UT": {0.05: 0.90, 0.4: 0.75},
                    "RWR": {0.05: 0.97, 0.4: 0.65},
                },
                5: {
                    "TT": {0.05: 0.96, 0.4: 0.72},
                    "UT": {0.05: 0.91, 0.4: 0.76},
                    "RWR": {0.05: 0.98, 0.4: 0.66},
                },
            }
        )
        checks = check_fig6_shape(result)
        assert checks["accuracy_not_decreasing_with_l"]
        assert checks["rwr_competitive_at_small_f"]

    def test_big_drop_with_l_fails(self):
        result = fig6(
            {
                1: {"TT": {0.05: 0.95}, "UT": {0.05: 0.95}, "RWR": {0.05: 0.95}},
                5: {"TT": {0.05: 0.95}, "UT": {0.05: 0.80}, "RWR": {0.05: 0.95}},
            }
        )
        assert not check_fig6_shape(result)["accuracy_not_decreasing_with_l"]

    def test_rwr_far_behind_fails(self):
        result = fig6(
            {
                5: {"TT": {0.05: 0.97}, "UT": {0.05: 0.90}, "RWR": {0.05: 0.90}},
            }
        )
        assert not check_fig6_shape(result)["rwr_competitive_at_small_f"]

    def test_low_fraction_regime_only(self):
        """Monotonicity is evaluated at the lower half of the f grid; a drop
        confined to large f does not fail the check."""
        result = fig6(
            {
                1: {
                    "TT": {0.05: 0.95, 0.1: 0.93, 0.3: 0.8, 0.4: 0.9},
                    "UT": {0.05: 0.90, 0.1: 0.89, 0.3: 0.8, 0.4: 0.9},
                    "RWR": {0.05: 0.95, 0.1: 0.93, 0.3: 0.8, 0.4: 0.9},
                },
                5: {
                    "TT": {0.05: 0.95, 0.1: 0.93, 0.3: 0.6, 0.4: 0.5},
                    "UT": {0.05: 0.90, 0.1: 0.89, 0.3: 0.6, 0.4: 0.5},
                    "RWR": {0.05: 0.95, 0.1: 0.93, 0.3: 0.6, 0.4: 0.5},
                },
            }
        )
        assert check_fig6_shape(result)["accuracy_not_decreasing_with_l"]
