"""Experiment-grid integration of the shared-memory recompute engine."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig, cell_engine
from repro.experiments.fig1_properties import run_fig1
from repro.parallel.shm import active_segment_names, reset_default_engine


class TestExperimentShmStrategy:
    def test_fig1_matches_serial(self):
        serial = run_fig1("network", ExperimentConfig(scale="small"))
        try:
            shm = run_fig1(
                "network", ExperimentConfig(scale="small", strategy="shm", jobs=2)
            )
        finally:
            reset_default_engine()
        assert shm == serial
        assert active_segment_names() == []

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExperimentError, match="strategy"):
            ExperimentConfig(strategy="quantum")

    def test_cell_jobs_collapses_under_shm(self):
        # The engine pool owns the CPUs; nesting a grid process pool on
        # top would oversubscribe, so grid cells run in-process.
        assert ExperimentConfig(jobs=4).cell_jobs == 4
        assert ExperimentConfig(jobs=4, strategy="shm").cell_jobs == 1

    def test_cell_engine_none_when_serial(self):
        assert cell_engine(ExperimentConfig()) is None
