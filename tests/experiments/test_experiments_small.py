"""Integration tests: every experiment runs mechanically at small scale.

These verify structure, determinism and formatting — the qualitative
paper-shape assertions live in ``benchmarks/`` where the paper-scale
datasets are used (several orderings are near-ties that only resolve at
full scale).
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    derive_table4,
    format_fig1,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_lsh_quality,
    format_streaming_fidelity,
    format_table4,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_lsh_quality,
    run_streaming_fidelity,
)
from repro.exceptions import ExperimentError
from repro.experiments.tables import table4_agreement


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale="small")


class TestFig1:
    def test_structure_and_format(self, config):
        ellipses = run_fig1("network", config)
        assert len(ellipses) == 20
        text = format_fig1(ellipses, "network")
        assert "Figure 1" in text and "RWR^7" in text

    def test_querylog_variant(self, config):
        ellipses = run_fig1("querylog", config)
        assert all(0 <= e.mean_uniqueness <= 1 for e in ellipses)

    def test_unknown_dataset(self, config):
        with pytest.raises(ExperimentError):
            run_fig1("webcrawl", config)

    def test_network_ordering_holds_even_at_small_scale(self, config):
        from repro.experiments.fig1_properties import check_fig1_shape

        checks = check_fig1_shape(run_fig1("network", config))
        assert checks["ut_most_unique"]
        assert checks["rwr_most_persistent"]


class TestFig2:
    def test_structure(self, config):
        result = run_fig2("shel", config)
        assert set(result.results) == {"TT", "UT", "RWR^3", "RWR^5", "RWR^7"}
        for roc in result.results.values():
            assert 0.5 <= roc.mean_auc <= 1.0
        assert "Figure 2" in format_fig2(result)


class TestFig3:
    def test_network_matrix(self, config):
        result = run_fig3("network", config)
        assert set(result.auc) == {"jaccard", "dice", "sdice", "shel"}
        for per_scheme in result.auc.values():
            assert set(per_scheme) == set(result.scheme_labels)
        assert "Figure 3(a)" in format_fig3(result)

    def test_querylog_matrix(self, config):
        result = run_fig3("querylog", config)
        assert "Figure 3(b)" in format_fig3(result)
        # Query logs are easy even at small scale.
        assert all(
            value > 0.9 for per in result.auc.values() for value in per.values()
        )

    def test_unknown_dataset(self, config):
        with pytest.raises(ExperimentError):
            run_fig3("webcrawl", config)


class TestFig4:
    def test_structure(self, config):
        result = run_fig4(intensities=(0.1, 0.4), config=config)
        assert result.intensities == (0.1, 0.4)
        for intensity in result.intensities:
            for measure in (result.auc, result.robustness):
                for per_scheme in measure[intensity].values():
                    for value in per_scheme.values():
                        assert 0.0 <= value <= 1.0
        text = format_fig4(result)
        assert "identity AUC" in text and "direct robustness" in text

    def test_empty_intensities_rejected(self, config):
        with pytest.raises(ExperimentError):
            run_fig4(intensities=(), config=config)

    def test_each_intensity_gets_its_own_perturbation_stream(self, config):
        """Regression: every grid cell used to receive the same raw run
        seed, so all intensities drew the identical perturbation stream —
        two intensities rounding to the same insert/delete counts then
        produced byte-identical cells."""
        nearly_equal = (0.1, 0.1 + 1e-9)
        result = run_fig4(intensities=nearly_equal, config=config)
        first, second = nearly_equal
        assert result.robustness[first] != result.robustness[second]

    def test_harsher_perturbation_less_robust(self, config):
        result = run_fig4(intensities=(0.1, 0.4), config=config)
        for distance_name in ("shel",):
            for label in result.scheme_labels:
                assert (
                    result.robustness[0.4][distance_name][label]
                    < result.robustness[0.1][distance_name][label]
                )


class TestFig5:
    def test_structure(self, config):
        result = run_fig5(config=config)
        for per_scheme in result.results.values():
            for roc in per_scheme.values():
                assert roc.mean_auc > 0.5
        assert "Figure 5" in format_fig5(result)


class TestFig6:
    def test_structure(self, config):
        result = run_fig6(
            fractions=(0.1, 0.3),
            top_matches=(1, 5),
            config=config,
            num_trials=2,
        )
        for budget in (1, 5):
            for label in result.scheme_labels:
                assert set(result.accuracy[budget][label]) == {0.1, 0.3}
                for value in result.accuracy[budget][label].values():
                    assert 0.0 <= value <= 1.0
        assert "Figure 6" in format_fig6(result)

    def test_invalid_arguments(self, config):
        with pytest.raises(ExperimentError):
            run_fig6(fractions=(), config=config)
        with pytest.raises(ExperimentError):
            run_fig6(num_trials=0, config=config)


class TestTable4:
    def test_structure(self, config):
        result = derive_table4(config=config)
        assert set(result.measured) == {"persistence", "uniqueness", "robustness"}
        matches, total = table4_agreement(result)
        assert total == 9
        # Even the miniature dataset gets most cells right.
        assert matches >= 6
        assert "Table IV" in format_table4(result)


class TestExtensions:
    def test_streaming_fidelity(self, config):
        results = run_streaming_fidelity(config=config)
        assert {item.scheme for item in results} == {"TT", "UT"}
        by_scheme = {item.scheme: item for item in results}
        assert by_scheme["TT"].mean_jaccard_distance < 0.05
        assert "Extension X1" in format_streaming_fidelity(results)

    def test_lsh_quality(self, config):
        result = run_lsh_quality(config=config)
        assert 0.0 <= result.pair_recall <= 1.0
        assert 0.0 <= result.candidate_ratio <= 1.0
        assert "Extension X2" in format_lsh_quality(result)
