"""Unit tests for Random Walk with Resets (Definition 5)."""

import numpy as np
import pytest

from repro.core.rwr import RandomWalkWithResets
from repro.core.top_talkers import TopTalkers
from repro.exceptions import SchemeError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph


class TestParameters:
    @pytest.mark.parametrize("c", [-0.1, 1.1])
    def test_invalid_reset_probability(self, c):
        with pytest.raises(SchemeError):
            RandomWalkWithResets(reset_probability=c)

    def test_invalid_hops(self):
        with pytest.raises(SchemeError):
            RandomWalkWithResets(max_hops=0)

    def test_invalid_tolerance(self):
        with pytest.raises(SchemeError):
            RandomWalkWithResets(tolerance=0.0)

    def test_invalid_symmetrize(self):
        with pytest.raises(SchemeError):
            RandomWalkWithResets(symmetrize="maybe")

    def test_describe(self):
        scheme = RandomWalkWithResets(k=5, reset_probability=0.1, max_hops=3)
        assert scheme.describe() == "rwr(k=5, c=0.1, h=3)"
        assert "h=inf" in RandomWalkWithResets().describe()


class TestPaperIdentities:
    def test_h1_c0_equals_top_talkers(self, triangle_graph):
        """The paper: 'When c = 0 and h = 1, RWR^h is identical to TT.'"""
        rwr = RandomWalkWithResets(k=3, reset_probability=0.0, max_hops=1)
        tt = TopTalkers(k=3)
        for node in triangle_graph.nodes():
            rwr_signature = rwr.compute(triangle_graph, node)
            tt_signature = tt.compute(triangle_graph, node)
            assert rwr_signature.nodes == tt_signature.nodes
            for member in rwr_signature.nodes:
                assert rwr_signature.weight(member) == pytest.approx(
                    tt_signature.weight(member)
                )

    def test_large_h_converges_to_unbounded(self, triangle_graph):
        """For h beyond the diameter + mixing, RWR^h coincides with RWR^inf."""
        bounded = RandomWalkWithResets(k=3, reset_probability=0.1, max_hops=500)
        unbounded = RandomWalkWithResets(k=3, reset_probability=0.1)
        for node in triangle_graph.nodes():
            relevance_bounded = bounded.relevance(triangle_graph, node)
            relevance_unbounded = unbounded.relevance(triangle_graph, node)
            for key in set(relevance_bounded) | set(relevance_unbounded):
                assert relevance_bounded.get(key, 0.0) == pytest.approx(
                    relevance_unbounded.get(key, 0.0), abs=1e-6
                )

    def test_large_c_concentrates_near_start(self, triangle_graph):
        """With c close to 1, the walk barely leaves the one-hop neighbourhood."""
        nearly_reset = RandomWalkWithResets(k=3, reset_probability=0.95, max_hops=50)
        relevance = nearly_reset.relevance(triangle_graph, "a")
        # Mass at the start node dominates; distant node mass is tiny.
        assert relevance["a"] > 0.9


class TestOccupancySemantics:
    def test_occupancy_is_probability_vector(self, triangle_graph):
        scheme = RandomWalkWithResets(k=3, reset_probability=0.2, max_hops=4)
        relevance = scheme.relevance(triangle_graph, "a")
        assert sum(relevance.values()) == pytest.approx(1.0)
        assert all(value >= 0 for value in relevance.values())

    def test_dangling_mass_returns_home(self):
        # 'b' has no outgoing edges; the walk teleports back to the start,
        # so no probability mass leaks (the reset keeps the chain aperiodic).
        graph = CommGraph([("a", "b", 1.0)])
        scheme = RandomWalkWithResets(k=2, reset_probability=0.2, max_hops=10)
        relevance = scheme.relevance(graph, "a")
        assert sum(relevance.values()) == pytest.approx(1.0)
        assert relevance["b"] > 0

    def test_hop_limit_restricts_reach(self):
        # Chain a -> b -> c -> d: with h=2 the walk cannot reach 'd'.
        graph = CommGraph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)])
        scheme = RandomWalkWithResets(k=5, reset_probability=0.1, max_hops=2)
        relevance = scheme.relevance(graph, "a")
        assert relevance.get("d", 0.0) == 0.0
        assert relevance.get("c", 0.0) > 0.0

    def test_unknown_node_empty(self, triangle_graph):
        assert RandomWalkWithResets().relevance(triangle_graph, "zzz") == {}

    def test_empty_graph(self):
        scheme = RandomWalkWithResets()
        assert scheme.relevance(CommGraph(), "a") == {}


class TestBatchedComputeAll:
    def test_matches_single_compute(self, triangle_graph):
        scheme = RandomWalkWithResets(k=3, reset_probability=0.1, max_hops=3)
        batch = scheme.compute_all(triangle_graph)
        for node in triangle_graph.nodes():
            single = scheme.compute(triangle_graph, node)
            assert batch[node].nodes == single.nodes
            for member in single.nodes:
                assert batch[node].weight(member) == pytest.approx(
                    single.weight(member)
                )

    def test_missing_nodes_get_empty_signatures(self, triangle_graph):
        scheme = RandomWalkWithResets(k=3)
        batch = scheme.compute_all(triangle_graph, nodes=["a", "ghost"])
        assert len(batch["ghost"]) == 0
        assert len(batch["a"]) > 0

    def test_empty_node_list(self, triangle_graph):
        assert RandomWalkWithResets().compute_all(triangle_graph, nodes=[]) == {}


class TestBipartiteBehaviour:
    def test_signature_restricted_to_right_partition(self, small_bipartite):
        scheme = RandomWalkWithResets(k=5, reset_probability=0.1, max_hops=4)
        signature = scheme.compute(small_bipartite, "u1")
        assert signature.nodes <= set(small_bipartite.right_nodes)
        assert len(signature) > 0

    def test_multi_hop_reaches_sibling_destinations(self, small_bipartite):
        # u1 never contacts d-private2 directly, but u2 does and they share
        # d-shared; the symmetrised 3-hop walk must reach it.
        scheme = RandomWalkWithResets(k=5, reset_probability=0.1, max_hops=3)
        signature = scheme.compute(small_bipartite, "u1")
        assert "d-private2" in signature

    def test_directed_walk_when_symmetrize_false(self, small_bipartite):
        scheme = RandomWalkWithResets(
            k=5, reset_probability=0.1, max_hops=3, symmetrize=False
        )
        signature = scheme.compute(small_bipartite, "u1")
        # Without back-edges the walk only sees direct destinations.
        assert signature.nodes <= {"d-shared", "d-private1"}

    def test_forced_symmetrize_on_plain_graph(self):
        graph = CommGraph([("a", "b", 1.0)])
        scheme = RandomWalkWithResets(
            k=2, reset_probability=0.1, max_hops=2, symmetrize=True
        )
        relevance = scheme.relevance(graph, "b")
        # Symmetrised, 'b' can reach 'a' despite only an a->b edge existing.
        assert relevance.get("a", 0.0) > 0


class TestHopLimitedMetadata:
    def test_effective_characteristics(self):
        assert RandomWalkWithResets(max_hops=3).effective_characteristics == (
            "locality",
            "transitivity",
        )
        assert RandomWalkWithResets().effective_characteristics == (
            "transitivity",
            "engagement",
        )

    def test_effective_target_properties(self):
        hop_limited = RandomWalkWithResets(max_hops=3)
        assert set(hop_limited.effective_target_properties) == {
            "persistence",
            "uniqueness",
            "robustness",
        }
        assert set(RandomWalkWithResets().effective_target_properties) == {
            "persistence",
            "robustness",
        }


class TestTopKExtraction:
    def test_extraction_matches_exhaustive_sort(self):
        rng = np.random.default_rng(0)
        graph = CommGraph()
        nodes = [f"n{i}" for i in range(80)]
        for i, src in enumerate(nodes):
            for dst in rng.choice(nodes, size=6, replace=False):
                if dst != src:
                    graph.add_edge(src, dst, float(rng.integers(1, 9)))
        scheme = RandomWalkWithResets(k=5, reset_probability=0.1, max_hops=3)
        batch = scheme.compute_all(graph, nodes=nodes[:10])
        for node in nodes[:10]:
            relevance = scheme.relevance(graph, node)
            expected = sorted(
                ((candidate, weight) for candidate, weight in relevance.items() if candidate != node),
                key=lambda item: (-item[1], str(item[0])),
            )[:5]
            assert [n for n, _w in batch[node].entries] == [n for n, _w in expected]
