"""Unit tests for JSON persistence of signature maps."""

import json

import pytest

from repro.core.scheme import create_scheme
from repro.core.signature import Signature
from repro.core.signature_io import (
    FORMAT_VERSION,
    load_signatures,
    save_signatures,
    signature_from_dict,
    signature_to_dict,
)
from repro.exceptions import SchemeError


class TestDictConversion:
    def test_round_trip_single_signature(self):
        signature = Signature("v", {"a": 2.0, "b": 1.0})
        payload = signature_to_dict(signature)
        rebuilt = signature_from_dict("v", payload)
        assert rebuilt == signature

    def test_non_string_label_rejected(self):
        signature = Signature("v", {42: 1.0})
        with pytest.raises(SchemeError):
            signature_to_dict(signature)


class TestFileRoundTrip:
    def test_round_trip_map(self, tmp_path):
        signatures = {
            "v1": Signature("v1", {"a": 2.0, "b": 1.0}),
            "v2": Signature("v2", {"c": 0.5}),
            "v3": Signature("v3", {}),
        }
        path = tmp_path / "signatures.json"
        written = save_signatures(signatures, path)
        assert written == 3
        loaded = load_signatures(path)
        assert loaded == signatures

    def test_round_trip_generated_signatures(self, tmp_path, tiny_enterprise):
        scheme = create_scheme("tt", k=10)
        signatures = scheme.compute_all(
            tiny_enterprise.graphs[0], tiny_enterprise.local_hosts
        )
        path = tmp_path / "hosts.json"
        save_signatures(signatures, path)
        loaded = load_signatures(path)
        assert loaded == signatures

    def test_loaded_signatures_usable_by_detectors(self, tmp_path, tiny_enterprise):
        """Persisted signatures drive detection without the original graph."""
        from repro.apps.masquerading import MasqueradeDetector
        from repro.core.distances import dist_scaled_hellinger

        scheme = create_scheme("tt", k=10)
        hosts = tiny_enterprise.local_hosts
        now = scheme.compute_all(tiny_enterprise.graphs[0], hosts)
        later = scheme.compute_all(tiny_enterprise.graphs[1], hosts)
        path_now, path_later = tmp_path / "now.json", tmp_path / "later.json"
        save_signatures(now, path_now)
        save_signatures(later, path_later)

        detector = MasqueradeDetector(scheme, dist_scaled_hellinger)
        from_disk = detector.detect(
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            population=hosts,
            signatures_now=load_signatures(path_now),
            signatures_next=load_signatures(path_later),
        )
        fresh = detector.detect(
            tiny_enterprise.graphs[0], tiny_enterprise.graphs[1], population=hosts
        )
        assert from_disk.non_suspects == fresh.non_suspects
        assert from_disk.detected_pairs == fresh.detected_pairs


class TestValidation:
    def test_owner_mismatch_rejected(self, tmp_path):
        with pytest.raises(SchemeError):
            save_signatures(
                {"wrong": Signature("v", {"a": 1.0})}, tmp_path / "x.json"
            )

    def test_non_string_owner_rejected(self, tmp_path):
        with pytest.raises(SchemeError):
            save_signatures({7: Signature(7, {"a": 1.0})}, tmp_path / "x.json")

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 999, "signatures": {}}))
        with pytest.raises(SchemeError):
            load_signatures(path)

    def test_not_a_signature_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(SchemeError):
            load_signatures(path)

    def test_format_version_constant(self):
        assert FORMAT_VERSION == 1
