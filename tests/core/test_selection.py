"""Unit and integration tests for automated scheme selection."""

import pytest

from repro.apps.requirements import Requirement
from repro.core.distances import get_distance
from repro.core.scheme import create_scheme
from repro.core.selection import (
    PropertyProfile,
    measure_scheme_properties,
    score_profile,
    select_scheme,
)
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def candidates():
    return {
        "TT": create_scheme("tt", k=10),
        "UT": create_scheme("ut", k=10),
        "RWR": create_scheme("rwr", k=10, reset_probability=0.1, max_hops=3),
    }


class TestPropertyProfile:
    def test_value_lookup(self):
        profile = PropertyProfile("x", persistence=0.5, uniqueness=0.9, robustness=0.7)
        assert profile.value("persistence") == 0.5
        assert profile.value("uniqueness") == 0.9
        assert profile.value("robustness") == 0.7
        with pytest.raises(ExperimentError):
            profile.value("beauty")

    def test_score_weights_high_properties_most(self):
        unique_strong = PropertyProfile("a", persistence=0.1, uniqueness=0.9, robustness=0.9)
        persistent_strong = PropertyProfile("b", persistence=0.9, uniqueness=0.1, robustness=0.9)
        requirements = {
            "persistence": Requirement.LOW,
            "uniqueness": Requirement.HIGH,
            "robustness": Requirement.HIGH,
        }
        assert score_profile(unique_strong, requirements) > score_profile(
            persistent_strong, requirements
        )


class TestMeasurement:
    def test_measured_values_in_range(self, tiny_enterprise, candidates):
        profile = measure_scheme_properties(
            candidates["TT"],
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            get_distance("shel"),
            tiny_enterprise.local_hosts,
            scheme_label="TT",
        )
        assert 0.0 <= profile.persistence <= 1.0
        assert 0.0 <= profile.uniqueness <= 1.0
        assert 0.0 <= profile.robustness <= 1.0
        assert profile.scheme_label == "TT"

    def test_default_label_is_describe(self, tiny_enterprise, candidates):
        profile = measure_scheme_properties(
            candidates["UT"],
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            get_distance("shel"),
            tiny_enterprise.local_hosts,
        )
        assert "ut" in profile.scheme_label

    def test_empty_population_rejected(self, tiny_enterprise, candidates):
        with pytest.raises(ExperimentError):
            measure_scheme_properties(
                candidates["TT"],
                tiny_enterprise.graphs[0],
                tiny_enterprise.graphs[1],
                get_distance("shel"),
                [],
            )

    def test_table4_orderings_recovered(self, tiny_enterprise, candidates):
        """Measurements reproduce the relative behaviour of Table IV on the
        synthetic data: UT most unique, RWR most persistent."""
        profiles = {
            label: measure_scheme_properties(
                scheme,
                tiny_enterprise.graphs[0],
                tiny_enterprise.graphs[1],
                get_distance("shel"),
                tiny_enterprise.local_hosts,
                scheme_label=label,
            )
            for label, scheme in candidates.items()
        }
        assert profiles["UT"].uniqueness == max(p.uniqueness for p in profiles.values())
        assert profiles["RWR"].persistence == max(
            p.persistence for p in profiles.values()
        )


class TestSelectScheme:
    def test_multiusage_selects_tt_or_rwr_over_ut(self, tiny_enterprise, candidates):
        ranking = select_scheme(
            "multiusage_detection",
            candidates,
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            get_distance("shel"),
            tiny_enterprise.local_hosts,
        )
        # Multiusage weighs uniqueness and robustness: the low-uniqueness
        # RWR scheme must rank last; the winner is one of the one-hop pair.
        assert ranking.best in ("TT", "UT")
        assert ranking.ranked_labels()[-1] == "RWR"
        assert set(ranking.scores) == set(candidates)
        assert len(ranking.profiles) == 3

    def test_anomaly_detection_prefers_persistent_scheme(
        self, tiny_enterprise, candidates
    ):
        ranking = select_scheme(
            "anomaly_detection",
            candidates,
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            get_distance("shel"),
            tiny_enterprise.local_hosts,
        )
        # Anomaly detection weighs persistence+robustness; UT (noise-laden)
        # must not win.
        assert ranking.best != "UT"
        assert ranking.ranked_labels()[0] == ranking.best

    def test_unknown_application(self, tiny_enterprise, candidates):
        with pytest.raises(ExperimentError):
            select_scheme(
                "time-travel",
                candidates,
                tiny_enterprise.graphs[0],
                tiny_enterprise.graphs[1],
                get_distance("shel"),
                tiny_enterprise.local_hosts,
            )

    def test_empty_candidates(self, tiny_enterprise):
        with pytest.raises(ExperimentError):
            select_scheme(
                "anomaly_detection",
                {},
                tiny_enterprise.graphs[0],
                tiny_enterprise.graphs[1],
                get_distance("shel"),
                tiny_enterprise.local_hosts,
            )

    def test_deterministic(self, tiny_enterprise, candidates):
        run = lambda: select_scheme(
            "label_masquerading",
            candidates,
            tiny_enterprise.graphs[0],
            tiny_enterprise.graphs[1],
            get_distance("shel"),
            tiny_enterprise.local_hosts,
            seed=5,
        )
        assert run().scores == run().scores
