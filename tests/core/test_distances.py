"""Unit tests for the four signature distance functions (Section IV-B)."""

import pytest

from repro.core.distances import (
    DISPLAY_NAMES,
    available_distances,
    dist_dice,
    dist_jaccard,
    dist_scaled_dice,
    dist_scaled_hellinger,
    get_distance,
)
from repro.core.signature import Signature
from repro.exceptions import UnknownDistanceError

ALL_DISTANCES = [dist_jaccard, dist_dice, dist_scaled_dice, dist_scaled_hellinger]


def sig(owner, **weights):
    return Signature(owner, weights)


class TestRegistry:
    def test_available_order_matches_paper(self):
        assert available_distances() == ("jaccard", "dice", "sdice", "shel")

    def test_get_distance(self):
        assert get_distance("jaccard") is dist_jaccard
        assert get_distance("shel") is dist_scaled_hellinger

    def test_unknown_distance(self):
        with pytest.raises(UnknownDistanceError):
            get_distance("euclid")

    def test_display_names_cover_all(self):
        assert set(DISPLAY_NAMES) == set(available_distances())


@pytest.mark.parametrize("distance", ALL_DISTANCES)
class TestSharedContract:
    def test_identical_signatures_distance_zero(self, distance):
        first = sig("v", a=2.0, b=1.0)
        second = sig("u", a=2.0, b=1.0)
        assert distance(first, second) == pytest.approx(0.0)

    def test_disjoint_signatures_distance_one(self, distance):
        assert distance(sig("v", a=1.0), sig("u", b=1.0)) == pytest.approx(1.0)

    def test_both_empty_distance_zero(self, distance):
        assert distance(sig("v"), sig("u")) == 0.0

    def test_empty_vs_nonempty_distance_one(self, distance):
        assert distance(sig("v"), sig("u", a=1.0)) == pytest.approx(1.0)

    def test_symmetry(self, distance):
        first = sig("v", a=2.0, b=1.0, c=4.0)
        second = sig("u", b=3.0, c=1.0, d=2.0)
        assert distance(first, second) == pytest.approx(distance(second, first))

    def test_range(self, distance):
        first = sig("v", a=5.0, b=0.5)
        second = sig("u", a=0.1, c=9.0)
        assert 0.0 <= distance(first, second) <= 1.0


class TestJaccard:
    def test_exact_value(self):
        first = sig("v", a=1.0, b=1.0, c=1.0)
        second = sig("u", b=9.0, c=9.0, d=9.0)
        # overlap 2, union 4.
        assert dist_jaccard(first, second) == pytest.approx(0.5)

    def test_ignores_weights(self):
        light = sig("v", a=0.001, b=0.001)
        heavy = sig("u", a=100.0, b=100.0)
        assert dist_jaccard(light, heavy) == 0.0


class TestDice:
    def test_exact_value(self):
        first = sig("v", a=2.0, b=1.0)
        second = sig("u", a=4.0, c=3.0)
        # shared mass (2+4) over total mass (2+1+4+3).
        assert dist_dice(first, second) == pytest.approx(1 - 6 / 10)

    def test_weight_sensitivity(self):
        base = sig("v", a=1.0, b=1.0)
        similar = sig("u", a=1.0, c=1.0)
        heavier_shared = sig("u", a=10.0, c=1.0)
        assert dist_dice(base, heavier_shared) < dist_dice(base, similar)


class TestScaledDice:
    def test_exact_value(self):
        first = sig("v", a=2.0, b=1.0)
        second = sig("u", a=4.0, c=3.0)
        # min over shared = 2; max over union = 4 + 1 + 3.
        assert dist_scaled_dice(first, second) == pytest.approx(1 - 2 / 8)

    def test_rewards_equal_weights(self):
        base = sig("v", a=2.0)
        equal = sig("u", a=2.0)
        unequal = sig("u", a=8.0)
        assert dist_scaled_dice(base, equal) < dist_scaled_dice(base, unequal)


class TestScaledHellinger:
    def test_exact_value(self):
        first = sig("v", a=4.0)
        second = sig("u", a=1.0)
        # sqrt(4*1)=2 over max=4.
        assert dist_scaled_hellinger(first, second) == pytest.approx(0.5)

    def test_softer_than_sdice_on_unequal_weights(self):
        first = sig("v", a=4.0, b=1.0)
        second = sig("u", a=1.0, b=4.0)
        assert dist_scaled_hellinger(first, second) <= dist_scaled_dice(first, second)

    def test_paper_ordering_on_overlapping_signatures(self):
        # SHel always sits between Dice-style softness and SDice strictness
        # for signatures with shared support.
        first = sig("v", a=3.0, b=2.0, c=1.0)
        second = sig("u", a=1.0, b=2.0, d=5.0)
        sdice = dist_scaled_dice(first, second)
        shel = dist_scaled_hellinger(first, second)
        assert shel <= sdice
