"""Distance edge cases, asserted identically on the scalar and batch paths.

Every distance must agree on the degenerate inputs that experiments
actually produce: nodes absent from a window (empty signatures), disjoint
neighbourhoods, self-comparison, and values clamped to [0, 1].
"""

import pytest

from repro.core.distances import available_distances, get_distance
from repro.core.packed import SignaturePack, cross_matrix
from repro.core.signature import Signature

DISTANCES = available_distances()

EMPTY_A = Signature("a", {})
EMPTY_B = Signature("b", {})
SINGLE = Signature("s", {"x": 3.0})
DISJOINT = Signature("d", {"y": 1.0, "z": 2.0})
IDENTICAL_A = Signature("p", {"x": 1.0, "y": 2.5})
IDENTICAL_B = Signature("q", {"x": 1.0, "y": 2.5})
OVERLAP_A = Signature("o1", {"x": 4.0, "y": 1.0})
OVERLAP_B = Signature("o2", {"x": 1.0, "z": 4.0})


def batch_value(first, second, metric):
    """The same comparison through the packed cross kernel."""
    pack_a = SignaturePack.from_signatures([first])
    pack_b = SignaturePack.from_signatures([second])
    return float(cross_matrix(pack_a, pack_b, metric)[0, 0])


def both_paths(first, second, metric):
    scalar = get_distance(metric)(first, second)
    batch = batch_value(first, second, metric)
    assert batch == pytest.approx(scalar, abs=1e-12)
    return scalar


@pytest.mark.parametrize("metric", DISTANCES)
class TestDistanceEdgeCases:
    def test_empty_vs_empty_is_zero(self, metric):
        assert both_paths(EMPTY_A, EMPTY_B, metric) == 0.0

    def test_empty_vs_nonempty_is_one(self, metric):
        assert both_paths(EMPTY_A, SINGLE, metric) == 1.0
        assert both_paths(SINGLE, EMPTY_A, metric) == 1.0

    def test_disjoint_supports_is_one(self, metric):
        assert both_paths(SINGLE, DISJOINT, metric) == 1.0

    def test_identical_entries_is_zero(self, metric):
        assert both_paths(IDENTICAL_A, IDENTICAL_B, metric) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_self_comparison_is_zero(self, metric):
        assert both_paths(SINGLE, SINGLE, metric) == pytest.approx(0.0, abs=1e-12)

    def test_partial_overlap_strictly_between(self, metric):
        value = both_paths(OVERLAP_A, OVERLAP_B, metric)
        assert 0.0 < value < 1.0

    def test_symmetry(self, metric):
        forward = both_paths(OVERLAP_A, OVERLAP_B, metric)
        backward = both_paths(OVERLAP_B, OVERLAP_A, metric)
        assert forward == pytest.approx(backward, abs=1e-12)

    def test_clamped_to_unit_interval(self, metric):
        # Extreme magnitudes stress the floating-point clamp (kept within
        # the range where products of weights stay representable).
        tiny = Signature("t", {"x": 1e-30, "y": 1e-30})
        huge = Signature("h", {"x": 1e30, "z": 1e30})
        for first, second in [(tiny, huge), (tiny, tiny), (huge, huge)]:
            value = both_paths(first, second, metric)
            assert 0.0 <= value <= 1.0
