"""Unit tests for ROC construction and AUC (the paper's evaluation core)."""

import numpy as np
import pytest

from repro.core.distances import dist_jaccard
from repro.core.roc import (
    RocCurve,
    auc_from_scores,
    average_roc,
    roc_from_scores,
    roc_identity,
    roc_set_query,
)
from repro.core.signature import Signature
from repro.exceptions import ExperimentError


def sig(owner, *members):
    return Signature(owner, {member: 1.0 for member in members})


class TestAucFromScores:
    def test_perfect_separation(self):
        assert auc_from_scores([0.1], [0.5, 0.9, 0.7]) == 1.0

    def test_inverted_separation(self):
        assert auc_from_scores([0.9], [0.1, 0.2]) == 0.0

    def test_random_with_ties(self):
        # All scores equal: AUC must be exactly one half.
        assert auc_from_scores([0.5, 0.5], [0.5, 0.5, 0.5]) == 0.5

    def test_partial_overlap(self):
        # positive 0.3 beats negatives 0.5, 0.9; loses to 0.1 -> 2/3.
        assert auc_from_scores([0.3], [0.1, 0.5, 0.9]) == pytest.approx(2 / 3)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        positives = rng.random(17)
        negatives = rng.random(31)
        brute = np.mean(
            [
                1.0 if p < n else (0.5 if p == n else 0.0)
                for p in positives
                for n in negatives
            ]
        )
        assert auc_from_scores(positives, negatives) == pytest.approx(float(brute))

    def test_requires_both_classes(self):
        with pytest.raises(ExperimentError):
            auc_from_scores([], [0.1])
        with pytest.raises(ExperimentError):
            auc_from_scores([0.1], [])


class TestRocFromScores:
    def test_curve_endpoints(self):
        curve = roc_from_scores([0.1], [0.2, 0.3], grid_size=11)
        assert curve.fpr[0] == 0.0 and curve.fpr[-1] == 1.0
        assert curve.tpr[0] == pytest.approx(1.0)  # positive ranks first
        assert curve.tpr[-1] == 1.0

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(1)
        curve = roc_from_scores(rng.random(5), rng.random(40))
        assert np.all(np.diff(curve.tpr) >= -1e-12)

    def test_ties_produce_diagonal(self):
        curve = roc_from_scores([0.5], [0.5], grid_size=3)
        # Single tied block: the curve is the diagonal, AUC one half.
        assert curve.auc == 0.5
        assert curve.tpr[1] == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            RocCurve(fpr=np.zeros(3), tpr=np.zeros(4), auc=0.5)


class TestAverageRoc:
    def test_average_of_identical_curves(self):
        curve = roc_from_scores([0.1], [0.2, 0.3])
        averaged = average_roc([curve, curve])
        assert averaged.auc == curve.auc
        assert np.allclose(averaged.tpr, curve.tpr)

    def test_mixed_curves_average_auc(self):
        good = roc_from_scores([0.1], [0.5, 0.6])
        bad = roc_from_scores([0.9], [0.5, 0.6])
        averaged = average_roc([good, bad])
        assert averaged.auc == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            average_roc([])

    def test_grid_mismatch_rejected(self):
        first = roc_from_scores([0.1], [0.2], grid_size=5)
        second = roc_from_scores([0.1], [0.2], grid_size=7)
        with pytest.raises(ExperimentError):
            average_roc([first, second])


class TestRocIdentity:
    def test_perfectly_persistent_population(self):
        now = {name: sig(name, f"x-{name}") for name in "abcd"}
        later = {name: sig(name, f"x-{name}") for name in "abcd"}
        result = roc_identity(now, later, dist_jaccard)
        assert result.mean_auc == 1.0
        assert set(result.per_node_auc) == set("abcd")

    def test_fully_churned_population_is_random(self):
        # Every node gets a brand-new disjoint signature: all distances are
        # 1, so ranking is uninformative -> AUC 0.5 by tie handling.
        now = {name: sig(name, f"old-{name}") for name in "abcd"}
        later = {name: sig(name, f"new-{name}") for name in "abcd"}
        result = roc_identity(now, later, dist_jaccard)
        assert result.mean_auc == pytest.approx(0.5)

    def test_query_missing_from_candidates_raises(self):
        now = {"v": sig("v", "a")}
        later = {"u": sig("u", "a")}
        with pytest.raises(ExperimentError):
            roc_identity(now, later, dist_jaccard, queries=["v"], candidates=["u"])

    def test_no_queries_raises(self):
        with pytest.raises(ExperimentError):
            roc_identity({}, {}, dist_jaccard)


class TestRocSetQuery:
    def test_siblings_rank_first(self):
        signatures = {
            "v1": sig("v1", "shared", "extra1"),
            "v2": sig("v2", "shared", "extra2"),
            "other1": sig("other1", "different1"),
            "other2": sig("other2", "different2"),
        }
        result = roc_set_query(
            signatures, {"v1": ["v2"], "v2": ["v1"]}, dist_jaccard
        )
        assert result.mean_auc == 1.0
        assert set(result.per_query_auc) == {"v1", "v2"}

    def test_query_excluded_from_own_ranking(self):
        signatures = {
            "v1": sig("v1", "shared"),
            "v2": sig("v2", "shared"),
            "other": sig("other", "different"),
        }
        result = roc_set_query(signatures, {"v1": ["v1", "v2"]}, dist_jaccard)
        # v1 itself is dropped from positives and candidates.
        assert result.per_query_auc["v1"] == 1.0

    def test_query_without_signature_raises(self):
        with pytest.raises(ExperimentError):
            roc_set_query({}, {"ghost": ["x"]}, dist_jaccard)

    def test_query_with_only_self_positive_raises(self):
        signatures = {"v": sig("v", "a"), "u": sig("u", "b")}
        with pytest.raises(ExperimentError):
            roc_set_query(signatures, {"v": ["v"]}, dist_jaccard)

    def test_no_queries_raises(self):
        with pytest.raises(ExperimentError):
            roc_set_query({"v": sig("v", "a")}, {}, dist_jaccard)
