"""Unit tests for the Unexpected Talkers scheme (Definition 4)."""

import pytest

from repro.core.relevance import available_scalings, get_scaling, inverse_indegree, sqrt_indegree, tfidf
from repro.core.unexpected_talkers import UnexpectedTalkers
from repro.exceptions import SchemeError
from repro.graph.comm_graph import CommGraph


@pytest.fixture
def popularity_graph():
    """'v' talks to a universally popular hub and an obscure node equally."""
    graph = CommGraph(
        [
            ("v", "hub", 6.0),
            ("v", "obscure", 6.0),
            # Three more nodes all talk to the hub.
            ("x1", "hub", 1.0),
            ("x2", "hub", 1.0),
            ("x3", "hub", 1.0),
        ]
    )
    return graph


class TestRelevance:
    def test_popular_nodes_downweighted(self, popularity_graph):
        relevance = UnexpectedTalkers(k=5).relevance(popularity_graph, "v")
        # hub has in-degree 4, obscure in-degree 1.
        assert relevance["hub"] == pytest.approx(6.0 / 4.0)
        assert relevance["obscure"] == pytest.approx(6.0)
        assert relevance["obscure"] > relevance["hub"]

    def test_unknown_node_empty(self, popularity_graph):
        assert UnexpectedTalkers().relevance(popularity_graph, "zzz") == {}

    def test_top_k_prefers_obscure(self, popularity_graph):
        signature = UnexpectedTalkers(k=1).compute(popularity_graph, "v")
        assert signature.nodes == {"obscure"}

    def test_self_loop_excluded(self):
        graph = CommGraph([("v", "v", 5.0), ("v", "a", 1.0)])
        relevance = UnexpectedTalkers().relevance(graph, "v")
        assert "v" not in relevance


class TestScalings:
    def test_available(self):
        assert set(available_scalings()) == {"inverse", "tfidf", "sqrt"}

    def test_get_unknown(self):
        with pytest.raises(SchemeError):
            get_scaling("bogus")

    def test_inverse(self):
        assert inverse_indegree(6.0, 3, 100) == pytest.approx(2.0)
        assert inverse_indegree(6.0, 0, 100) == 0.0

    def test_tfidf(self):
        import math

        assert tfidf(2.0, 10, 100) == pytest.approx(2.0 * math.log(10.0))
        # A node everyone talks to carries no information.
        assert tfidf(2.0, 100, 100) == 0.0
        assert tfidf(2.0, 0, 100) == 0.0

    def test_sqrt(self):
        assert sqrt_indegree(6.0, 4, 100) == pytest.approx(3.0)
        assert sqrt_indegree(6.0, 0, 100) == 0.0

    def test_tfidf_scheme_end_to_end(self, popularity_graph):
        scheme = UnexpectedTalkers(k=2, scaling="tfidf")
        signature = scheme.compute(popularity_graph, "v")
        # The hub (in-degree 4 of 6 nodes) is heavily discounted but the
        # obscure node keeps full TF-IDF weight.
        assert signature.weight("obscure") > signature.weight("hub")

    def test_all_scalings_preserve_obscure_over_hub(self, popularity_graph):
        for scaling in available_scalings():
            relevance = UnexpectedTalkers(scaling=scaling).relevance(
                popularity_graph, "v"
            )
            assert relevance["obscure"] > relevance.get("hub", 0.0)


class TestMetadata:
    def test_table3_row(self):
        scheme = UnexpectedTalkers()
        assert scheme.name == "ut"
        assert set(scheme.characteristics) == {"novelty", "locality"}
        assert set(scheme.target_properties) == {"uniqueness"}

    def test_describe_includes_scaling(self):
        assert "tfidf" in UnexpectedTalkers(scaling="tfidf").describe()

    def test_invalid_scaling_rejected(self):
        with pytest.raises(SchemeError):
            UnexpectedTalkers(scaling="nope")
