"""Unit tests for the In-Talkers scheme."""

import pytest

from repro.core.in_talkers import InTalkers
from repro.core.scheme import create_scheme
from repro.graph.comm_graph import CommGraph


class TestRelevance:
    def test_weights_are_incoming_fractions(self, triangle_graph):
        relevance = InTalkers(k=5).relevance(triangle_graph, "c")
        # c receives 2.0 from a and 1.0 from b.
        assert relevance["a"] == pytest.approx(2.0 / 3.0)
        assert relevance["b"] == pytest.approx(1.0 / 3.0)

    def test_mirror_of_top_talkers_on_transpose(self, triangle_graph):
        transposed = CommGraph(
            (dst, src, weight) for src, dst, weight in triangle_graph.edges()
        )
        tt = create_scheme("tt", k=5)
        it = create_scheme("it", k=5)
        for node in triangle_graph.nodes():
            assert it.compute(triangle_graph, node) == tt.compute(transposed, node)

    def test_no_incoming_edges_empty(self, star_graph):
        assert InTalkers(k=3).relevance(star_graph, "h") == {}

    def test_unknown_node_empty(self, triangle_graph):
        assert InTalkers().relevance(triangle_graph, "zzz") == {}

    def test_self_loop_excluded(self):
        graph = CommGraph([("v", "v", 5.0), ("a", "v", 1.0)])
        relevance = InTalkers().relevance(graph, "v")
        assert "v" not in relevance
        assert relevance["a"] == pytest.approx(1.0)

    def test_only_self_loop_empty(self):
        graph = CommGraph([("v", "v", 5.0)])
        assert InTalkers().relevance(graph, "v") == {}


class TestUsage:
    def test_registered(self):
        scheme = create_scheme("it", k=4)
        assert isinstance(scheme, InTalkers)
        assert scheme.describe() == "it(k=4)"

    def test_fingerprints_destination_side(self, tiny_enterprise):
        """IT gives right-partition nodes (destinations) usable signatures —
        the reason the scheme exists."""
        graph = tiny_enterprise.graphs[0]
        scheme = create_scheme("it", k=10)
        services = [n for n in graph.right_nodes if str(n).startswith("svc-")]
        busiest = max(services, key=graph.in_degree)
        signature = scheme.compute(graph, busiest)
        assert len(signature) == 10
        assert signature.nodes <= set(tiny_enterprise.local_hosts)

    def test_destination_persistence_measurable(self, tiny_enterprise):
        from repro.core.distances import dist_scaled_hellinger
        from repro.core.properties import persistence

        graph_now, graph_next = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        scheme = create_scheme("it", k=10)
        services = [
            n for n in graph_now.right_nodes if str(n).startswith("svc-")
        ]
        values = [
            persistence(
                scheme.compute(graph_now, service),
                scheme.compute(graph_next, service),
                dist_scaled_hellinger,
            )
            for service in services
            if service in graph_next
        ]
        # Popular services keep a stable user community across windows.
        assert sum(values) / len(values) > 0.3
