"""Unit tests for the Top Talkers scheme (Definition 3)."""

import pytest

from repro.core.top_talkers import TopTalkers
from repro.graph.comm_graph import CommGraph


class TestRelevance:
    def test_weights_are_volume_fractions(self, triangle_graph):
        scheme = TopTalkers(k=5)
        relevance = scheme.relevance(triangle_graph, "a")
        assert relevance["b"] == pytest.approx(5.0 / 7.0)
        assert relevance["c"] == pytest.approx(2.0 / 7.0)
        assert sum(relevance.values()) == pytest.approx(1.0)

    def test_unknown_node_empty(self, triangle_graph):
        assert TopTalkers().relevance(triangle_graph, "zzz") == {}

    def test_silent_node_empty(self):
        graph = CommGraph()
        graph.add_node("mute")
        assert TopTalkers().relevance(graph, "mute") == {}

    def test_self_loop_excluded_from_weights(self):
        graph = CommGraph([("a", "a", 10.0), ("a", "b", 5.0)])
        relevance = TopTalkers().relevance(graph, "a")
        assert "a" not in relevance
        assert relevance["b"] == pytest.approx(1.0)

    def test_only_self_loop_gives_empty(self):
        graph = CommGraph([("a", "a", 10.0)])
        assert TopTalkers().relevance(graph, "a") == {}


class TestCompute:
    def test_top_k_cut(self, star_graph):
        scheme = TopTalkers(k=2)
        signature = scheme.compute(star_graph, "h")
        assert signature.nodes == {"s4", "s3"}  # weights 5 and 4

    def test_signature_shorter_when_fewer_neighbours(self, triangle_graph):
        signature = TopTalkers(k=10).compute(triangle_graph, "a")
        assert len(signature) == 2

    def test_compute_all_matches_compute(self, triangle_graph):
        scheme = TopTalkers(k=2)
        batch = scheme.compute_all(triangle_graph)
        for node in triangle_graph.nodes():
            assert batch[node] == scheme.compute(triangle_graph, node)

    def test_compute_all_subset(self, triangle_graph):
        scheme = TopTalkers(k=2)
        batch = scheme.compute_all(triangle_graph, nodes=["a"])
        assert set(batch) == {"a"}

    def test_bipartite_signatures_stay_in_right_partition(self, small_bipartite):
        scheme = TopTalkers(k=5)
        signature = scheme.compute(small_bipartite, "u1")
        assert signature.nodes <= set(small_bipartite.right_nodes)


class TestMetadata:
    def test_table3_row(self):
        scheme = TopTalkers()
        assert scheme.name == "tt"
        assert set(scheme.characteristics) == {"locality", "engagement"}
        assert set(scheme.target_properties) == {"uniqueness", "robustness"}

    def test_describe(self):
        assert TopTalkers(k=7).describe() == "tt(k=7)"
