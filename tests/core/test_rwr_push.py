"""Unit tests for the local-push approximate RWR scheme."""

import pytest

from repro.core.distances import dist_jaccard
from repro.core.rwr import RandomWalkWithResets
from repro.core.rwr_push import PushRandomWalk
from repro.core.scheme import create_scheme
from repro.exceptions import SchemeError
from repro.graph.comm_graph import CommGraph


class TestParameters:
    @pytest.mark.parametrize("c", [0.0, -0.1, 1.1])
    def test_invalid_reset(self, c):
        with pytest.raises(SchemeError):
            PushRandomWalk(reset_probability=c)

    def test_invalid_epsilon(self):
        with pytest.raises(SchemeError):
            PushRandomWalk(epsilon=0.0)

    def test_invalid_max_pushes(self):
        with pytest.raises(SchemeError):
            PushRandomWalk(max_pushes=0)

    def test_invalid_symmetrize(self):
        with pytest.raises(SchemeError):
            PushRandomWalk(symmetrize="sometimes")

    def test_registered(self):
        scheme = create_scheme("rwr-push", k=4, epsilon=1e-4)
        assert isinstance(scheme, PushRandomWalk)
        assert "eps=0.0001" in scheme.describe()


class TestApproximationSemantics:
    def test_estimate_mass_bounded_by_one(self, triangle_graph):
        scheme = PushRandomWalk(k=5, reset_probability=0.2, epsilon=1e-7)
        relevance = scheme.relevance(triangle_graph, "a")
        assert 0 < sum(relevance.values()) <= 1.0 + 1e-9

    def test_matches_exact_rwr_at_tight_epsilon(self, triangle_graph):
        exact = RandomWalkWithResets(
            k=3, reset_probability=0.15, tolerance=1e-12
        )
        push = PushRandomWalk(k=3, reset_probability=0.15, epsilon=1e-10)
        for node in triangle_graph.nodes():
            exact_relevance = exact.relevance(triangle_graph, node)
            push_relevance = push.relevance(triangle_graph, node)
            for key in exact_relevance:
                assert push_relevance.get(key, 0.0) == pytest.approx(
                    exact_relevance[key], abs=1e-5
                )

    def test_signature_agrees_with_exact_on_dataset(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        hosts = tiny_enterprise.local_hosts[:15]
        exact = create_scheme("rwr", k=10, reset_probability=0.1).compute_all(
            graph, hosts
        )
        push = create_scheme("rwr-push", k=10, reset_probability=0.1, epsilon=1e-6)
        distances = [dist_jaccard(exact[h], push.compute(graph, h)) for h in hosts]
        assert sum(distances) / len(distances) < 0.05

    def test_coarse_epsilon_touches_fewer_nodes(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        host = tiny_enterprise.local_hosts[0]
        fine = PushRandomWalk(k=10, reset_probability=0.1, epsilon=1e-7)
        coarse = PushRandomWalk(k=10, reset_probability=0.1, epsilon=1e-3)
        assert coarse.touched_size(graph, host) < fine.touched_size(graph, host)
        assert coarse.touched_size(graph, host) >= 1

    def test_unknown_node_and_empty_graph(self, triangle_graph):
        scheme = PushRandomWalk()
        assert scheme.relevance(triangle_graph, "zzz") == {}
        assert scheme.relevance(CommGraph(), "a") == {}

    def test_dangling_mass_returns_home(self):
        graph = CommGraph([("a", "b", 1.0)])
        scheme = PushRandomWalk(k=2, reset_probability=0.2, epsilon=1e-9)
        relevance = scheme.relevance(graph, "a")
        assert relevance["a"] > 0
        assert relevance["b"] > 0
        assert sum(relevance.values()) == pytest.approx(1.0, abs=1e-6)

    def test_max_pushes_caps_work(self, tiny_enterprise):
        graph = tiny_enterprise.graphs[0]
        host = tiny_enterprise.local_hosts[0]
        capped = PushRandomWalk(
            k=10, reset_probability=0.1, epsilon=1e-9, max_pushes=5
        )
        # Must terminate quickly and still return something.
        relevance = capped.relevance(graph, host)
        assert relevance
        assert sum(relevance.values()) < 1.0


class TestSymmetrization:
    def test_bipartite_auto_symmetrized(self, small_bipartite):
        scheme = PushRandomWalk(k=5, reset_probability=0.1, epsilon=1e-8)
        signature = scheme.compute(small_bipartite, "u1")
        # Multi-hop reach through the shared destination.
        assert "d-private2" in signature
        assert signature.nodes <= set(small_bipartite.right_nodes)

    def test_directed_when_disabled(self, small_bipartite):
        scheme = PushRandomWalk(
            k=5, reset_probability=0.1, epsilon=1e-8, symmetrize=False
        )
        signature = scheme.compute(small_bipartite, "u1")
        assert signature.nodes <= {"d-shared", "d-private1"}

    def test_forced_on_plain_graph(self):
        graph = CommGraph([("a", "b", 1.0)])
        scheme = PushRandomWalk(
            k=2, reset_probability=0.1, epsilon=1e-8, symmetrize=True
        )
        relevance = scheme.relevance(graph, "b")
        assert relevance.get("a", 0.0) > 0
