"""Unit tests for persistence/uniqueness/robustness measurement."""

import pytest

from repro.core.distances import dist_jaccard
from repro.core.properties import (
    PropertyEllipse,
    persistence,
    persistence_values,
    property_ellipse,
    robustness,
    uniqueness,
    uniqueness_values,
)
from repro.core.signature import Signature
from repro.exceptions import ExperimentError


def sig(owner, *members):
    return Signature(owner, {member: 1.0 for member in members})


class TestScalarMeasures:
    def test_persistence_of_identical_signatures(self):
        assert persistence(sig("v", "a", "b"), sig("v", "a", "b"), dist_jaccard) == 1.0

    def test_persistence_of_disjoint_signatures(self):
        assert persistence(sig("v", "a"), sig("v", "b"), dist_jaccard) == 0.0

    def test_uniqueness_is_raw_distance(self):
        value = uniqueness(sig("v", "a", "b"), sig("u", "b", "c"), dist_jaccard)
        assert value == pytest.approx(1 - 1 / 3)

    def test_robustness_complementary_to_distance(self):
        original = sig("v", "a", "b")
        perturbed = sig("v", "a", "c")
        assert robustness(original, perturbed, dist_jaccard) == pytest.approx(1 / 3)


class TestPersistenceValues:
    def test_defaults_to_common_nodes(self):
        now = {"v": sig("v", "a"), "u": sig("u", "b")}
        later = {"v": sig("v", "a")}
        values = persistence_values(now, later, dist_jaccard)
        assert set(values) == {"v"}
        assert values["v"] == 1.0

    def test_missing_node_raises(self):
        now = {"v": sig("v", "a")}
        later = {}
        with pytest.raises(ExperimentError):
            persistence_values(now, later, dist_jaccard, nodes=["v"])


class TestUniquenessValues:
    def test_all_pairs_count(self):
        signatures = {name: sig(name, f"x-{name}") for name in "abcd"}
        values = uniqueness_values(signatures, dist_jaccard)
        assert len(values) == 6  # C(4, 2)
        assert all(value == 1.0 for value in values)

    def test_single_node_gives_empty(self):
        assert uniqueness_values({"v": sig("v", "a")}, dist_jaccard) == []

    def test_max_pairs_sampling_deterministic(self):
        signatures = {f"n{i}": sig(f"n{i}", "shared", f"own{i}") for i in range(20)}
        first = uniqueness_values(signatures, dist_jaccard, max_pairs=30, seed=1)
        second = uniqueness_values(signatures, dist_jaccard, max_pairs=30, seed=1)
        assert first == second
        assert len(first) == 30

    def test_max_pairs_above_total_enumerates_all(self):
        signatures = {name: sig(name, "x") for name in "abc"}
        values = uniqueness_values(signatures, dist_jaccard, max_pairs=100)
        assert len(values) == 3


class TestPropertyEllipse:
    def test_ellipse_statistics(self):
        now = {
            "v": sig("v", "a", "b"),
            "u": sig("u", "c", "d"),
        }
        later = {
            "v": sig("v", "a", "b"),  # persistence 1
            "u": sig("u", "c", "x"),  # persistence 1/3
        }
        ellipse = property_ellipse(
            now, later, dist_jaccard, scheme_name="test", distance_name="Dist_Jac"
        )
        assert isinstance(ellipse, PropertyEllipse)
        assert ellipse.num_nodes == 2
        assert ellipse.num_pairs == 1
        assert ellipse.mean_persistence == pytest.approx((1 + 1 / 3) / 2)
        assert ellipse.mean_uniqueness == 1.0  # disjoint signatures
        assert ellipse.std_uniqueness == 0.0
        assert ellipse.scheme == "test"

    def test_ellipse_as_dict(self):
        now = {"v": sig("v", "a")}
        later = {"v": sig("v", "a")}
        ellipse = property_ellipse(now, later, dist_jaccard)
        exported = ellipse.as_dict()
        assert exported["mean_persistence"] == 1.0
        assert exported["num_pairs"] == 0

    def test_empty_population(self):
        ellipse = property_ellipse({}, {}, dist_jaccard)
        assert ellipse.num_nodes == 0
        assert ellipse.mean_persistence == 0.0
