"""Unit tests for the Communities-of-Interest history builder."""

import pytest

from repro.core.history import HistorySignatureBuilder
from repro.core.scheme import create_scheme
from repro.exceptions import SchemeError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.comm_graph import CommGraph


@pytest.fixture
def builder():
    return HistorySignatureBuilder(create_scheme("tt", k=5), decay=0.5)


class TestParameters:
    @pytest.mark.parametrize("decay", [0.0, -0.5, 1.5])
    def test_invalid_decay(self, decay):
        with pytest.raises(SchemeError):
            HistorySignatureBuilder(create_scheme("tt"), decay=decay)

    def test_invalid_prune(self):
        with pytest.raises(SchemeError):
            HistorySignatureBuilder(create_scheme("tt"), prune_below=-1.0)

    def test_aggregate_before_push_rejected(self, builder):
        with pytest.raises(SchemeError):
            _ = builder.aggregate


class TestAggregation:
    def test_single_window_is_identity(self, builder, triangle_graph):
        builder.push(triangle_graph)
        assert builder.aggregate == triangle_graph
        assert builder.windows_seen == 1

    def test_decay_halves_old_weights(self, builder):
        builder.push(CommGraph([("a", "b", 4.0)]))
        builder.push(CommGraph([("a", "c", 2.0)]))
        assert builder.aggregate.weight("a", "b") == pytest.approx(2.0)
        assert builder.aggregate.weight("a", "c") == pytest.approx(2.0)

    def test_repeated_edge_accumulates(self, builder):
        builder.push(CommGraph([("a", "b", 4.0)]))
        builder.push(CommGraph([("a", "b", 4.0)]))
        assert builder.aggregate.weight("a", "b") == pytest.approx(6.0)

    def test_matches_batch_combiner(self, triangle_graph):
        """Incremental maintenance equals the batch combine_with_decay."""
        from repro.graph.builders import combine_with_decay

        windows = [
            triangle_graph,
            CommGraph([("a", "b", 1.0), ("c", "b", 2.0)]),
            CommGraph([("b", "a", 3.0)]),
        ]
        builder = HistorySignatureBuilder(create_scheme("tt", k=5), decay=0.7)
        for window in windows:
            builder.push(window)
        batch = combine_with_decay(windows, decay=0.7)
        for src, dst, weight in batch.edges():
            assert builder.aggregate.weight(src, dst) == pytest.approx(weight)

    def test_pruning_bounds_memory(self):
        builder = HistorySignatureBuilder(
            create_scheme("tt", k=5), decay=0.1, prune_below=0.05
        )
        builder.push(CommGraph([("a", "old", 1.0)]))
        for _ in range(3):
            builder.push(CommGraph([("a", "new", 1.0)]))
        # 1.0 * 0.1^3 = 0.001 < 0.05: the stale edge is gone.
        assert not builder.aggregate.has_edge("a", "old")
        assert builder.aggregate.has_edge("a", "new")

    def test_bipartite_preserved(self, small_bipartite):
        builder = HistorySignatureBuilder(create_scheme("tt", k=5))
        builder.push(small_bipartite)
        builder.push(small_bipartite)
        assert isinstance(builder.aggregate, BipartiteGraph)
        assert builder.aggregate.side("u1") == "left"

    def test_mixed_windows_degrade_to_plain_graph(self, small_bipartite, triangle_graph):
        builder = HistorySignatureBuilder(create_scheme("tt", k=5))
        builder.push(small_bipartite)
        builder.push(triangle_graph)
        assert not isinstance(builder.aggregate, BipartiteGraph)


class TestSignatures:
    def test_signature_reflects_history(self, builder):
        builder.push(CommGraph([("a", "old-favourite", 10.0)]))
        builder.push(CommGraph([("a", "new-contact", 1.0)]))
        signature = builder.signature("a")
        # Decayed old favourite (5.0) still outweighs the new contact (1.0).
        assert signature.entries[0][0] == "old-favourite"
        assert "new-contact" in signature

    def test_batched_signatures(self, builder, triangle_graph):
        builder.push(triangle_graph)
        signatures = builder.signatures(["a", "b"])
        assert set(signatures) == {"a", "b"}

    def test_history_smooths_churn(self, tiny_enterprise):
        """COI's point: decayed history raises persistence over single
        windows (same claim as the decay ablation bench, unit-scale)."""
        from repro.core.distances import dist_scaled_hellinger

        scheme = create_scheme("tt", k=10)
        hosts = tiny_enterprise.local_hosts
        graphs = list(tiny_enterprise.graphs)

        plain_now = scheme.compute_all(graphs[1], hosts)
        plain_next = scheme.compute_all(graphs[2], hosts)
        plain = sum(
            1 - dist_scaled_hellinger(plain_now[h], plain_next[h]) for h in hosts
        ) / len(hosts)

        builder = HistorySignatureBuilder(scheme, decay=0.5)
        builder.push(graphs[0])
        builder.push(graphs[1])
        history_now = builder.signatures(hosts)
        builder.push(graphs[2])
        history_next = builder.signatures(hosts)
        smoothed = sum(
            1 - dist_scaled_hellinger(history_now[h], history_next[h]) for h in hosts
        ) / len(hosts)
        assert smoothed > plain
