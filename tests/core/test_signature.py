"""Unit tests for the Signature object (Definition 1)."""

import pytest

from repro.core.signature import Signature
from repro.exceptions import SchemeError


class TestConstruction:
    def test_empty_signature(self):
        signature = Signature("v")
        assert len(signature) == 0
        assert signature.owner == "v"
        assert signature.nodes == frozenset()

    def test_entries_sorted_by_weight_desc(self):
        signature = Signature("v", {"a": 1.0, "b": 3.0, "c": 2.0})
        assert [node for node, _weight in signature.entries] == ["b", "c", "a"]

    def test_tie_break_by_node_string(self):
        signature = Signature("v", {"zeta": 1.0, "alpha": 1.0})
        assert [node for node, _weight in signature.entries] == ["alpha", "zeta"]

    def test_self_membership_rejected(self):
        with pytest.raises(SchemeError):
            Signature("v", {"v": 1.0})

    @pytest.mark.parametrize("weight", [0.0, -0.5])
    def test_nonpositive_weights_rejected(self, weight):
        with pytest.raises(SchemeError):
            Signature("v", {"a": weight})


class TestFromRelevance:
    def test_top_k_selection(self):
        relevance = {"a": 5.0, "b": 4.0, "c": 3.0, "d": 2.0}
        signature = Signature.from_relevance("v", relevance, k=2)
        assert signature.nodes == {"a", "b"}

    def test_excludes_owner_and_nonpositive(self):
        relevance = {"v": 100.0, "a": 1.0, "b": 0.0, "c": -2.0}
        signature = Signature.from_relevance("v", relevance, k=10)
        assert signature.nodes == {"a"}

    def test_shorter_than_k_when_few_candidates(self):
        signature = Signature.from_relevance("v", {"a": 1.0}, k=5)
        assert len(signature) == 1

    def test_deterministic_ties_at_cut(self):
        relevance = {"b": 1.0, "a": 1.0, "c": 1.0}
        signature = Signature.from_relevance("v", relevance, k=2)
        assert signature.nodes == {"a", "b"}

    def test_invalid_k(self):
        with pytest.raises(SchemeError):
            Signature.from_relevance("v", {"a": 1.0}, k=0)


class TestViews:
    def test_weight_lookup(self):
        signature = Signature("v", {"a": 2.0})
        assert signature.weight("a") == 2.0
        assert signature.weight("missing") == 0.0

    def test_contains_and_iter(self):
        signature = Signature("v", {"a": 2.0, "b": 1.0})
        assert "a" in signature
        assert "x" not in signature
        assert dict(iter(signature)) == {"a": 2.0, "b": 1.0}

    def test_as_dict_is_copy(self):
        signature = Signature("v", {"a": 2.0})
        exported = signature.as_dict()
        exported["a"] = 99.0
        assert signature.weight("a") == 2.0

    def test_normalized(self):
        signature = Signature("v", {"a": 3.0, "b": 1.0})
        normalized = signature.normalized()
        assert normalized.weight("a") == pytest.approx(0.75)
        assert sum(weight for _node, weight in normalized) == pytest.approx(1.0)

    def test_normalized_empty(self):
        assert len(Signature("v").normalized()) == 0

    def test_truncated(self):
        signature = Signature("v", {"a": 3.0, "b": 2.0, "c": 1.0})
        truncated = signature.truncated(2)
        assert truncated.nodes == {"a", "b"}
        with pytest.raises(SchemeError):
            signature.truncated(0)


class TestEqualityAndHash:
    def test_equality(self):
        first = Signature("v", {"a": 1.0, "b": 2.0})
        second = Signature("v", {"b": 2.0, "a": 1.0})
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_different_owner(self):
        assert Signature("v", {"a": 1.0}) != Signature("u", {"a": 1.0})

    def test_inequality_different_weights(self):
        assert Signature("v", {"a": 1.0}) != Signature("v", {"a": 2.0})

    def test_not_equal_to_other_types(self):
        assert Signature("v") != "v"

    def test_usable_in_sets(self):
        signatures = {Signature("v", {"a": 1.0}), Signature("v", {"a": 1.0})}
        assert len(signatures) == 1

    def test_repr_preview(self):
        signature = Signature("v", {f"n{i}": float(i + 1) for i in range(6)})
        text = repr(signature)
        assert "owner='v'" in text
        assert "..." in text  # more than four entries elided


class TestTotalWeightMemoization:
    def test_total_weight_matches_fsum(self):
        import math

        weights = {f"n{i}": 0.1 for i in range(10)}
        signature = Signature("v", weights)
        assert signature.total_weight == math.fsum(weights.values())

    def test_total_weight_empty(self):
        assert Signature("v", {}).total_weight == 0.0

    def test_signature_is_immutable(self):
        signature = Signature("v", {"a": 1.0, "b": 2.0})
        with pytest.raises(AttributeError):
            signature.owner = "u"  # type: ignore[misc]
        with pytest.raises(AttributeError):
            signature.extra = 1  # type: ignore[attr-defined]
        mutated = signature.as_dict()
        mutated["a"] = 9.0
        assert signature.weight("a") == 1.0
        assert signature.total_weight == 3.0

    def test_memoized_total_consistent_with_entries(self):
        signature = Signature("v", {"a": 1.5, "b": 2.5, "c": 0.25})
        assert signature.total_weight == sum(w for _, w in signature.entries)

    def test_source_dict_mutation_does_not_leak(self):
        weights = {"a": 1.0}
        signature = Signature("v", weights)
        weights["a"] = 100.0
        weights["b"] = 5.0
        assert signature.total_weight == 1.0
        assert signature.nodes == {"a"}
