"""Adversarial scalar-vs-batch agreement fixtures (clamp-masking audit).

Clamping to [0, 1] can silently mask kernel bugs: a numerator overflowing
to ``inf`` drives ``1 - num/den`` to ``-inf``, which a bare clamp reports
as a perfectly confident 0.0.  These fixtures push both distance paths
through the inputs where that happened (float extremes, duplicate
entries, empty rows) and assert (a) the two paths agree, (b) the
``distance.out_of_range`` counters stay at zero on correct kernels and
fire when a result really escapes [0, 1].
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.core.distances import (
    OUT_OF_RANGE_TOL,
    _clamp01,
    available_distances,
    dist_scaled_hellinger,
    get_distance,
)
from repro.core.packed import (
    SignaturePack,
    _finish,
    cross_matrix,
    pair_distances,
    pairwise_matrix,
)
from repro.core.signature import Signature

DISTANCES = available_distances()

#: Signatures that historically broke one path but not the other.
ADVERSARIAL_WINDOW = [
    Signature("huge_a", {"x": 1e300, "y": 1e300}),
    Signature("huge_b", {"x": 1e300, "z": 1e300}),
    Signature("tiny_a", {"x": 1e-300, "y": 1e-300}),
    Signature("tiny_b", {"x": 1e-300, "z": 1e-300}),
    Signature("mixed", {"x": 1e300, "y": 1e-300}),
    Signature("empty", {}),
    Signature("plain", {"x": 2.0, "y": 3.0}),
]


def scalar_matrix(signatures, metric):
    function = get_distance(metric)
    return np.array(
        [[function(a, b) for b in signatures] for a in signatures]
    )


class TestScalarBatchAgreementAdversarial:
    @pytest.mark.parametrize("metric", DISTANCES)
    def test_extreme_window_agrees(self, metric):
        pack = SignaturePack.from_signatures(ADVERSARIAL_WINDOW)
        batch = pairwise_matrix(pack, metric)
        scalar = scalar_matrix(ADVERSARIAL_WINDOW, metric)
        assert np.all(np.isfinite(batch))
        assert np.all((batch >= 0.0) & (batch <= 1.0))
        assert batch == pytest.approx(scalar, abs=1e-9)

    @pytest.mark.parametrize("metric", DISTANCES)
    def test_cross_and_pair_kernels_agree(self, metric):
        pack = SignaturePack.from_signatures(ADVERSARIAL_WINDOW)
        full = cross_matrix(pack, pack, metric)
        n = len(ADVERSARIAL_WINDOW)
        rows_i, rows_j = np.triu_indices(n)
        pairs = pair_distances(pack, rows_i, rows_j, metric)
        assert pairs == pytest.approx(full[rows_i, rows_j], abs=1e-9)

    @pytest.mark.parametrize("metric", DISTANCES)
    def test_duplicate_owners_and_duplicate_weights(self, metric):
        # Duplicate owners are distinct rows; tied weights exercise the
        # threshold decomposition's equal-rank branches.
        window = [
            Signature("dup", {"a": 5.0, "b": 5.0}),
            Signature("dup", {"a": 5.0, "b": 5.0}),
            Signature("dup", {"a": 5.0, "c": 5.0}),
        ]
        pack = SignaturePack.from_signatures(window)
        assert pack.owners == ("dup", "dup", "dup")
        batch = pairwise_matrix(pack, metric)
        scalar = scalar_matrix(window, metric)
        assert batch == pytest.approx(scalar, abs=1e-12)
        assert batch[0, 1] == 0.0  # identical rows

    def test_no_out_of_range_on_correct_kernels(self):
        registry = obs.MetricsRegistry()
        pack = SignaturePack.from_signatures(ADVERSARIAL_WINDOW)
        with obs.use_registry(registry):
            for metric in DISTANCES:
                pairwise_matrix(pack, metric)
                scalar_matrix(ADVERSARIAL_WINDOW, metric)
        assert registry.counter_total("distance.out_of_range") == 0


class TestSHelFloatExtremeRegression:
    """``sqrt(a * b)`` vs ``sqrt(a) * sqrt(b)``: the scalar SHel bug.

    Pre-fix, the product overflowed to ``inf`` for weights ~1e155+ (the
    clamp then masked the ``-inf`` distance as 0.0 for *any* overlap) and
    underflowed to 0 below ~1e-162 (reporting distance 1.0 for identical
    signatures).  Both assertions fail on the pre-fix code.
    """

    def test_identical_tiny_signatures_have_zero_distance(self):
        tiny_p = Signature("p", {"x": 1e-300, "y": 1e-300})
        tiny_q = Signature("q", {"x": 1e-300, "y": 1e-300})
        assert dist_scaled_hellinger(tiny_p, tiny_q) == pytest.approx(0.0, abs=1e-12)

    def test_huge_partial_overlap_not_masked_to_zero(self):
        huge_a = Signature("a", {"x": 1e300, "y": 1e300})
        huge_b = Signature("b", {"x": 1e300, "z": 1e300})
        # num = 1e300, min-mass = 1e300, total = 4e300 -> 1 - 1/3 = 2/3.
        assert dist_scaled_hellinger(huge_a, huge_b) == pytest.approx(2.0 / 3.0)

    def test_scalar_matches_batch_at_extremes(self):
        for scale in (1e-300, 1e-160, 1e155, 1e300):
            window = [
                Signature("a", {"x": scale, "y": scale}),
                Signature("b", {"x": scale, "z": scale}),
            ]
            pack = SignaturePack.from_signatures(window)
            batch = float(cross_matrix(pack, pack, "shel")[0, 1])
            scalar = dist_scaled_hellinger(window[0], window[1])
            assert math.isfinite(scalar)
            assert scalar == pytest.approx(batch, abs=1e-9), scale


class TestOutOfRangeCounters:
    """The clamp guards themselves: round-off is silent, real bugs count."""

    def test_scalar_clamp_counts_real_excursions(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            assert _clamp01(-0.5) == 0.0
            assert _clamp01(1.5) == 1.0
        assert registry.counter_value("distance.out_of_range", path="scalar") == 2

    def test_scalar_clamp_silent_within_tolerance(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            assert _clamp01(-OUT_OF_RANGE_TOL / 2) == 0.0
            assert _clamp01(1.0 + OUT_OF_RANGE_TOL / 2) == 1.0
            assert _clamp01(0.25) == 0.25
        assert registry.counter_total("distance.out_of_range") == 0

    def test_batch_finish_counts_real_excursions(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            # num/den = 2 -> distance -1: one real excursion, clamped to 0.
            out = _finish(np.array([2.0, 0.5]), np.array([1.0, 1.0]))
        assert out == pytest.approx([0.0, 0.5])
        assert registry.counter_value("distance.out_of_range", path="batch") == 1

    def test_batch_finish_silent_on_roundoff(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            out = _finish(
                np.array([1.0 + OUT_OF_RANGE_TOL / 10]), np.array([1.0])
            )
        assert out == pytest.approx([0.0])
        assert registry.counter_total("distance.out_of_range") == 0

    def test_counting_disabled_registry_costs_nothing(self):
        # Under the null registry the counters simply vanish.
        out = _finish(np.array([2.0]), np.array([1.0]))
        assert out == pytest.approx([0.0])
        assert obs.NULL_REGISTRY.counter_total("distance.out_of_range") == 0
