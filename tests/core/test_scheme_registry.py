"""Unit tests for the scheme ABC and registry."""

import pytest

from repro.core.scheme import (
    SignatureScheme,
    available_schemes,
    create_scheme,
    register_scheme,
)
from repro.core.signature import Signature
from repro.exceptions import SchemeError, UnknownSchemeError
from repro.graph.comm_graph import CommGraph


class TestRegistry:
    def test_builtins_registered(self):
        names = available_schemes()
        assert {"tt", "ut", "rwr"} <= set(names)
        assert list(names) == sorted(names)

    def test_create_scheme_with_params(self):
        scheme = create_scheme("rwr", k=4, reset_probability=0.2, max_hops=2)
        assert scheme.k == 4
        assert scheme.reset_probability == 0.2

    def test_unknown_scheme(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            create_scheme("pagerank")
        assert "tt" in str(excinfo.value)

    def test_register_requires_name(self):
        class Nameless(SignatureScheme):
            def relevance(self, graph, node):
                return {}

        with pytest.raises(SchemeError):
            register_scheme(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Imposter(SignatureScheme):
            name = "tt"

            def relevance(self, graph, node):
                return {}

        with pytest.raises(SchemeError):
            register_scheme(Imposter)

    def test_invalid_k_rejected(self):
        with pytest.raises(SchemeError):
            create_scheme("tt", k=0)


class TestBaseBehaviour:
    def test_compute_applies_topk_and_self_exclusion(self, triangle_graph):
        class Constant(SignatureScheme):
            name = "constant-test"

            def relevance(self, graph, node):
                return {other: 1.0 for other in graph.nodes()}

        scheme = Constant(k=2)
        signature = scheme.compute(triangle_graph, "a")
        assert "a" not in signature
        assert len(signature) == 2

    def test_compute_all_defaults_to_all_nodes(self, triangle_graph):
        scheme = create_scheme("tt", k=2)
        batch = scheme.compute_all(triangle_graph)
        assert set(batch) == set(triangle_graph.nodes())
        assert all(isinstance(sig, Signature) for sig in batch.values())

    def test_repr_contains_describe(self):
        scheme = create_scheme("tt", k=3)
        assert "tt(k=3)" in repr(scheme)

    def test_bipartite_restriction_ignores_plain_graphs(self, triangle_graph):
        # On a non-bipartite graph the restriction hook is a no-op.
        vector = {"b": 1.0, "c": 2.0}
        restricted = SignatureScheme._restrict_bipartite(triangle_graph, "a", vector)
        assert restricted == vector

    def test_bipartite_restriction_right_node_unrestricted(self, small_bipartite):
        vector = {"u1": 1.0, "d-shared": 2.0}
        restricted = SignatureScheme._restrict_bipartite(
            small_bipartite, "d-shared", vector
        )
        assert restricted == vector

    def test_bipartite_restriction_left_node_filtered(self, small_bipartite):
        vector = {"u2": 1.0, "d-shared": 2.0}
        restricted = SignatureScheme._restrict_bipartite(small_bipartite, "u1", vector)
        assert restricted == {"d-shared": 2.0}
