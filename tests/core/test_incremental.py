"""Incremental ``compute_all`` — the byte-identity contract.

``compute_all(graph, delta=..., previous=...)`` must return exactly what a
full recompute on ``graph`` returns, for every built-in scheme, under
arbitrary sliding deltas: edge adds, expiries, reweights, node churn, and
bipartite restriction.  Dirty sets are conservative over-approximations;
schemes that cannot bound the affected owners fall back to a full
recompute by returning ``None`` — which is correct, just not fast.
"""

import random

import pytest

from repro import obs
from repro.core.scheme import create_scheme
from repro.graph.bipartite import BipartiteGraph
from repro.graph.delta import WindowDelta
from repro.graph.stream import EdgeRecord
from repro.graph.windows import GraphSequence

# Every built-in scheme, including the dirty-set fallback cases (ut with
# tfidf scaling reads |V|, so node churn forces a full recompute).
SCHEME_CONFIGS = [
    ("tt", {}),
    ("ut", {"scaling": "inverse"}),
    ("ut", {"scaling": "sqrt"}),
    ("ut", {"scaling": "tfidf"}),
    ("it", {}),
    ("rwr", {"max_hops": 3}),
    ("rwr", {"max_hops": 2}),
    ("rwr", {}),  # unbounded: dirty_nodes must decline (None)
    ("rwr-push", {}),
]


def churny_trace(seed, num_windows=5, nodes=14, per_window=28, bipartite=False):
    rng = random.Random(seed)
    if bipartite:
        left = [f"u{i}" for i in range(nodes // 2)]
        right = [f"t{i}" for i in range(nodes)]
    names = [f"n{i}" for i in range(nodes)]
    records = []
    for window in range(num_windows):
        active = rng.sample(names, rng.randint(nodes // 2, nodes))
        for _ in range(per_window):
            if bipartite:
                src, dst = rng.choice(left), rng.choice(right)
            else:
                src, dst = rng.sample(active, 2)
            weight = 0.0 if rng.random() < 0.08 else rng.uniform(0.1, 4.0)
            records.append(
                EdgeRecord(
                    time=window + rng.random() * 0.9, src=src, dst=dst, weight=weight
                )
            )
    records.sort()
    return records


class TestIncrementalEqualsFull:
    @pytest.mark.parametrize("name,params", SCHEME_CONFIGS)
    @pytest.mark.parametrize("seed", [5, 17])
    def test_sliding_sequence(self, name, params, seed):
        scheme = create_scheme(name, k=5, **params)
        sequence = GraphSequence.from_sliding_records(
            churny_trace(seed), num_windows=5, bipartite=False
        )
        previous = scheme.compute_all(sequence[0])
        for t in range(1, len(sequence)):
            full = scheme.compute_all(sequence[t])
            incremental = scheme.compute_all(
                sequence[t], delta=sequence.deltas[t - 1], previous=previous
            )
            assert incremental == full
            previous = incremental

    @pytest.mark.parametrize("name,params", SCHEME_CONFIGS)
    def test_bipartite_sliding_sequence(self, name, params):
        scheme = create_scheme(name, k=4, **params)
        sequence = GraphSequence.from_sliding_records(
            churny_trace(23, bipartite=True), num_windows=5, bipartite=True
        )
        assert isinstance(sequence[0], BipartiteGraph)
        previous = scheme.compute_all(sequence[0])
        for t in range(1, len(sequence)):
            full = scheme.compute_all(sequence[t])
            incremental = scheme.compute_all(
                sequence[t], delta=sequence.deltas[t - 1], previous=previous
            )
            assert incremental == full
            previous = incremental

    @pytest.mark.parametrize("name,params", SCHEME_CONFIGS)
    def test_diffed_delta_on_restricted_population(self, name, params):
        # Deltas from WindowDelta.from_graphs (the experiments' producer),
        # with an explicit target population rather than the whole graph.
        scheme = create_scheme(name, k=5, **params)
        sequence = GraphSequence.from_sliding_records(
            churny_trace(41), num_windows=4
        )
        population = sequence.common_nodes()
        assert population
        previous = scheme.compute_all(sequence[0], population)
        for t in range(1, len(sequence)):
            delta = WindowDelta.from_graphs(sequence[t - 1], sequence[t])
            full = scheme.compute_all(sequence[t], population)
            incremental = scheme.compute_all(
                sequence[t], population, delta=delta, previous=previous
            )
            assert incremental == full
            previous = incremental

    def test_empty_delta_reuses_everything(self):
        scheme = create_scheme("tt", k=5)
        sequence = GraphSequence.from_sliding_records(churny_trace(3), num_windows=3)
        graph = sequence[1]
        previous = scheme.compute_all(graph)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            again = scheme.compute_all(
                graph, delta=WindowDelta(), previous=previous
            )
        assert again == previous
        assert registry.counter_value("incremental.dirty_nodes", scheme="tt") == 0
        assert registry.counter_value(
            "incremental.reused_signatures", scheme="tt"
        ) == len(previous)


class TestDirtySets:
    def test_tt_dirty_is_sources(self):
        scheme = create_scheme("tt", k=3)
        sequence = GraphSequence.from_sliding_records(churny_trace(9), num_windows=3)
        delta = sequence.deltas[0]
        dirty = scheme.dirty_nodes(sequence[1], delta)
        assert dirty is not None
        assert delta.sources() <= dirty

    def test_unbounded_rwr_declines(self):
        scheme = create_scheme("rwr")
        sequence = GraphSequence.from_sliding_records(churny_trace(9), num_windows=3)
        assert scheme.dirty_nodes(sequence[1], sequence.deltas[0]) is None

    def test_ut_tfidf_declines_on_node_churn(self):
        # tfidf scaling reads |V|; any node churn touches every owner.
        scheme = create_scheme("ut", scaling="tfidf")
        graph = BipartiteGraph([("u1", "t1", 1.0)])
        delta = WindowDelta(added_nodes=frozenset({"t9"}))
        assert scheme.dirty_nodes(graph, delta) is None

    def test_metrics_recorded(self):
        scheme = create_scheme("it", k=4)
        sequence = GraphSequence.from_sliding_records(churny_trace(13), num_windows=3)
        previous = scheme.compute_all(sequence[0])
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            scheme.compute_all(
                sequence[1], delta=sequence.deltas[0], previous=previous
            )
        flat = registry.counters_flat()
        assert "incremental.dirty_nodes{scheme=it}" in flat
        assert "incremental.reused_signatures{scheme=it}" in flat


class TestVersionedCache:
    def test_right_node_set_built_once_per_compute_all(self):
        graph = BipartiteGraph(
            [(f"u{i}", f"t{j}", 1.0) for i in range(6) for j in range(4)]
        )
        scheme = create_scheme("rwr", k=3, max_hops=2)
        scheme.compute_all(graph)
        info = graph.cache_info()["right_node_set"]
        assert info["misses"] == 1
        # Another compute_all on the unchanged graph only adds hits.
        scheme.compute_all(graph)
        info = graph.cache_info()["right_node_set"]
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_mutation_invalidates(self):
        graph = BipartiteGraph([("u1", "t1", 1.0), ("u2", "t2", 1.0)])
        first = graph.right_node_set()
        assert graph.right_node_set() is first  # cached
        graph.add_edge("u1", "t3", 1.0)
        second = graph.right_node_set()
        assert "t3" in second
        info = graph.cache_info()["right_node_set"]
        assert info["misses"] == 2

    def test_matrix_cache_counters_exported(self):
        graph = BipartiteGraph([("u1", "t1", 1.0), ("u2", "t1", 2.0)])
        scheme = create_scheme("rwr", k=3, max_hops=2)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            scheme.compute_all(graph)
            scheme.compute_all(graph)
        flat = registry.counters_flat()
        assert any(key.startswith("matrix_cache.misses") for key in flat)
        assert any(key.startswith("matrix_cache.hits") for key in flat)
