"""Tests for the packed (CSR) signature representation and batch kernels."""

import random

import numpy as np
import pytest

from repro.core import packed
from repro.core.distances import available_distances, get_distance
from repro.core.packed import (
    BATCH_METRICS,
    SignaturePack,
    batch_disabled,
    batch_metric_name,
    cross_matrix,
    cross_pair_distances,
    pair_distances,
    pairwise_matrix,
)
from repro.core.signature import Signature
from repro.exceptions import DistanceError


def random_signatures(rng, count, max_k, vocab_size, empty_fraction=0.1):
    """A randomized window: mixed float/integer weights, some empties."""
    members = [f"m{i}" for i in range(vocab_size)]
    signatures = {}
    for i in range(count):
        owner = f"v{i}"
        if rng.random() < empty_fraction:
            signatures[owner] = Signature(owner, {})
            continue
        chosen = rng.sample(members, rng.randint(1, max_k))
        signatures[owner] = Signature(
            owner,
            {
                member: rng.uniform(0.01, 10.0)
                if rng.random() < 0.7
                else float(rng.randint(1, 5))
                for member in chosen
            },
        )
    return signatures


class TestSignaturePack:
    def test_pack_from_mapping_preserves_order(self):
        signatures = {
            "b": Signature("b", {"x": 2.0}),
            "a": Signature("a", {"y": 1.0}),
        }
        pack = SignaturePack.from_signatures(signatures)
        assert pack.owners == ("b", "a")
        assert len(pack) == 2

    def test_pack_order_selects_and_reorders(self):
        signatures = {
            "a": Signature("a", {"x": 1.0}),
            "b": Signature("b", {"y": 2.0}),
            "c": Signature("c", {"z": 3.0}),
        }
        pack = SignaturePack.from_signatures(signatures, order=["c", "a"])
        assert pack.owners == ("c", "a")
        assert pack.signatures == (signatures["c"], signatures["a"])

    def test_pack_missing_node_raises(self):
        with pytest.raises(DistanceError):
            SignaturePack.from_signatures({}, order=["ghost"])

    def test_pack_from_iterable(self):
        signatures = [Signature("a", {"x": 1.0}), Signature("b", {"x": 2.0, "y": 1.0})]
        pack = SignaturePack.from_signatures(signatures)
        assert pack.owners == ("a", "b")
        assert pack.matrix.shape == (2, 2)
        assert pack.totals == pytest.approx([1.0, 3.0])
        assert pack.sizes == pytest.approx([1.0, 2.0])

    def test_empty_pack(self):
        pack = SignaturePack.from_signatures({})
        assert len(pack) == 0
        assert pairwise_matrix(pack, "jaccard").shape == (0, 0)

    def test_all_empty_signatures(self):
        pack = SignaturePack.from_signatures(
            [Signature("a", {}), Signature("b", {})]
        )
        matrix = pairwise_matrix(pack, "sdice")
        assert np.array_equal(matrix, np.zeros((2, 2)))


class TestPackBuffers:
    """The zero-copy export/import contract behind the shm engine."""

    def roundtrip(self, pack):
        buffers = pack.to_buffers()
        return SignaturePack.from_buffers(**buffers)

    def test_roundtrip_is_exact(self):
        rng = random.Random(5)
        pack = SignaturePack.from_signatures(random_signatures(rng, 40, 8, 60))
        clone = self.roundtrip(pack)
        assert clone.owners == pack.owners
        assert clone.node_table == pack.node_table
        assert clone.signatures == pack.signatures
        assert np.array_equal(clone.matrix.toarray(), pack.matrix.toarray())
        assert np.array_equal(clone.totals, pack.totals)
        assert np.array_equal(clone.sizes, pack.sizes)

    def test_roundtrip_preserves_column_order(self):
        # from_buffers must wrap the CSR arrays as-is, not canonicalize:
        # the batch kernels and the byte-identity contract both rely on
        # the original insertion order surviving the trip.
        pack = SignaturePack.from_signatures(
            [Signature("a", {"z": 1.0, "y": 2.0, "x": 3.0})]
        )
        clone = self.roundtrip(pack)
        assert np.array_equal(clone.matrix.indices, pack.matrix.indices)
        assert np.array_equal(clone.matrix.data, pack.matrix.data)

    def test_roundtrip_empty_pack(self):
        clone = self.roundtrip(SignaturePack.from_signatures({}))
        assert len(clone) == 0
        assert clone.owners == ()

    def test_roundtrip_distances_agree(self):
        rng = random.Random(6)
        pack_a = SignaturePack.from_signatures(random_signatures(rng, 30, 6, 40))
        pack_b = SignaturePack.from_signatures(
            random_signatures(rng, 30, 6, 40), order=pack_a.owners
        )
        clone_a, clone_b = self.roundtrip(pack_a), self.roundtrip(pack_b)
        for metric in available_distances():
            assert np.array_equal(
                cross_matrix(pack_a, pack_b, metric),
                cross_matrix(clone_a, clone_b, metric),
            )

    def test_shape_mismatch_rejected(self):
        pack = SignaturePack.from_signatures([Signature("a", {"x": 1.0})])
        buffers = pack.to_buffers()
        buffers["owners"] = ["a", "b"]
        with pytest.raises(DistanceError):
            SignaturePack.from_buffers(**buffers)

    def test_nbytes_counts_numeric_payload(self):
        pack = SignaturePack.from_signatures(
            [Signature("a", {"x": 1.0, "y": 2.0}), Signature("b", {"x": 3.0})]
        )
        expected = (
            pack.matrix.data.nbytes
            + pack.matrix.indices.nbytes
            + pack.matrix.indptr.nbytes
            + pack.totals.nbytes
            + pack.sizes.nbytes
        )
        assert pack.nbytes == expected
        assert pack.nbytes > 0


@pytest.mark.parametrize("metric", available_distances())
class TestBatchScalarAgreement:
    """Property-style agreement: batch kernels vs. scalar loops, <= 1e-9."""

    def scalar_reference(self, signatures_a, signatures_b, metric):
        function = get_distance(metric)
        return np.array(
            [[function(a, b) for b in signatures_b] for a in signatures_a]
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pairwise_matrix_agrees(self, metric, seed):
        rng = random.Random(seed)
        signatures = random_signatures(rng, 40, 8, 30)
        pack = SignaturePack.from_signatures(signatures)
        batch = pairwise_matrix(pack, metric)
        scalar = self.scalar_reference(pack.signatures, pack.signatures, metric)
        assert np.abs(batch - scalar).max() <= 1e-9

    @pytest.mark.parametrize("seed", [3, 4])
    def test_cross_matrix_aligns_different_vocabularies(self, metric, seed):
        rng = random.Random(seed)
        pack_a = SignaturePack.from_signatures(random_signatures(rng, 25, 6, 20))
        pack_b = SignaturePack.from_signatures(random_signatures(rng, 30, 9, 45))
        batch = cross_matrix(pack_a, pack_b, metric)
        scalar = self.scalar_reference(pack_a.signatures, pack_b.signatures, metric)
        assert batch.shape == (25, 30)
        assert np.abs(batch - scalar).max() <= 1e-9

    def test_pair_distances_agree(self, metric):
        rng = random.Random(99)
        signatures = random_signatures(rng, 35, 7, 25)
        pack = SignaturePack.from_signatures(signatures)
        rows = [rng.randrange(35) for _ in range(300)]
        cols = [rng.randrange(35) for _ in range(300)]
        batch = pair_distances(pack, rows, cols, metric)
        function = get_distance(metric)
        scalar = np.array(
            [
                function(pack.signatures[i], pack.signatures[j])
                for i, j in zip(rows, cols)
            ]
        )
        assert np.abs(batch - scalar).max() <= 1e-9

    def test_cross_pair_distances_agree(self, metric):
        rng = random.Random(17)
        pack_a = SignaturePack.from_signatures(random_signatures(rng, 20, 5, 18))
        pack_b = SignaturePack.from_signatures(random_signatures(rng, 22, 6, 26))
        rows = [rng.randrange(20) for _ in range(150)]
        cols = [rng.randrange(22) for _ in range(150)]
        batch = cross_pair_distances(pack_a, pack_b, rows, cols, metric)
        function = get_distance(metric)
        scalar = np.array(
            [
                function(pack_a.signatures[i], pack_b.signatures[j])
                for i, j in zip(rows, cols)
            ]
        )
        assert np.abs(batch - scalar).max() <= 1e-9

    def test_exact_cases_bit_identical(self, metric):
        pack = SignaturePack.from_signatures(
            [
                Signature("e1", {}),
                Signature("e2", {}),
                Signature("d1", {"x": 1.5}),
                Signature("d2", {"y": 2.5}),
            ]
        )
        matrix = pairwise_matrix(pack, metric)
        assert matrix[0, 1] == 0.0  # empty vs empty
        assert matrix[0, 2] == 1.0  # empty vs non-empty
        assert matrix[2, 3] == 1.0  # disjoint supports


class TestDispatch:
    def test_batch_metric_name_for_registered(self):
        assert batch_metric_name("sdice") == "sdice"
        assert batch_metric_name(get_distance("shel")) == "shel"
        assert set(BATCH_METRICS) == set(available_distances())

    def test_unregistered_callable_falls_back_to_scalar(self):
        def half_jaccard(first, second):
            return 0.5 * get_distance("jaccard")(first, second)

        assert batch_metric_name(half_jaccard) is None
        rng = random.Random(5)
        pack = SignaturePack.from_signatures(random_signatures(rng, 12, 4, 10))
        matrix = pairwise_matrix(pack, half_jaccard)
        expected = np.array(
            [[half_jaccard(a, b) for b in pack.signatures] for a in pack.signatures]
        )
        # The fallback runs the callable itself: bit-identical, not approx.
        assert np.array_equal(matrix, expected)

    def test_batch_disabled_forces_scalar_path(self):
        rng = random.Random(6)
        pack = SignaturePack.from_signatures(random_signatures(rng, 15, 5, 12))
        with batch_disabled():
            assert batch_metric_name("jaccard") is None
            scalar = pairwise_matrix(pack, "jaccard")
        assert batch_metric_name("jaccard") == "jaccard"
        batch = pairwise_matrix(pack, "jaccard")
        # Jaccard is integer-ratio arithmetic on both paths: bit-identical.
        assert np.array_equal(scalar, batch)

    def test_pair_index_length_mismatch(self):
        pack = SignaturePack.from_signatures([Signature("a", {"x": 1.0})])
        with pytest.raises(DistanceError):
            pair_distances(pack, [0, 0], [0], "jaccard")

    def test_unknown_metric_name_raises(self):
        pack = SignaturePack.from_signatures([Signature("a", {"x": 1.0})])
        with pytest.raises(Exception):
            pairwise_matrix(pack, "euclid")


class TestThresholdExpansion:
    def test_min_mass_matches_bruteforce(self):
        rng = random.Random(11)
        pack = SignaturePack.from_signatures(random_signatures(rng, 20, 6, 15))
        minimum = packed._min_mass_matrix(pack.matrix, pack.matrix)
        dense = pack.matrix.toarray()
        expected = np.minimum(dense[:, None, :], dense[None, :, :]).sum(axis=-1)
        assert np.abs(minimum - expected).max() <= 1e-9

    def test_min_mass_cross_block(self):
        rng = random.Random(12)
        pack_a = SignaturePack.from_signatures(random_signatures(rng, 9, 5, 12))
        pack_b = SignaturePack.from_signatures(random_signatures(rng, 7, 5, 12))
        matrix_a, matrix_b = packed._aligned_matrices(pack_a, pack_b)
        minimum = packed._min_mass_matrix(matrix_a, matrix_b)
        dense_a, dense_b = matrix_a.toarray(), matrix_b.toarray()
        expected = np.minimum(dense_a[:, None, :], dense_b[None, :, :]).sum(axis=-1)
        assert np.abs(minimum - expected).max() <= 1e-9

    def test_duplicate_weights_in_column(self):
        pack = SignaturePack.from_signatures(
            [
                Signature("a", {"x": 2.0, "y": 1.0}),
                Signature("b", {"x": 2.0}),
                Signature("c", {"x": 2.0, "y": 3.0}),
            ]
        )
        minimum = packed._min_mass_matrix(pack.matrix, pack.matrix)
        dense = pack.matrix.toarray()
        expected = np.minimum(dense[:, None, :], dense[None, :, :]).sum(axis=-1)
        assert np.abs(minimum - expected).max() <= 1e-12
