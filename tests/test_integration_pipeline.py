"""End-to-end integration tests: the workflows a real deployment would run.

Each test exercises a complete pipeline across subsystem boundaries —
generation, CSV interchange, windowing, signature construction (exact and
streamed), detection and evaluation — asserting only externally observable
outcomes.
"""

import pytest

from repro import (
    AnomalyDetector,
    Deanonymizer,
    HistorySignatureBuilder,
    MasqueradeDetector,
    MultiusageDetector,
    SequenceMonitor,
    anonymize_graph,
    apply_masquerade,
    create_scheme,
    get_distance,
    masquerade_accuracy,
)
from repro.datasets.loaders import load_graph_sequence_csv, save_graph_sequence_csv
from repro.matching.lsh import ApproxSignatureIndex
from repro.streaming.stream_schemes import StreamingTopTalkers


class TestCsvRoundTripPipeline:
    def test_detection_identical_after_round_trip(self, tmp_path, tiny_enterprise):
        """Persisting windows to CSV and reloading must not change any
        downstream detection decision."""
        path = tmp_path / "trace.csv"
        save_graph_sequence_csv(tiny_enterprise.graphs, path)
        reloaded = load_graph_sequence_csv(path, bipartite=True)

        detector = MultiusageDetector(
            create_scheme("tt", k=10), get_distance("shel"), threshold=0.6
        )
        original = detector.detect(
            tiny_enterprise.graphs[0], population=tiny_enterprise.local_hosts
        )
        round_tripped = detector.detect(
            reloaded[0], population=tiny_enterprise.local_hosts
        )
        assert original.pairs == round_tripped.pairs


class TestStreamedDetectionPipeline:
    def test_streamed_signatures_feed_lsh_alias_search(self, tiny_enterprise):
        """One-pass sketches -> LSH index -> alias retrieval, never touching
        the exact schemes."""
        graph = tiny_enterprise.graphs[0]
        streaming = StreamingTopTalkers(k=10, epsilon=0.002)
        streaming.observe_stream(graph.edges())

        index = ApproxSignatureIndex(bands=64, rows_per_band=2)
        for host in tiny_enterprise.local_hosts:
            index.add(streaming.signature(host))

        positives = tiny_enterprise.positives_by_query()
        hits = 0
        for query, siblings in positives.items():
            results = index.query(streaming.signature(query), k=len(siblings))
            found = {owner for owner, _distance in results}
            hits += len(found & set(siblings))
        total = sum(len(siblings) for siblings in positives.values())
        assert hits / total > 0.5


class TestHistoryBackedMonitoring:
    def test_coi_signatures_drive_anomaly_detection(self, tiny_enterprise):
        """History-smoothed signatures are directly usable by detectors:
        compare decayed windows of a quiet host vs an injected breaker."""
        import numpy as np

        scheme = create_scheme("tt", k=10)
        shel = get_distance("shel")
        hosts = tiny_enterprise.local_hosts
        victim = hosts[1]

        builder = HistorySignatureBuilder(scheme, decay=0.5)
        builder.push(tiny_enterprise.graphs[0])
        builder.push(tiny_enterprise.graphs[1])
        before = builder.signatures(hosts)

        broken = tiny_enterprise.graphs[2].copy()
        rng = np.random.default_rng(0)
        for destination in list(broken.out_neighbors(victim)):
            broken.remove_edge(victim, destination)
        for index in range(25):
            broken.add_edge(victim, f"weird-{index}", float(rng.integers(1, 6)))
        builder.push(broken)
        after = builder.signatures(hosts)

        drops = {
            host: shel(before[host], after[host]) for host in hosts
        }
        assert max(drops, key=drops.get) == victim


class TestFullInvestigationScenario:
    def test_masquerade_then_deanonymize(self, tiny_enterprise):
        """A two-stage investigation: detect that labels switched hands,
        then re-identify a pseudonymised release from the same windows."""
        g0, g1 = tiny_enterprise.graphs[0], tiny_enterprise.graphs[1]
        hosts = tiny_enterprise.local_hosts
        shel = get_distance("shel")
        scheme = create_scheme("tt", k=10)

        masqueraded, plan = apply_masquerade(g1, fraction=0.15, candidates=hosts, seed=2)
        detector = MasqueradeDetector(scheme, shel, top_matches=3, threshold_scale=3)
        detection = detector.detect(g0, masqueraded, population=hosts)
        assert masquerade_accuracy(detection, plan) > 0.8

        release = anonymize_graph(masqueraded, hosts, seed=3)
        attack = Deanonymizer(scheme, shel).attack(g0, release)
        # The masqueraded labels confuse the attack, but the bulk of the
        # population is still re-identified.
        assert attack.accuracy > 0.5

    def test_monitor_then_drill_down(self, tiny_enterprise):
        """Sequence monitoring surfaces a transition; the pairwise anomaly
        detector then reproduces the same verdict on that window pair."""
        monitor = SequenceMonitor(
            create_scheme("rwr", k=10, reset_probability=0.1, max_hops=3),
            get_distance("shel"),
            threshold=0.05,
        )
        result = monitor.run(
            tiny_enterprise.graphs, population=tiny_enterprise.local_hosts
        )
        pair_detector = AnomalyDetector(
            monitor.scheme, monitor.distance, threshold=0.05
        )
        for index, report in enumerate(result.reports):
            drill = pair_detector.detect(
                tiny_enterprise.graphs[index],
                tiny_enterprise.graphs[index + 1],
                population=tiny_enterprise.local_hosts,
            )
            assert set(drill.flagged_nodes) == set(report.flagged_nodes)
