"""End-to-end integration of ``strategy="sketch"`` across every surface.

The memory-budgeted sketch tier must be reachable from the pipeline, the
experiment grid, the sharded service and the CLI — each wiring its budget
knob through to one :class:`~repro.streaming.tier.SketchTierEngine`.  The
contract under test is the tier's: deterministic for a fixed seed, exact
when the budget generously covers the population (every target lands in
the hot set), and approximate-but-complete when it does not.
"""

import random

import pytest

from repro.cli import main
from repro.exceptions import (
    CheckpointError,
    ExperimentError,
    PipelineError,
    ServiceError,
)
from repro.graph.stream import EdgeRecord
from repro.pipeline import (
    CheckpointStore,
    CsvRecordSource,
    PipelineConfig,
    SignaturePipeline,
)
from repro.service import ServiceConfig, SignatureService
from repro.streaming.tier import SketchTierEngine


@pytest.fixture()
def trace(tmp_path):
    rng = random.Random(13)
    rows = ["time,src,dst,weight"]
    for t in range(300):
        rows.append(
            f"{t},h{rng.randrange(15)},e{rng.randrange(40)},{rng.randrange(1, 6)}"
        )
    path = tmp_path / "trace.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def run_pipeline(trace, tmp_path, tag, **config_kwargs):
    config = PipelineConfig(k=5, window_length=100.0, **config_kwargs)
    pipeline = SignaturePipeline(
        CsvRecordSource(str(trace)),
        CheckpointStore(tmp_path / f"ckpt-{tag}"),
        config,
    )
    result = pipeline.run()
    return result, [
        {node: sig.entries for node, sig in sigs.items()}
        for sigs in result.signatures
    ]


class TestPipelineSketchStrategy:
    def test_generous_budget_matches_serial(self, trace, tmp_path):
        """With every source in the hot set the tier answers exactly."""
        _, serial = run_pipeline(trace, tmp_path, "serial")
        _, sketch = run_pipeline(
            trace, tmp_path, "sketch-big",
            strategy="sketch", sketch_budget_bytes=1 << 24,
        )
        assert sketch == serial

    def test_tight_budget_answers_full_population(self, trace, tmp_path):
        _, serial = run_pipeline(trace, tmp_path, "serial-pop")
        result, sketch = run_pipeline(
            trace, tmp_path, "sketch-small",
            strategy="sketch", sketch_budget_bytes=1 << 12,
        )
        # Approximate values, but the same owners in every window, and the
        # windows still count as exact-mode (no degradation trigger fired).
        assert [set(w) for w in sketch] == [set(w) for w in serial]
        assert all(w.mode == "exact" for w in result.report.windows)

    def test_injected_engine_is_used(self, trace, tmp_path):
        engine = SketchTierEngine(budget_bytes=1 << 14)
        pipeline = SignaturePipeline(
            CsvRecordSource(str(trace)),
            CheckpointStore(tmp_path / "ckpt-injected"),
            PipelineConfig(k=5, window_length=100.0, strategy="sketch"),
            engine=engine,
        )
        pipeline.run()
        assert engine.last_stats["bytes_budgeted"] == 1 << 14

    def test_resume_under_different_contract_refused(self, trace, tmp_path):
        """Checkpoints record the accuracy contract: a sketch run's prefix
        must not silently seed an exact resume (or vice versa)."""
        store_dir = tmp_path / "ckpt-contract"
        sketch_config = PipelineConfig(
            k=5, window_length=100.0, strategy="sketch"
        )
        SignaturePipeline(
            CsvRecordSource(str(trace)), CheckpointStore(store_dir), sketch_config
        ).run()
        serial_pipeline = SignaturePipeline(
            CsvRecordSource(str(trace)),
            CheckpointStore(store_dir),
            PipelineConfig(k=5, window_length=100.0),
        )
        with pytest.raises(CheckpointError, match="contract"):
            serial_pipeline.run(resume=True)

    def test_resume_under_same_contract_replays(self, trace, tmp_path):
        store_dir = tmp_path / "ckpt-resume"
        config = PipelineConfig(k=5, window_length=100.0, strategy="sketch")
        SignaturePipeline(
            CsvRecordSource(str(trace)), CheckpointStore(store_dir), config
        ).run()
        resumed = SignaturePipeline(
            CsvRecordSource(str(trace)), CheckpointStore(store_dir), config
        ).run(resume=True)
        assert resumed.report.resumed_from == len(resumed.report.windows)

    def test_budget_validated(self):
        with pytest.raises(PipelineError, match="sketch_budget_bytes"):
            PipelineConfig(sketch_budget_bytes=0)


class TestExperimentSketchStrategy:
    def test_fig1_runs_and_generous_budget_matches_serial(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig1_properties import run_fig1

        serial = run_fig1("network", ExperimentConfig(scale="small"))
        sketch = run_fig1(
            "network",
            ExperimentConfig(
                scale="small", strategy="sketch", sketch_budget_bytes=1 << 26
            ),
        )
        assert sketch == serial

    def test_cell_engine_shares_budgeted_tier(self):
        from repro.experiments.config import ExperimentConfig, cell_engine

        config = ExperimentConfig(strategy="sketch", sketch_budget_bytes=1 << 16)
        engine = cell_engine(config)
        assert isinstance(engine, SketchTierEngine)
        assert engine.budget_bytes == 1 << 16
        assert cell_engine(config) is engine

    def test_budget_validated(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ExperimentError, match="sketch_budget_bytes"):
            ExperimentConfig(sketch_budget_bytes=-1)


def make_bucket(size, seed):
    rng = random.Random(seed)
    return [
        EdgeRecord(
            time=float(t),
            src=f"h{rng.randrange(12)}",
            dst=f"e{rng.randrange(30)}",
            weight=float(rng.randrange(1, 5)),
        )
        for t in range(size)
    ]


def run_service(strategy, budget=1 << 24, buckets=3):
    config = ServiceConfig(
        scheme="tt",
        k=5,
        num_shards=2,
        window_records=32,
        strategy=strategy,
        sketch_budget_bytes=budget,
    )
    service = SignatureService(config)
    try:
        for seed in range(buckets):
            assert service.ingest(make_bucket(32, seed))
            service.pump()
        return {
            state.shard_id: {
                node: sig.entries for node, sig in state.engine.signatures.items()
            }
            for state in service.supervisor.shards
        }
    finally:
        service.close()


class TestServiceSketchStrategy:
    def test_generous_budget_matches_serial(self):
        assert run_service("sketch") == run_service("serial")

    def test_fleet_shares_one_engine(self):
        config = ServiceConfig(strategy="sketch", sketch_budget_bytes=1 << 15)
        service = SignatureService(config)
        try:
            supervisor = service.supervisor
            assert supervisor._sketch_engine is not None
            assert supervisor._sketch_engine.budget_bytes == 1 << 15
            for state in supervisor.shards:
                assert state.engine._sketch_engine is supervisor._sketch_engine
        finally:
            service.close()

    def test_rebuild_converges_with_shared_engine(self):
        """Sketches are deterministic for a fixed seed, so a rebuilt shard
        reproduces the crashed shard's (approximate) signatures."""
        config = ServiceConfig(
            scheme="tt", k=5, num_shards=1, window_records=32,
            strategy="sketch", sketch_budget_bytes=1 << 13,
        )
        service = SignatureService(config)
        try:
            for seed in range(2):
                service.ingest(make_bucket(32, seed))
                service.pump()
            state = service.supervisor.shards[0]
            before = {n: s.entries for n, s in state.engine.signatures.items()}
            service.supervisor._try_restart(state, opportunistic=False)
            rebuilt = service.supervisor.shards[0].engine
            assert rebuilt._sketch_engine is service.supervisor._sketch_engine
            after = {n: s.entries for n, s in rebuilt.signatures.items()}
            assert after == before
        finally:
            service.close()

    def test_serial_config_has_no_engine(self):
        service = SignatureService(ServiceConfig())
        try:
            assert service.supervisor._sketch_engine is None
        finally:
            service.close()

    def test_budget_validated(self):
        with pytest.raises(ServiceError, match="sketch_budget_bytes"):
            ServiceConfig(sketch_budget_bytes=0)


class TestCliSketchStrategy:
    def test_pipeline_run_with_sketch_strategy(self, trace, tmp_path, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "run",
                    "--input",
                    str(trace),
                    "--checkpoint-dir",
                    str(tmp_path / "ckpt-cli"),
                    "--strategy",
                    "sketch",
                    "--sketch-budget",
                    str(1 << 15),
                    "--k",
                    "5",
                    "--num-windows",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "pipeline run: 2 windows" in output
        assert "exact" in output

    def test_sketch_budget_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--scale", "small", "--sketch-budget", "0"])
