"""Tests for the parallel experiment fan-out (`repro.parallel`)."""

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1_properties import run_fig1
from repro.experiments.fig3_auc import run_fig3
from repro.parallel import SerialExecutor, effective_jobs, parallel_map


def square(value):
    return value * value


def fail_on_three(value):
    if value == 3:
        raise ValueError("boom")
    return value


class RecordingExecutor:
    """Injectable executor that records what it was asked to map."""

    def __init__(self):
        self.calls = 0

    def map(self, function, tasks):
        self.calls += 1
        return [function(task) for task in tasks]


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_tasks(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_task_stays_in_process(self):
        assert parallel_map(square, [7], jobs=8) == [49]

    def test_process_pool_preserves_input_order(self):
        tasks = list(range(20))
        assert parallel_map(square, tasks, jobs=2) == [t * t for t in tasks]

    def test_process_pool_matches_serial(self):
        tasks = list(range(12))
        assert parallel_map(square, tasks, jobs=3) == parallel_map(
            square, tasks, jobs=1
        )

    def test_injected_executor_wins_over_jobs(self):
        executor = RecordingExecutor()
        result = parallel_map(square, [1, 2, 3], jobs=64, executor=executor)
        assert result == [1, 4, 9]
        assert executor.calls == 1

    def test_serial_executor(self):
        executor = SerialExecutor()
        assert list(executor.map(square, [2, 4])) == [4, 16]
        executor.shutdown()  # no-op, must not raise

    def test_exceptions_propagate_serial(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(fail_on_three, [1, 3], jobs=1)

    def test_exceptions_propagate_across_processes(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(fail_on_three, [1, 2, 3, 4], jobs=2)


class TestEffectiveJobs:
    def test_positive_passthrough(self):
        assert effective_jobs(1) == 1
        assert effective_jobs(5) == 5

    def test_nonpositive_means_cpu_count(self):
        expected = os.cpu_count() or 1
        assert effective_jobs(0) == expected
        assert effective_jobs(-1) == expected


class TestExperimentFanOut:
    """The experiment grid gives identical results on every execution path."""

    def test_fig1_executor_injection_matches_serial(self):
        config = ExperimentConfig(scale="small")
        serial = run_fig1("network", config)
        injected = run_fig1("network", config, executor=SerialExecutor())
        assert serial == injected

    def test_fig3_processes_match_serial(self):
        serial = run_fig3("network", ExperimentConfig(scale="small", jobs=1))
        parallel = run_fig3("network", ExperimentConfig(scale="small", jobs=2))
        assert serial.scheme_labels == parallel.scheme_labels
        for distance_name, per_scheme in serial.auc.items():
            for label, value in per_scheme.items():
                assert parallel.auc[distance_name][label] == pytest.approx(
                    value, abs=1e-12
                )
