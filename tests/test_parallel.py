"""Tests for the parallel experiment fan-out (`repro.parallel`)."""

import os

import pytest

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1_properties import run_fig1
from repro.experiments.fig3_auc import run_fig3
from repro.parallel import (
    SerialExecutor,
    available_cpus,
    effective_jobs,
    parallel_map,
)


def square(value):
    return value * value


def fail_on_three(value):
    if value == 3:
        raise ValueError("boom")
    return value


class RecordingExecutor:
    """Injectable executor that records what it was asked to map."""

    def __init__(self):
        self.calls = 0

    def map(self, function, tasks):
        self.calls += 1
        return [function(task) for task in tasks]


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_tasks(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_task_stays_in_process(self):
        assert parallel_map(square, [7], jobs=8) == [49]

    def test_process_pool_preserves_input_order(self):
        tasks = list(range(20))
        assert parallel_map(square, tasks, jobs=2) == [t * t for t in tasks]

    def test_process_pool_matches_serial(self):
        tasks = list(range(12))
        assert parallel_map(square, tasks, jobs=3) == parallel_map(
            square, tasks, jobs=1
        )

    def test_injected_executor_wins_over_jobs(self):
        executor = RecordingExecutor()
        result = parallel_map(square, [1, 2, 3], jobs=64, executor=executor)
        assert result == [1, 4, 9]
        assert executor.calls == 1

    def test_serial_executor(self):
        executor = SerialExecutor()
        assert list(executor.map(square, [2, 4])) == [4, 16]
        executor.shutdown()  # no-op, must not raise

    def test_exceptions_propagate_serial(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(fail_on_three, [1, 3], jobs=1)

    def test_exceptions_propagate_across_processes(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(fail_on_three, [1, 2, 3, 4], jobs=2)


def die_on_five(value):
    if value == 5:
        raise RuntimeError("task 5 died")
    return value * 10


class FlakyCounter:
    """Picklable worker that fails until a file holds ``succeed_after`` marks.

    The file is the cross-process state: every call appends one line, so
    retried runs (same or different worker process) see prior attempts.
    """

    def __init__(self, path, succeed_after):
        self.path = str(path)
        self.succeed_after = succeed_after

    def __call__(self, value):
        if value != 5:
            return value * 10
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("attempt\n")
        with open(self.path, "r", encoding="utf-8") as handle:
            attempts = len(handle.readlines())
        if attempts < self.succeed_after:
            raise RuntimeError(f"flaky: attempt {attempts}")
        return value * 10


class TestOnErrorPolicies:
    def test_skip_kills_one_of_eight(self):
        # The regression the policy exists for: one poisoned task out of
        # eight must not take down the whole map — the seven survivors come
        # back, deterministic and in input order.
        tasks = list(range(1, 9))
        expected = [value * 10 for value in tasks if value != 5]
        assert parallel_map(die_on_five, tasks, jobs=1, on_error="skip") == expected
        assert parallel_map(die_on_five, tasks, jobs=2, on_error="skip") == expected
        assert (
            parallel_map(die_on_five, tasks, executor=SerialExecutor(), on_error="skip")
            == expected
        )

    def test_skip_is_counted_and_logged(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = parallel_map(
                die_on_five, [4, 5, 6], jobs=1, on_error="skip"
            )
        assert result == [40, 60]
        assert registry.counter_value("parallel.tasks_skipped") == 1

    def test_retry_recovers_transient_failure(self, tmp_path):
        flaky = FlakyCounter(tmp_path / "attempts", succeed_after=2)
        result = parallel_map(flaky, [4, 5, 6], jobs=1, on_error="retry", retries=1)
        assert result == [40, 50, 60]

    def test_retry_recovers_across_processes(self, tmp_path):
        flaky = FlakyCounter(tmp_path / "attempts", succeed_after=2)
        result = parallel_map(flaky, [4, 5, 6], jobs=2, on_error="retry", retries=1)
        assert result == [40, 50, 60]

    def test_retry_exhaustion_raises_original_error(self, tmp_path):
        flaky = FlakyCounter(tmp_path / "attempts", succeed_after=100)
        with pytest.raises(RuntimeError, match="flaky"):
            parallel_map(flaky, [5], jobs=1, on_error="retry", retries=2)

    def test_retry_counts_attempts(self, tmp_path):
        flaky = FlakyCounter(tmp_path / "attempts", succeed_after=3)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            parallel_map(flaky, [5], jobs=1, on_error="retry", retries=2)
        assert registry.counter_value("parallel.task_retries") == 2

    def test_raise_policy_is_default_and_unchanged(self):
        with pytest.raises(RuntimeError, match="task 5 died"):
            parallel_map(die_on_five, [1, 5], jobs=1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel_map(square, [1], on_error="ignore")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            parallel_map(square, [1], on_error="retry", retries=-1)


class TestEffectiveJobs:
    def test_positive_passthrough(self):
        assert effective_jobs(1) == 1
        assert effective_jobs(5) == 5

    def test_zero_means_available_cpus(self):
        assert effective_jobs(0) == available_cpus()

    def test_affinity_mask_wins_over_cpu_count(self, monkeypatch):
        # In a container pinned to 3 of N cores, jobs=0 must mean 3 workers
        # (os.cpu_count() reports the machine, not the process).
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpus() == 3
        assert effective_jobs(0) == 3

    def test_cpu_count_fallback_without_affinity(self, monkeypatch):
        # macOS / Windows have no sched_getaffinity.
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpus() == 6
        assert effective_jobs(0) == 6

    def test_cpu_count_none_means_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpus() == 1

    def test_negative_is_an_error(self):
        # Only 0 means auto; a negative count is almost certainly a typo and
        # used to silently mean "all CPUs".
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            effective_jobs(-1)
        with pytest.raises(ValueError, match="-8"):
            effective_jobs(-8)


def count_and_square(value):
    """Worker that leaves deterministic tracks on the active registry."""
    obs.counter("test.calls").inc()
    obs.histogram("test.value", buckets=(1.0, 4.0, 16.0)).observe(value)
    with obs.span("test.task"):
        pass
    return value * value


def count_then_fail_on_three(value):
    obs.counter("test.calls").inc()
    if value == 3:
        raise ValueError("boom")
    return value


class ReverseExecutor:
    """Executes tasks in reverse order but returns results in input order —
    models out-of-order worker scheduling for the determinism test."""

    def map(self, function, tasks):
        tasks = list(tasks)
        return list(reversed([function(task) for task in reversed(tasks)]))


def _structure(snapshot):
    """Snapshot minus wall-clock fields (which legitimately vary run-to-run)."""
    return (
        snapshot["counters"],
        snapshot["gauges"],
        snapshot["histograms"],
        [
            (tuple(record["path"]), record["count"], record["values"])
            for record in snapshot["spans"]
        ],
    )


class TestParallelMapObservability:
    def test_worker_metrics_merged_across_processes(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("driver"):
                result = parallel_map(count_and_square, [1, 2, 3, 4, 5, 6], jobs=2)
        assert result == [1, 4, 9, 16, 25, 36]
        assert registry.counter_value("test.calls") == 6
        snapshot = registry.snapshot()
        # Worker span trees are grafted under the caller's active span.
        span_paths = {tuple(record["path"]): record["count"] for record in snapshot["spans"]}
        assert span_paths[("driver", "test.task")] == 6

    def test_merge_is_deterministic_under_worker_scheduling(self):
        tasks = [1, 2, 3, 4, 5]
        snapshots = []
        for executor in (SerialExecutor(), ReverseExecutor()):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                parallel_map(count_and_square, tasks, executor=executor)
            snapshots.append(registry.snapshot())
        assert _structure(snapshots[0]) == _structure(snapshots[1])

    def test_serial_and_parallel_metrics_agree(self):
        tasks = [1, 2, 3, 4]
        structures = []
        for jobs in (1, 2):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                parallel_map(count_and_square, tasks, jobs=jobs)
            snapshot = registry.snapshot()
            # parallel.workers gauge is only set on the pool path; drop it.
            snapshot["gauges"] = []
            structures.append(_structure(snapshot))
        assert structures[0] == structures[1]

    def test_midmap_exception_keeps_partial_metrics_process_pool(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with pytest.raises(ValueError, match="boom"):
                parallel_map(count_then_fail_on_three, [1, 2, 3, 4], jobs=2)
        # Tasks 1 and 2 complete (in input order) before task 3's exception
        # surfaces; their snapshots must already be merged.
        assert registry.counter_value("test.calls") >= 2

    def test_midmap_exception_keeps_partial_metrics_serial(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with pytest.raises(ValueError, match="boom"):
                parallel_map(count_then_fail_on_three, [1, 2, 3], jobs=1)
        # Serial path runs on the caller's registry directly: tasks 1 and 2
        # plus the failing task's own pre-raise increment are all retained.
        assert registry.counter_value("test.calls") == 3

    def test_empty_tasks_with_registry(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            assert parallel_map(count_and_square, [], jobs=4) == []
        assert registry.counter_value("test.calls") == 0

    def test_disabled_registry_does_not_wrap_workers(self):
        executor = RecordingExecutor()
        assert parallel_map(square, [2, 3], executor=executor) == [4, 9]
        assert executor.calls == 1


class TestExperimentFanOut:
    """The experiment grid gives identical results on every execution path."""

    def test_fig1_executor_injection_matches_serial(self):
        config = ExperimentConfig(scale="small")
        serial = run_fig1("network", config)
        injected = run_fig1("network", config, executor=SerialExecutor())
        assert serial == injected

    def test_fig3_processes_match_serial(self):
        serial = run_fig3("network", ExperimentConfig(scale="small", jobs=1))
        parallel = run_fig3("network", ExperimentConfig(scale="small", jobs=2))
        assert serial.scheme_labels == parallel.scheme_labels
        for distance_name, per_scheme in serial.auc.items():
            for label, value in per_scheme.items():
                assert parallel.auc[distance_name][label] == pytest.approx(
                    value, abs=1e-12
                )
