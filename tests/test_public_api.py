"""The public API surface: everything in ``repro.__all__`` is importable
and the end-to-end quickstart path works through top-level names only."""

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, *_rest = repro.__version__.split(".")
        assert int(major) >= 1

    def test_exception_hierarchy(self):
        for name in (
            "GraphError",
            "SchemeError",
            "DistanceError",
            "PerturbationError",
            "DatasetError",
            "StreamingError",
            "MatchingError",
            "ExperimentError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)


class TestEndToEnd:
    def test_quickstart_path(self):
        g1 = repro.CommGraph([("a", "b", 5.0), ("a", "c", 2.0), ("b", "c", 1.0)])
        g2 = repro.CommGraph([("a", "b", 4.0), ("a", "d", 1.0), ("b", "c", 1.0)])
        scheme = repro.create_scheme("tt", k=10)
        distance = repro.get_distance("shel")
        value = repro.persistence(
            scheme.compute(g1, "a"), scheme.compute(g2, "a"), distance
        )
        assert 0.0 <= value <= 1.0

    def test_docstring_example_runs(self):
        """The module docstring's code block must stay executable."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_generator_to_application_path(self):
        dataset = repro.EnterpriseFlowGenerator(
            num_hosts=20, num_external=200, num_services=8, num_windows=2,
            num_alias_users=3, seed=77,
        ).generate()
        detector = repro.MultiusageDetector(
            repro.create_scheme("tt", k=10), repro.get_distance("shel")
        )
        result = detector.evaluate(
            dataset.graphs[0],
            dataset.positives_by_query(),
            population=dataset.local_hosts,
        )
        assert result.mean_auc > 0.5
