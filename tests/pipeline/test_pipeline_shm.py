"""Pipeline integration of the shared-memory recompute engine.

``strategy="shm"`` must leave every pipeline output byte-identical —
window signatures, checkpoints, report — in both the full-recompute and
incremental modes, and the run must release its worker pool and segments
whether it succeeds or dies mid-window.
"""

import random

import pytest

from repro.exceptions import PipelineError
from repro.parallel.shm import ShmEngine, active_segment_names
from repro.pipeline import (
    CheckpointStore,
    CsvRecordSource,
    PipelineConfig,
    SignaturePipeline,
)


@pytest.fixture()
def trace(tmp_path):
    rng = random.Random(7)
    rows = ["time,src,dst,weight"]
    for t in range(300):
        rows.append(
            f"{t},h{rng.randrange(15)},h{rng.randrange(15)},{rng.randrange(1, 6)}"
        )
    path = tmp_path / "trace.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


def run_pipeline(trace, tmp_path, tag, **config_kwargs):
    config = PipelineConfig(k=5, window_length=100.0, **config_kwargs)
    pipeline = SignaturePipeline(
        CsvRecordSource(str(trace)),
        CheckpointStore(tmp_path / f"ckpt-{tag}"),
        config,
    )
    result = pipeline.run()
    return [
        {node: sig.entries for node, sig in sigs.items()}
        for sigs in result.signatures
    ]


class TestPipelineShmStrategy:
    @pytest.mark.parametrize("incremental", [False, True])
    @pytest.mark.parametrize(
        "scheme,params",
        [("tt", {}), ("rwr", {"max_hops": 3}), ("rwr", {})],
    )
    def test_byte_identical_to_serial(
        self, trace, tmp_path, incremental, scheme, params
    ):
        serial = run_pipeline(
            trace, tmp_path, f"s-{scheme}-{incremental}",
            scheme=scheme, scheme_params=params, incremental=incremental,
        )
        shm = run_pipeline(
            trace, tmp_path, f"p-{scheme}-{incremental}",
            scheme=scheme, scheme_params=params, incremental=incremental,
            strategy="shm", jobs=2,
        )
        assert shm == serial
        assert active_segment_names() == []

    def test_injected_engine_is_not_closed(self, trace, tmp_path):
        with ShmEngine(jobs=2) as engine:
            config = PipelineConfig(k=5, window_length=100.0, strategy="shm")
            pipeline = SignaturePipeline(
                CsvRecordSource(str(trace)),
                CheckpointStore(tmp_path / "ckpt-injected"),
                config,
                engine=engine,
            )
            pipeline.run()
            # Caller-owned pool survives the run for reuse.
            assert not engine.closed
        assert engine.closed

    def test_owned_engine_released_after_run(self, trace, tmp_path):
        config = PipelineConfig(k=5, window_length=100.0, strategy="shm", jobs=2)
        pipeline = SignaturePipeline(
            CsvRecordSource(str(trace)),
            CheckpointStore(tmp_path / "ckpt-owned"),
            config,
        )
        pipeline.run()
        assert active_segment_names() == []

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PipelineError, match="strategy"):
            PipelineConfig(strategy="smoke-signals")

    def test_negative_jobs_rejected(self):
        with pytest.raises(PipelineError, match="jobs"):
            PipelineConfig(jobs=-2)
