"""Unit tests for pluggable record sources."""

import pytest

from repro.exceptions import DatasetError, PipelineError
from repro.graph.stream import EdgeRecord, write_edge_records
from repro.pipeline.sources import CsvRecordSource, IterableRecordSource


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.csv"
    write_edge_records(
        [
            EdgeRecord(time=0.0, src="a", dst="b", weight=2.0),
            EdgeRecord(time=1.0, src="b", dst="c", weight=1.0),
        ],
        path,
    )
    return path


class TestCsvRecordSource:
    def test_read_is_idempotent(self, trace):
        source = CsvRecordSource(trace)
        first = source.read()
        second = source.read()
        assert list(first) == list(second)
        assert len(first) == 2

    def test_unknown_policy_rejected(self, trace):
        with pytest.raises(PipelineError):
            CsvRecordSource(trace, errors="ignore")

    def test_quarantine_writes_file(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text("time,src,dst,weight\n1,a,b,1\nbad,x,y,1\n")
        quarantine = tmp_path / "quarantine.csv"
        source = CsvRecordSource(path, errors="quarantine", quarantine_path=quarantine)
        report = source.read()
        assert report.num_accepted == 1
        assert report.num_rejected == 1
        assert quarantine.exists()
        assert "bad" in quarantine.read_text()

    def test_describe_names_path(self, trace):
        assert str(trace) in CsvRecordSource(trace).describe()


class TestIterableRecordSource:
    def test_accepts_records_and_tuples(self):
        source = IterableRecordSource(
            [EdgeRecord(time=0.0, src="a", dst="b"), (1.0, "b", "c", 2.0)]
        )
        report = source.read()
        assert len(report) == 2
        assert report[1] == EdgeRecord(time=1.0, src="b", dst="c", weight=2.0)

    def test_strict_raises_on_garbage(self):
        source = IterableRecordSource([("nope", "a", "b", "x")])
        with pytest.raises(DatasetError):
            source.read()

    def test_skip_collects_rejections(self):
        source = IterableRecordSource(
            [(0.0, "a", "b", 1.0), ("nope", "a", "b", "x"), (1.0, "c", "d", 1.0)],
            errors="skip",
        )
        report = source.read()
        assert len(report) == 2
        assert report.num_rejected == 1
        assert report.rejected[0].line_number == 1

    def test_negative_weight_is_rejected_not_fatal_under_skip(self):
        source = IterableRecordSource([(0.0, "a", "b", -3.0)], errors="skip")
        report = source.read()
        assert len(report) == 0
        assert report.num_rejected == 1
