"""Unit tests for the retry/backoff policy."""

import random

import pytest

from repro.exceptions import PipelineError
from repro.pipeline.retry import RetryPolicy, call_with_retry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", error=OSError("boom")):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(PipelineError):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_before(n, rng) for n in (2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(42)
        for _ in range(100):
            delay = policy.delay_before(2, rng)
            assert 0.75 <= delay <= 1.25


class TestCallWithRetry:
    def test_success_first_try(self):
        assert call_with_retry(lambda: 7, RetryPolicy()) == 7

    def test_recovers_after_transient_failures(self):
        clock = FakeClock()
        flaky = Flaky(failures=2)
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        assert flaky.calls == 3

    def test_exhaustion_reraises_original(self):
        clock = FakeClock()
        flaky = Flaky(failures=10)
        with pytest.raises(OSError):
            call_with_retry(
                flaky,
                RetryPolicy(max_attempts=3, jitter=0.0),
                sleep=clock.sleep,
                clock=clock,
            )
        assert flaky.calls == 3

    def test_non_transient_error_propagates_immediately(self):
        flaky = Flaky(failures=5, error=ValueError("not transient"))
        with pytest.raises(ValueError):
            call_with_retry(flaky, RetryPolicy(max_attempts=5))
        assert flaky.calls == 1

    def test_deadline_abandons_retry(self):
        clock = FakeClock()
        flaky = Flaky(failures=10)
        with pytest.raises(OSError):
            call_with_retry(
                flaky,
                RetryPolicy(
                    max_attempts=100, base_delay=1.0, multiplier=1.0,
                    jitter=0.0, deadline=2.5,
                ),
                sleep=clock.sleep,
                clock=clock,
            )
        # attempts at t=0, 1, 2; the retry that would start at t=3 > 2.5 is dropped
        assert flaky.calls == 3

    def test_on_retry_callback_counts(self):
        clock = FakeClock()
        seen = []
        call_with_retry(
            Flaky(failures=2),
            RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=clock.sleep,
            clock=clock,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
        )
        assert [attempt for attempt, _delay in seen] == [1, 2]
