"""Unit tests for the retry/backoff policy."""

import random

import pytest

from repro import obs
from repro.exceptions import PipelineError
from repro.pipeline.retry import RetryPolicy, call_with_retry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", error=OSError("boom")):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(PipelineError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(PipelineError):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_before(n, rng) for n in (2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(42)
        for _ in range(100):
            delay = policy.delay_before(2, rng)
            assert 0.75 <= delay <= 1.25

    def test_jitter_never_exceeds_max_delay(self):
        """Regression: jitter used to scale the already-capped delay, so a
        saturated backoff could sleep up to (1 + jitter) * max_delay."""
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=2.0, jitter=0.5
        )
        rng = random.Random(7)
        saturated = [policy.delay_before(attempt, rng) for attempt in (4, 5, 6)] * 50
        assert max(saturated) <= policy.max_delay
        # The cap must not flatten jitter entirely below saturation.
        varied = {round(policy.delay_before(2, rng), 6) for _ in range(50)}
        assert len(varied) > 1

    def test_first_attempt_has_no_delay(self):
        policy = RetryPolicy(base_delay=5.0, jitter=0.5)
        assert policy.delay_before(1, random.Random(0)) == 0.0


class TestCallWithRetry:
    def test_success_first_try(self):
        assert call_with_retry(lambda: 7, RetryPolicy()) == 7

    def test_recovers_after_transient_failures(self):
        clock = FakeClock()
        flaky = Flaky(failures=2)
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        assert flaky.calls == 3

    def test_exhaustion_reraises_original(self):
        clock = FakeClock()
        flaky = Flaky(failures=10)
        with pytest.raises(OSError):
            call_with_retry(
                flaky,
                RetryPolicy(max_attempts=3, jitter=0.0),
                sleep=clock.sleep,
                clock=clock,
            )
        assert flaky.calls == 3

    def test_non_transient_error_propagates_immediately(self):
        flaky = Flaky(failures=5, error=ValueError("not transient"))
        with pytest.raises(ValueError):
            call_with_retry(flaky, RetryPolicy(max_attempts=5))
        assert flaky.calls == 1

    def test_deadline_abandons_retry(self):
        clock = FakeClock()
        flaky = Flaky(failures=10)
        with pytest.raises(OSError):
            call_with_retry(
                flaky,
                RetryPolicy(
                    max_attempts=100, base_delay=1.0, multiplier=1.0,
                    jitter=0.0, deadline=2.5,
                ),
                sleep=clock.sleep,
                clock=clock,
            )
        # attempts at t=0, 1, 2; the retry that would start at t=3 > 2.5 is dropped
        assert flaky.calls == 3

    def test_on_retry_callback_counts(self):
        clock = FakeClock()
        seen = []
        call_with_retry(
            Flaky(failures=2),
            RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=clock.sleep,
            clock=clock,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
        )
        assert [attempt for attempt, _delay in seen] == [1, 2]

    def test_never_sleeps_past_deadline(self):
        """A sleep that would *end* after the deadline is abandoned, not
        started: total fake-clock time stays within the deadline."""
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=2.0,
            max_delay=10.0, jitter=0.0, deadline=5.0,
        )
        with pytest.raises(OSError):
            call_with_retry(
                Flaky(failures=100), policy, sleep=clock.sleep, clock=clock
            )
        assert clock.now <= policy.deadline

    def test_deadline_exactly_reached_still_retries(self):
        # (elapsed + delay) == deadline is within budget; only > abandons.
        clock = FakeClock()
        flaky = Flaky(failures=2)
        result = call_with_retry(
            flaky,
            RetryPolicy(
                max_attempts=5, base_delay=1.0, multiplier=1.0,
                jitter=0.0, deadline=2.0,
            ),
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert clock.now == 2.0

    def test_zero_base_delay_never_sleeps(self):
        sleeps = []
        call_with_retry(
            Flaky(failures=3),
            RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
            sleep=sleeps.append,
            clock=FakeClock(),
        )
        assert sleeps == []


class TestRetryObservability:
    def run_under_registry(self, fn, policy, **kwargs):
        clock = FakeClock()
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            try:
                fn_result = call_with_retry(
                    fn, policy, sleep=clock.sleep, clock=clock, **kwargs
                )
            except OSError:
                fn_result = None
        return registry, fn_result

    def test_counts_attempts_and_sleeps_on_recovery(self):
        registry, result = self.run_under_registry(
            Flaky(failures=2), RetryPolicy(max_attempts=4, jitter=0.0)
        )
        assert result == "ok"
        assert registry.counter_value("retry.attempts") == 3
        assert registry.counter_value("retry.transient_failures") == 2
        assert registry.counter_value("retry.sleeps") == 2
        assert registry.counter_value("retry.exhausted") == 0
        [[name, _labels, state]] = registry.snapshot()["histograms"]
        assert name == "retry.delay_s"
        assert state["count"] == 2

    def test_counts_exhaustion(self):
        registry, result = self.run_under_registry(
            Flaky(failures=10), RetryPolicy(max_attempts=3, jitter=0.0)
        )
        assert result is None
        assert registry.counter_value("retry.attempts") == 3
        assert registry.counter_value("retry.exhausted") == 1
        assert registry.counter_value("retry.deadline_abandoned") == 0

    def test_counts_deadline_abandonment(self):
        registry, result = self.run_under_registry(
            Flaky(failures=10),
            RetryPolicy(
                max_attempts=100, base_delay=1.0, multiplier=1.0,
                jitter=0.0, deadline=2.5,
            ),
        )
        assert result is None
        assert registry.counter_value("retry.deadline_abandoned") == 1
        assert registry.counter_value("retry.exhausted") == 0

    def test_no_metrics_without_registry(self):
        clock = FakeClock()
        call_with_retry(
            Flaky(failures=1),
            RetryPolicy(max_attempts=2, jitter=0.0),
            sleep=clock.sleep,
            clock=clock,
        )
        assert obs.NULL_REGISTRY.counter_total("retry.attempts") == 0
