"""The pipeline's incremental engine: equivalence, resume, run-state guard.

Three contracts:

* ``PipelineConfig(incremental=True)`` produces the same signatures as
  the full engine (the schemes' byte-identity contract, end to end);
* a crash + ``resume=True`` yields in-memory results *and checkpoint
  bytes* identical to an uninterrupted incremental run (the aggregator
  state is reconstructed by replaying the checkpointed prefix);
* resuming onto checkpoints written by an incompatible engine/scheme is
  refused via the run-state manifest stamp.
"""

import random

import pytest

from repro.exceptions import CheckpointError
from repro.graph.stream import EdgeRecord, write_edge_records
from repro.pipeline import (
    CheckpointStore,
    CsvRecordSource,
    PipelineConfig,
    SignaturePipeline,
    mean_topk_overlap,
)
from repro.pipeline.report import MODE_EXACT


def make_records(num_windows=6, hosts=9, per_window=36, seed=2):
    rng = random.Random(seed)
    records = []
    for window in range(num_windows):
        for i in range(per_window):
            records.append(
                EdgeRecord(
                    time=float(window),
                    src=f"h{rng.randint(0, hosts - 1)}",
                    dst=f"e{rng.randint(0, 14)}",
                    weight=round(rng.uniform(0.5, 3.0), 3),
                )
            )
    return records


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.csv"
    write_edge_records(make_records(), path)
    return path


def make_pipeline(trace, directory, scheme="tt", incremental=True, hooks=(), **params):
    return SignaturePipeline(
        CsvRecordSource(trace),
        CheckpointStore(directory),
        PipelineConfig(
            scheme=scheme, k=5, scheme_params=params, incremental=incremental
        ),
        hooks=hooks,
    )


def checkpoint_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("window-*.json"))
    }


class Boom(RuntimeError):
    pass


def crash_at(window_index):
    def hook(window, report):
        if window == window_index:
            raise Boom(f"injected crash after window {window}")

    return hook


class TestEquivalence:
    @pytest.mark.parametrize("scheme,params", [("tt", {}), ("ut", {}), ("rwr-push", {})])
    def test_matches_full_engine(self, trace, tmp_path, scheme, params):
        full = make_pipeline(
            trace, tmp_path / "full", scheme=scheme, incremental=False, **params
        ).run()
        inc = make_pipeline(
            trace, tmp_path / "inc", scheme=scheme, incremental=True, **params
        ).run()
        assert len(inc.signatures) == len(full.signatures)
        assert inc.signatures == full.signatures
        assert all(report.mode == MODE_EXACT for report in inc.report.windows)

    def test_rwr_matches_full_engine_topk(self, trace, tmp_path):
        # Matrix RWR reduces over the graph's node order; the maintained
        # sliding graph orders surviving nodes differently from fresh
        # aggregation, so cross-engine weights agree only to float
        # round-off (~1e-16) and near-ties may reorder.  The incremental
        # contract proper (same graph, delta vs full) is exercised in
        # tests/core/test_incremental.py; within-engine byte-identity
        # across resume is covered by TestResume below.
        params = {"max_hops": 3}
        full = make_pipeline(
            trace, tmp_path / "full", scheme="rwr", incremental=False, **params
        ).run()
        inc = make_pipeline(
            trace, tmp_path / "inc", scheme="rwr", incremental=True, **params
        ).run()
        assert len(inc.signatures) == len(full.signatures)
        for full_map, inc_map in zip(full.signatures, inc.signatures):
            assert inc_map.keys() == full_map.keys()
            assert mean_topk_overlap(full_map, inc_map) >= 0.99

    def test_incremental_metrics_reported(self, trace, tmp_path):
        result = make_pipeline(trace, tmp_path / "ckpt").run()
        assert "incremental.dirty_nodes{scheme=tt}" in result.report.metrics
        assert "incremental.reused_signatures{scheme=tt}" in result.report.metrics


class TestResume:
    @pytest.mark.parametrize(
        "scheme,params", [("tt", {}), ("rwr", {"max_hops": 3})]
    )
    def test_resume_is_byte_identical(self, trace, tmp_path, scheme, params):
        baseline = make_pipeline(
            trace, tmp_path / "baseline", scheme=scheme, **params
        ).run()

        crashing = make_pipeline(
            trace, tmp_path / "crashed", scheme=scheme, hooks=[crash_at(2)], **params
        )
        with pytest.raises(Boom):
            crashing.run()

        resumed = make_pipeline(
            trace, tmp_path / "crashed", scheme=scheme, **params
        ).run(resume=True)
        assert resumed.report.resumed_from == 3
        assert resumed.signatures == baseline.signatures
        # The durable artifacts match too: resuming reconstructs the
        # aggregator by replaying the checkpointed prefix, so windows
        # computed after the crash checkpoint identically.
        assert checkpoint_bytes(tmp_path / "crashed") == checkpoint_bytes(
            tmp_path / "baseline"
        )

    def test_fresh_run_after_crash_also_identical(self, trace, tmp_path):
        baseline = make_pipeline(trace, tmp_path / "baseline").run()
        crashing = make_pipeline(trace, tmp_path / "again", hooks=[crash_at(1)])
        with pytest.raises(Boom):
            crashing.run()
        fresh = make_pipeline(trace, tmp_path / "again").run()  # resume=False
        assert fresh.report.resumed_from is None
        assert fresh.signatures == baseline.signatures


class TestRunStateGuard:
    def test_engine_mismatch_rejected(self, trace, tmp_path):
        make_pipeline(trace, tmp_path / "ckpt", incremental=False).run()
        resuming = make_pipeline(trace, tmp_path / "ckpt", incremental=True)
        with pytest.raises(CheckpointError, match="engine"):
            resuming.run(resume=True)

    def test_scheme_mismatch_rejected(self, trace, tmp_path):
        make_pipeline(trace, tmp_path / "ckpt", scheme="tt").run()
        resuming = make_pipeline(trace, tmp_path / "ckpt", scheme="ut")
        with pytest.raises(CheckpointError, match="scheme"):
            resuming.run(resume=True)

    def test_fresh_run_ignores_stale_state(self, trace, tmp_path):
        make_pipeline(trace, tmp_path / "ckpt", incremental=False).run()
        # resume=False clears the store, so no conflict arises.
        result = make_pipeline(trace, tmp_path / "ckpt", incremental=True).run()
        assert len(result.signatures) == 6
