"""Chaos tests: the pipeline under injected faults (``-m chaos``).

These are the acceptance tests of the fault-tolerance work:

* a run killed at a window boundary resumes from its checkpoint and
  produces **byte-identical** signature files to an uninterrupted run;
* with ~1% corrupt rows under the ``quarantine`` policy, per-window top-k
  signature overlap against the clean run stays >= 0.9 on the synthetic
  network dataset;
* duplicated and out-of-order records leave drift bounded / output
  unchanged respectively.
"""

import pytest

from repro.datasets.enterprise import EnterpriseFlowGenerator, EnterpriseParams
from repro.datasets.loaders import save_graph_sequence_csv
from repro.pipeline import (
    CheckpointStore,
    CsvRecordSource,
    PipelineConfig,
    SignaturePipeline,
    mean_topk_overlap,
)
from repro.pipeline.faults import (
    CrashInjector,
    FlakyCheckpointStore,
    FlakySource,
    SimulatedCrash,
    corrupt_csv_rows,
    duplicate_csv_rows,
    shuffle_csv_rows,
)

pytestmark = pytest.mark.chaos

NUM_WINDOWS = 3


@pytest.fixture(scope="module")
def network_trace(tmp_path_factory):
    """The synthetic network dataset flattened to an interchange CSV."""
    params = EnterpriseParams(
        num_hosts=40,
        num_external=400,
        num_services=8,
        num_windows=NUM_WINDOWS,
        num_alias_users=5,
        seed=11,
    )
    dataset = EnterpriseFlowGenerator(params).generate()
    path = tmp_path_factory.mktemp("trace") / "network.csv"
    save_graph_sequence_csv(dataset, path)
    return path


def run_pipeline(trace, directory, errors="strict", hooks=(), resume=False, **config_kwargs):
    config = PipelineConfig(scheme="tt", k=10, bipartite=True, **config_kwargs)
    pipeline = SignaturePipeline(
        CsvRecordSource(trace, errors=errors),
        CheckpointStore(directory),
        config,
        hooks=hooks,
    )
    return pipeline.run(resume=resume)


class TestCrashResume:
    def test_resume_is_byte_identical_to_uninterrupted_run(
        self, network_trace, tmp_path
    ):
        crashed_dir = tmp_path / "crashed"
        clean_dir = tmp_path / "clean"

        crash = CrashInjector(at_window=1)
        with pytest.raises(SimulatedCrash):
            run_pipeline(network_trace, crashed_dir, hooks=[crash])
        assert crash.fired

        # The crash hit after window 1 was checkpointed: 0 and 1 survive.
        partial = CheckpointStore(crashed_dir).scan()
        assert [entry.window for entry in partial.good] == [0, 1]

        resumed = run_pipeline(network_trace, crashed_dir, resume=True)
        assert resumed.report.resumed_from == 2
        assert len(resumed.signatures) == NUM_WINDOWS

        reference = run_pipeline(network_trace, clean_dir)
        assert len(reference.signatures) == NUM_WINDOWS
        for window in range(NUM_WINDOWS):
            crashed_bytes = (
                CheckpointStore(crashed_dir).window_path(window).read_bytes()
            )
            clean_bytes = CheckpointStore(clean_dir).window_path(window).read_bytes()
            assert crashed_bytes == clean_bytes, f"window {window} diverged"

    def test_crash_with_flaky_io_still_resumes_correctly(
        self, network_trace, tmp_path
    ):
        """Crash + transient IO faults together: the full gauntlet."""
        gauntlet_dir = tmp_path / "gauntlet"
        clean_dir = tmp_path / "clean"

        config = PipelineConfig(scheme="tt", k=10, bipartite=True)
        crash = CrashInjector(at_window=0)
        pipeline = SignaturePipeline(
            FlakySource(CsvRecordSource(network_trace), failures=2),
            FlakyCheckpointStore(gauntlet_dir, failures=1),
            config,
            hooks=[crash],
            sleep=lambda _s: None,
        )
        with pytest.raises(SimulatedCrash):
            pipeline.run()

        resumed = SignaturePipeline(
            CsvRecordSource(network_trace),
            CheckpointStore(gauntlet_dir),
            config,
        ).run(resume=True)
        reference = run_pipeline(network_trace, clean_dir)
        assert resumed.signatures == reference.signatures


class TestCorruptIngestion:
    def test_one_percent_corruption_keeps_topk_overlap_high(
        self, network_trace, tmp_path
    ):
        corrupt_trace = tmp_path / "corrupt.csv"
        corrupted = corrupt_csv_rows(
            network_trace, corrupt_trace, fraction=0.01, seed=5
        )
        assert corrupted > 0

        clean = run_pipeline(network_trace, tmp_path / "clean")
        dirty = run_pipeline(
            corrupt_trace,
            tmp_path / "dirty",
            errors="quarantine",
            error_budget=0.05,
        )
        assert dirty.report.records_rejected == corrupted
        for window in range(NUM_WINDOWS):
            overlap = mean_topk_overlap(
                clean.signatures[window], dirty.signatures[window]
            )
            assert overlap >= 0.9, f"window {window}: overlap {overlap:.3f}"

    def test_heavy_corruption_trips_error_budget(self, network_trace, tmp_path):
        from repro.exceptions import ErrorBudgetExceeded

        corrupt_trace = tmp_path / "ruined.csv"
        corrupt_csv_rows(network_trace, corrupt_trace, fraction=0.30, seed=5)
        with pytest.raises(ErrorBudgetExceeded):
            run_pipeline(
                corrupt_trace,
                tmp_path / "ckpt",
                errors="quarantine",
                error_budget=0.05,
            )


class TestDeliveryFaults:
    def test_out_of_order_records_change_nothing(self, network_trace, tmp_path):
        shuffled_trace = tmp_path / "shuffled.csv"
        shuffle_csv_rows(network_trace, shuffled_trace, seed=9)
        clean = run_pipeline(network_trace, tmp_path / "clean")
        shuffled = run_pipeline(shuffled_trace, tmp_path / "shuffled")
        assert clean.signatures == shuffled.signatures

    def test_duplicate_records_cause_bounded_drift(self, network_trace, tmp_path):
        duplicated_trace = tmp_path / "dup.csv"
        duplicated = duplicate_csv_rows(
            network_trace, duplicated_trace, fraction=0.01, seed=13
        )
        assert duplicated > 0
        clean = run_pipeline(network_trace, tmp_path / "clean")
        noisy = run_pipeline(duplicated_trace, tmp_path / "noisy")
        for window in range(NUM_WINDOWS):
            overlap = mean_topk_overlap(
                clean.signatures[window], noisy.signatures[window]
            )
            assert overlap >= 0.9, f"window {window}: overlap {overlap:.3f}"
