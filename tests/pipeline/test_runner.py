"""Unit tests for the fault-tolerant pipeline runner."""

import pytest

from repro.core.scheme import create_scheme
from repro.exceptions import ErrorBudgetExceeded, PipelineError
from repro.graph.builders import aggregate_records
from repro.graph.stream import EdgeRecord, write_edge_records
from repro.pipeline import (
    CheckpointStore,
    CsvRecordSource,
    IterableRecordSource,
    PipelineConfig,
    SignaturePipeline,
    mean_topk_overlap,
)
from repro.pipeline.faults import FlakyCheckpointStore, FlakySource
from repro.pipeline.report import MODE_CACHED, MODE_DEGRADED, MODE_EXACT


def make_records(num_windows=3, hosts=5, per_window=40):
    records = []
    for window in range(num_windows):
        for i in range(per_window):
            records.append(
                EdgeRecord(
                    time=float(window),
                    src=f"h{i % hosts}",
                    dst=f"e{(i * 3 + window) % 11}",
                    weight=1.0 + i % 4,
                )
            )
    return records


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.csv"
    write_edge_records(make_records(), path)
    return path


def make_pipeline(trace, tmp_path, config=None, **kwargs):
    return SignaturePipeline(
        CsvRecordSource(trace),
        CheckpointStore(tmp_path / "ckpt"),
        config or PipelineConfig(scheme="tt", k=5),
        **kwargs,
    )


class TestConfigValidation:
    def test_bad_k(self):
        with pytest.raises(PipelineError):
            PipelineConfig(k=0)

    def test_both_window_specs(self):
        with pytest.raises(PipelineError):
            PipelineConfig(num_windows=3, window_length=1.0)

    def test_bad_budgets(self):
        with pytest.raises(PipelineError):
            PipelineConfig(error_budget=-0.1)
        with pytest.raises(PipelineError):
            PipelineConfig(max_memory_cells=0)
        with pytest.raises(PipelineError):
            PipelineConfig(window_deadline=0.0)


class TestRun:
    def test_exact_run_matches_direct_computation(self, trace, tmp_path):
        result = make_pipeline(trace, tmp_path).run()
        assert len(result.signatures) == 3
        assert all(w.mode == MODE_EXACT for w in result.report.windows)
        # Window 0 must equal computing the scheme by hand.
        records = [r for r in make_records() if r.time == 0.0]
        graph = aggregate_records(records)
        scheme = create_scheme("tt", k=5)
        for owner, signature in result.signatures[0].items():
            assert signature == scheme.compute(graph, owner)

    def test_integer_times_define_windows(self, trace, tmp_path):
        result = make_pipeline(trace, tmp_path).run()
        assert [w.num_records for w in result.report.windows] == [40, 40, 40]

    def test_num_windows_split(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, num_windows=2)
        result = make_pipeline(trace, tmp_path, config).run()
        assert len(result.report.windows) == 2

    def test_non_integer_times_require_window_spec(self, tmp_path):
        source = IterableRecordSource([(0.5, "a", "b", 1.0)])
        pipeline = SignaturePipeline(
            source, CheckpointStore(tmp_path / "ckpt"), PipelineConfig()
        )
        with pytest.raises(PipelineError):
            pipeline.run()

    def test_empty_source_produces_empty_result(self, tmp_path):
        source = IterableRecordSource([])
        result = SignaturePipeline(
            source, CheckpointStore(tmp_path / "ckpt"), PipelineConfig()
        ).run()
        assert result.signatures == []

    def test_fresh_run_clears_stale_checkpoints(self, trace, tmp_path):
        pipeline = make_pipeline(trace, tmp_path)
        pipeline.run()
        result = pipeline.run()  # fresh again, not resumed
        assert result.report.resumed_from is None
        assert all(w.mode == MODE_EXACT for w in result.report.windows)


class TestErrorBudget:
    def make_dirty_source(self, bad=3, good=97):
        items = [(float(i % 2), f"h{i % 4}", f"e{i % 7}", 1.0) for i in range(good)]
        items += [("garbage", "x", "y", "z")] * bad
        return IterableRecordSource(items, errors="skip")

    def test_within_budget_passes(self, tmp_path):
        source = self.make_dirty_source(bad=3)
        config = PipelineConfig(error_budget=0.05)
        result = SignaturePipeline(
            source, CheckpointStore(tmp_path / "c"), config
        ).run()
        assert result.report.records_rejected == 3

    def test_fraction_budget_trips(self, tmp_path):
        source = self.make_dirty_source(bad=10)
        config = PipelineConfig(error_budget=0.05)
        with pytest.raises(ErrorBudgetExceeded) as excinfo:
            SignaturePipeline(source, CheckpointStore(tmp_path / "c"), config).run()
        assert excinfo.value.rejected == 10

    def test_absolute_budget_trips(self, tmp_path):
        source = self.make_dirty_source(bad=3)
        config = PipelineConfig(error_budget=2)
        with pytest.raises(ErrorBudgetExceeded):
            SignaturePipeline(source, CheckpointStore(tmp_path / "c"), config).run()

    def test_budget_is_catchable_as_pipeline_error(self, tmp_path):
        source = self.make_dirty_source(bad=10)
        config = PipelineConfig(error_budget=0.01)
        with pytest.raises(PipelineError):
            SignaturePipeline(source, CheckpointStore(tmp_path / "c"), config).run()


class TestDegradation:
    def test_memory_budget_degrades_to_streaming(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, max_memory_cells=10)
        result = make_pipeline(trace, tmp_path, config).run()
        assert result.report.degraded_windows == [0, 1, 2]
        for window in result.report.windows:
            assert window.mode == MODE_DEGRADED
            assert "memory budget" in window.reason

    def test_deadline_degrades_to_streaming(self, trace, tmp_path):
        # Fake clock: every call advances one second, so any per-window
        # deadline below the population size trips mid-computation.
        ticks = iter(range(100000))
        config = PipelineConfig(scheme="tt", k=5, window_deadline=1.5)
        result = make_pipeline(
            trace, tmp_path, config, clock=lambda: float(next(ticks))
        ).run()
        assert result.report.degraded_windows == [0, 1, 2]
        assert all("deadline" in w.reason for w in result.report.windows)

    def test_degraded_signatures_stay_close_to_exact(self, trace, tmp_path):
        exact = make_pipeline(trace, tmp_path / "a").run()
        config = PipelineConfig(scheme="tt", k=5, max_memory_cells=10)
        degraded = make_pipeline(trace, tmp_path / "b", config).run()
        for window in range(3):
            overlap = mean_topk_overlap(
                exact.signatures[window], degraded.signatures[window]
            )
            assert overlap >= 0.9

    def test_degradation_recorded_in_checkpoint_mode(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, max_memory_cells=10)
        pipeline = make_pipeline(trace, tmp_path, config)
        pipeline.run()
        scan = pipeline.store.scan()
        assert all(entry.mode == MODE_DEGRADED for entry in scan.good)

    def test_non_streaming_scheme_notes_fallback(self, trace, tmp_path):
        config = PipelineConfig(
            scheme="rwr",
            k=5,
            max_memory_cells=10,
            scheme_params={"reset_probability": 0.1, "max_hops": 2},
        )
        result = make_pipeline(trace, tmp_path, config).run()
        assert all("approximates 'tt'" in w.reason for w in result.report.windows)


class TestTransientFailures:
    def test_flaky_source_is_retried(self, trace, tmp_path):
        source = FlakySource(CsvRecordSource(trace), failures=2)
        pipeline = SignaturePipeline(
            source,
            CheckpointStore(tmp_path / "ckpt"),
            PipelineConfig(scheme="tt", k=5),
            sleep=lambda _s: None,
        )
        result = pipeline.run()
        assert result.report.retries == 2
        assert len(result.report.windows) == 3

    def test_flaky_store_is_retried(self, trace, tmp_path):
        store = FlakyCheckpointStore(tmp_path / "ckpt", failures=1)
        pipeline = SignaturePipeline(
            CsvRecordSource(trace),
            store,
            PipelineConfig(scheme="tt", k=5),
            sleep=lambda _s: None,
        )
        result = pipeline.run()
        assert result.report.retries == 1
        assert store.scan().next_window == 3

    def test_persistent_failure_escapes_after_retries(self, trace, tmp_path):
        source = FlakySource(CsvRecordSource(trace), failures=100)
        pipeline = SignaturePipeline(
            source,
            CheckpointStore(tmp_path / "ckpt"),
            PipelineConfig(scheme="tt", k=5),
            sleep=lambda _s: None,
        )
        with pytest.raises(OSError):
            pipeline.run()


class TestResume:
    def test_resume_with_no_checkpoints_runs_everything(self, trace, tmp_path):
        result = make_pipeline(trace, tmp_path).run(resume=True)
        assert result.report.resumed_from is None
        assert len(result.signatures) == 3

    def test_resume_replays_prefix(self, trace, tmp_path):
        pipeline = make_pipeline(trace, tmp_path)
        full = pipeline.run()
        resumed = make_pipeline(trace, tmp_path).run(resume=True)
        assert resumed.report.resumed_from == 3
        assert all(w.mode == MODE_CACHED for w in resumed.report.windows)
        assert resumed.signatures == full.signatures


class TestRunObservability:
    """The run report's metrics block and the obs merge contract."""

    def test_report_metrics_always_populated(self, trace, tmp_path):
        # No registry active: the run still collects its own counters.
        result = make_pipeline(trace, tmp_path).run()
        metrics = result.report.metrics
        assert metrics["pipeline.records_accepted"] == 120
        assert metrics["pipeline.windows{mode=exact}"] == 3
        assert metrics["pipeline.checkpoint_writes"] == 3
        assert "pipeline.records_rejected" not in metrics
        assert result.report.to_dict()["metrics"] == metrics

    def test_retries_and_kernel_traffic_counted(self, trace, tmp_path):
        source = FlakySource(CsvRecordSource(trace), failures=2)
        pipeline = SignaturePipeline(
            source,
            CheckpointStore(tmp_path / "ckpt"),
            PipelineConfig(scheme="tt", k=5),
            sleep=lambda _s: None,
        )
        metrics = pipeline.run().report.metrics
        assert metrics["pipeline.retries{op=read}"] == 2
        assert metrics["retry.transient_failures"] == 2

    def test_resume_counts_cached_windows(self, trace, tmp_path):
        make_pipeline(trace, tmp_path).run()
        resumed = make_pipeline(trace, tmp_path).run(resume=True)
        metrics = resumed.report.metrics
        assert metrics["pipeline.windows{mode=cached}"] == 3
        assert "pipeline.windows{mode=exact}" not in metrics

    def test_degradation_counted(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, max_memory_cells=10)
        metrics = make_pipeline(trace, tmp_path, config).run().report.metrics
        assert metrics["pipeline.degradations"] == 3
        assert metrics[f"pipeline.windows{{mode={MODE_DEGRADED}}}"] == 3

    def test_merges_into_parent_registry_under_active_span(self, trace, tmp_path):
        from repro import obs

        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            with obs.span("driver"):
                result = make_pipeline(trace, tmp_path).run()
        assert registry.counter_value("pipeline.records_accepted") == 120
        paths = {tuple(r["path"]) for r in registry.snapshot()["spans"]}
        assert ("driver", "pipeline.run{scheme=tt}") in paths
        assert ("driver", "pipeline.run{scheme=tt}", "pipeline.window") in paths
        # The report still carries its own copy.
        assert result.report.metrics["pipeline.records_accepted"] == 120


class TestLiveObservability:
    """Event-log routing, per-window time series, and the in-run server."""

    def run_with_log(self, pipeline):
        import io
        import json

        from repro import obs

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="p", clock=lambda: 0.0)
        with obs.use_event_log(log):
            result = pipeline.run()
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        return result, events

    def test_run_brackets_and_window_events(self, trace, tmp_path):
        _result, events = self.run_with_log(make_pipeline(trace, tmp_path))
        names = [event["event"] for event in events]
        assert names[0] == "pipeline.run.start"
        assert names[-1] == "pipeline.run.finish"
        windows = [event for event in events if event["event"] == "pipeline.window"]
        assert [event["window"] for event in windows] == [0, 1, 2]
        assert all(
            event["span"].startswith("pipeline.run{scheme=tt}") for event in windows
        )

    def test_retry_warnings_routed(self, trace, tmp_path):
        source = FlakySource(CsvRecordSource(trace), failures=2)
        pipeline = SignaturePipeline(
            source,
            CheckpointStore(tmp_path / "ckpt"),
            PipelineConfig(scheme="tt", k=5),
            sleep=lambda _s: None,
        )
        _result, events = self.run_with_log(pipeline)
        retries = [event for event in events if event["event"] == "pipeline.retry"]
        assert len(retries) == 2
        assert all(event["level"] == "warning" for event in retries)
        assert all(event["op"] == "read" for event in retries)
        assert [event["attempt"] for event in retries] == [1, 2]

    def test_quarantine_warning_routed(self, tmp_path):
        items = [(float(i % 2), f"h{i % 4}", f"e{i % 7}", 1.0) for i in range(50)]
        items += [("garbage", "x", "y", "z")] * 2
        pipeline = SignaturePipeline(
            IterableRecordSource(items, errors="skip"),
            CheckpointStore(tmp_path / "c"),
            PipelineConfig(error_budget=0.1),
        )
        _result, events = self.run_with_log(pipeline)
        [event] = [e for e in events if e["event"] == "pipeline.records_rejected"]
        assert event["level"] == "warning"
        assert event["rejected"] == 2
        assert len(event["rows"]) == 2

    def test_error_budget_event_routed(self, tmp_path):
        items = [(float(i % 2), f"h{i % 4}", f"e{i % 7}", 1.0) for i in range(50)]
        items += [("garbage", "x", "y", "z")] * 10
        pipeline = SignaturePipeline(
            IterableRecordSource(items, errors="skip"),
            CheckpointStore(tmp_path / "c"),
            PipelineConfig(error_budget=0.05),
        )
        import io
        import json

        from repro import obs

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="p", clock=lambda: 0.0)
        with obs.use_event_log(log):
            with pytest.raises(ErrorBudgetExceeded):
                pipeline.run()
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        [budget] = [
            e for e in events if e["event"] == "pipeline.error_budget_exceeded"
        ]
        assert budget["level"] == "error"
        assert budget["rejected"] == 10

    def test_degradation_warning_routed(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, max_memory_cells=10)
        _result, events = self.run_with_log(make_pipeline(trace, tmp_path, config))
        degraded = [e for e in events if e["event"] == "pipeline.degraded"]
        assert [event["window"] for event in degraded] == [0, 1, 2]
        assert all("memory budget" in event["reason"] for event in degraded)

    def test_resume_event_routed(self, trace, tmp_path):
        make_pipeline(trace, tmp_path).run()
        _result, events = self.run_with_log(
            make_pipeline(trace, tmp_path)
        )  # fresh run emits no resume event
        assert not [e for e in events if e["event"] == "pipeline.resumed"]
        import io
        import json

        from repro import obs

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="p", clock=lambda: 0.0)
        with obs.use_event_log(log):
            make_pipeline(trace, tmp_path).run(resume=True)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        [resumed] = [e for e in events if e["event"] == "pipeline.resumed"]
        assert resumed["windows"] == 3

    def test_timeseries_records_per_window_trajectory(self, trace, tmp_path):
        result = make_pipeline(trace, tmp_path).run()
        series = result.timeseries["pipeline.windows{mode=exact}"]
        assert [value for _t, value in series] == [1.0, 2.0, 3.0]
        accepted = result.timeseries["pipeline.records_accepted"]
        assert accepted[-1][1] == 120.0

    def test_obs_port_serves_live_registry_mid_run(self, trace, tmp_path):
        import json
        import urllib.request

        from repro import obs

        scrapes = []

        def scrape(url):
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.read().decode("utf-8")

        class SpyStore(CheckpointStore):
            """Scrapes the pipeline's own server from inside the run.

            Each checkpoint write happens mid-run, after the server started;
            the ephemeral port is read from the ``obs.server.started`` event.
            """

            def save_window(self, window, signatures, meta, mode):
                for line in buffer.getvalue().splitlines():
                    event = json.loads(line)
                    if event["event"] == "obs.server.started":
                        port = int(event["url"].rsplit(":", 1)[1])
                        scrapes.append(
                            scrape(f"http://127.0.0.1:{port}/metrics")
                        )
                        break
                return super().save_window(window, signatures, meta, mode=mode)

        config = PipelineConfig(scheme="tt", k=5, obs_port=0)
        import io

        buffer = io.StringIO()
        log = obs.EventLog(buffer, run_id="p", clock=lambda: 0.0)
        store = SpyStore(tmp_path / "ckpt")
        pipeline = SignaturePipeline(CsvRecordSource(trace), store, config)
        with obs.use_event_log(log):
            result = pipeline.run()
        assert scrapes, "server never scraped mid-run"
        for body in scrapes:
            assert obs.validate_prometheus(body) == []
        assert "repro_pipeline_windows_total" in scrapes[-1]
        assert result.report.metrics["pipeline.windows{mode=exact}"] == 3

    def test_sampler_attaches_when_interval_configured(self, trace, tmp_path):
        config = PipelineConfig(scheme="tt", k=5, sample_interval=0.005)
        result = make_pipeline(trace, tmp_path, config).run()
        # Both the per-window samples and the background sampler land in the
        # same store; the trajectory still ends at the final totals.
        assert result.timeseries["pipeline.records_accepted"][-1][1] == 120.0

    def test_config_validation(self):
        with pytest.raises(PipelineError):
            PipelineConfig(obs_port=-1)
        with pytest.raises(PipelineError):
            PipelineConfig(obs_port=65536)
        with pytest.raises(PipelineError):
            PipelineConfig(sample_interval=0.0)
