"""Unit tests for the atomic checkpoint store."""

import json

import pytest

from repro.core.signature import Signature
from repro.exceptions import CheckpointError
from repro.ioutils import atomic_write, file_sha256
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.faults import FlakyCheckpointStore, corrupt_checkpoint_file


def sigs(*owners):
    return {owner: Signature(owner, {f"{owner}-peer": 1.0}) for owner in owners}


class TestAtomicWrite:
    def test_success_replaces_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_write(path) as handle:
            handle.write("new")
        assert path.read_text() == "new"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_failure_preserves_original(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write("partial")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "old"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_read_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_write(tmp_path / "x", mode="r"):
                pass


class TestCheckpointStore:
    def test_save_and_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        entry = store.save_window(0, sigs("a", "b"), {"num_records": 7})
        assert entry.window == 0
        loaded, meta = store.load_window(0)
        assert set(loaded) == {"a", "b"}
        assert loaded["a"] == Signature("a", {"a-peer": 1.0})
        assert meta["num_records"] == 7

    def test_windows_must_be_sequential(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        with pytest.raises(CheckpointError):
            store.save_window(2, sigs("a"))

    def test_overwrite_truncates_later_windows(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for window in range(3):
            store.save_window(window, sigs(f"w{window}"))
        store.save_window(1, sigs("redo"))
        scan = store.scan()
        assert [entry.window for entry in scan.good] == [0, 1]

    def test_scan_verifies_hashes(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.save_window(1, sigs("b"))
        scan = store.scan()
        assert [entry.window for entry in scan.good] == [0, 1]
        assert scan.next_window == 2
        assert not scan.issues

    def test_corrupt_window_truncates_good_prefix(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for window in range(3):
            store.save_window(window, sigs(f"w{window}"))
        # Simulate on-disk corruption of window 1.
        store.window_path(1).write_text("{torn")
        scan = store.scan()
        assert [entry.window for entry in scan.good] == [0]
        assert any("hash" in issue for issue in scan.issues)

    def test_missing_window_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.window_path(0).unlink()
        scan = store.scan()
        assert scan.good == []
        assert any("missing" in issue for issue in scan.issues)

    def test_unreadable_manifest_is_reported_not_fatal(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.manifest_path.write_text("not json at all")
        scan = store.scan()
        assert scan.good == []
        assert any("manifest" in issue for issue in scan.issues)

    def test_load_missing_window_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(CheckpointError):
            store.load_window(0)

    def test_load_corrupt_window_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.window_path(0).write_text('{"version": 1}')
        with pytest.raises(CheckpointError):
            store.load_window(0)

    def test_manifest_hash_matches_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        entry = store.save_window(0, sigs("a"))
        assert file_sha256(store.window_path(0)) == entry.sha256
        # The save lands as one appended manifest-log line...
        line = json.loads(store.manifest_log_path.read_text().splitlines()[0])
        assert line["sha256"] == entry.sha256
        # ...and compaction folds it into the snapshot unchanged.
        store.compact()
        assert not store.manifest_log_path.exists()
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["entries"][0]["sha256"] == entry.sha256

    def test_compaction_is_scan_invisible(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for window in range(4):
            store.save_window(window, sigs(f"w{window}"))
        store.save_window(2, sigs("redo"))
        before = store.scan()
        store.compact()
        after = store.scan()
        assert after.good == before.good
        assert after.issues == before.issues == []
        # A fresh instance (process restart) replays to the same prefix.
        assert CheckpointStore(store.directory).scan().good == before.good

    def test_torn_final_log_line_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.save_window(1, sigs("b"))
        with open(store.manifest_log_path, "a", encoding="utf-8") as handle:
            handle.write('{"window": 2, "file": "window-')  # crash mid-append
        scan = CheckpointStore(store.directory).scan()
        assert [entry.window for entry in scan.good] == [0, 1]
        assert not scan.issues

    def test_clear_removes_everything(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.clear()
        assert store.scan().next_window == 0
        assert not store.manifest_path.exists()


class TestLoadVerification:
    """``load_window`` must verify the manifest digest, not trust the parse."""

    def test_bit_flip_detected_by_hash(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a", "b"))
        corrupt_checkpoint_file(store.window_path(0))
        with pytest.raises(CheckpointError, match="hash verification"):
            store.load_window(0)

    def test_valid_json_corruption_still_detected(self, tmp_path):
        # The nasty case: the damaged file parses fine and would load into
        # plausible signatures — only the SHA-256 check can catch it, and a
        # silent wrong answer is exactly what must never happen.
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        path = store.window_path(0)
        document = json.loads(path.read_text(encoding="utf-8"))
        for owner in document["signatures"].values():
            for peer in owner:
                owner[peer] = owner[peer] + 1.0
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(CheckpointError, match="hash verification"):
            store.load_window(0)

    def test_untouched_windows_still_load(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_window(0, sigs("a"))
        store.save_window(1, sigs("b"))
        corrupt_checkpoint_file(store.window_path(1))
        signatures, _meta = store.load_window(0)
        assert set(signatures) == {"a"}
        with pytest.raises(CheckpointError):
            store.load_window(1)


class TestFlakyCheckpointStoreLoads:
    """Load-side fault injection (the save side is covered by chaos tests)."""

    def test_transient_load_failures_then_success(self, tmp_path):
        store = FlakyCheckpointStore(tmp_path / "ckpt", failures=0, load_failures=2)
        store.save_window(0, sigs("a"))
        for _ in range(2):
            with pytest.raises(OSError, match="injected transient"):
                store.load_window(0)
        signatures, _meta = store.load_window(0)
        assert set(signatures) == {"a"}
        assert store.load_attempts == 3

    def test_corrupt_load_raises_never_lies(self, tmp_path):
        store = FlakyCheckpointStore(tmp_path / "ckpt", failures=0, corrupt_loads=(1,))
        store.save_window(0, sigs("a"))
        store.save_window(1, sigs("b"))
        signatures, _meta = store.load_window(0)
        assert set(signatures) == {"a"}
        with pytest.raises(CheckpointError, match="hash verification"):
            store.load_window(1)
        # After the injected bit rot, a rescan refuses the window too.
        assert store.scan().next_window == 1
