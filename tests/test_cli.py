"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--dataset", "querylog", "--scale", "small"])
        assert args.command == "fig3"
        assert args.dataset == "querylog"
        assert args.scale == "small"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scale == "paper"
        assert args.distance == "shel"


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1" in output and "table4" in output

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output

    def test_table4_small(self, capsys):
        assert main(["table4", "--scale", "small"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_streaming_small(self, capsys):
        assert main(["streaming", "--scale", "small"]) == 0
        assert "Extension X1" in capsys.readouterr().out

    def test_lsh_small(self, capsys):
        assert main(["lsh", "--scale", "small"]) == 0
        assert "Extension X2" in capsys.readouterr().out

    def test_fig1_querylog_small(self, capsys):
        assert main(["fig1", "--dataset", "querylog", "--scale", "small"]) == 0
        assert "Figure 1 (querylog)" in capsys.readouterr().out

    def test_selection_small(self, capsys):
        assert main(["selection", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "Scheme selection for" in output
        assert "anomaly_detection" in output

    def test_deanonymize_small(self, capsys):
        assert main(["deanonymize", "--scale", "small"]) == 0
        assert "De-anonymization attack" in capsys.readouterr().out
