"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_payload


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--dataset", "querylog", "--scale", "small"])
        assert args.command == "fig3"
        assert args.dataset == "querylog"
        assert args.scale == "small"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scale == "paper"
        assert args.distance == "shel"
        assert args.jobs == 1

    def test_jobs_flag(self):
        args = build_parser().parse_args(["fig1", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["fig3", "--jobs", "0"])
        assert args.jobs == 0

    def test_negative_jobs_is_an_explicit_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--jobs", "-2"])
        stderr = capsys.readouterr().err
        assert "--jobs must be >= 0" in stderr
        assert "-2" in stderr


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1" in output and "table4" in output

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output

    def test_table4_small(self, capsys):
        assert main(["table4", "--scale", "small"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_streaming_small(self, capsys):
        assert main(["streaming", "--scale", "small"]) == 0
        assert "Extension X1" in capsys.readouterr().out

    def test_lsh_small(self, capsys):
        assert main(["lsh", "--scale", "small"]) == 0
        assert "Extension X2" in capsys.readouterr().out

    def test_fig1_querylog_small(self, capsys):
        assert main(["fig1", "--dataset", "querylog", "--scale", "small"]) == 0
        assert "Figure 1 (querylog)" in capsys.readouterr().out

    def test_selection_small(self, capsys):
        assert main(["selection", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "Scheme selection for" in output
        assert "anomaly_detection" in output

    def test_deanonymize_small(self, capsys):
        assert main(["deanonymize", "--scale", "small"]) == 0
        assert "De-anonymization attack" in capsys.readouterr().out


class TestObservabilityCli:
    def test_obs_out_writes_schema_valid_payload(self, tmp_path, capsys):
        out = tmp_path / "obs.json"
        assert main(["fig5", "--scale", "small", "--obs-out", str(out)]) == 0
        assert f"observability payload written to {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_payload(payload) == []
        assert payload["meta"] == {"command": "fig5", "scale": "small", "jobs": 1}
        [root] = payload["spans"]
        assert root["name"] == "cli.fig5"

    def test_obs_prom_writes_prometheus_text(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        assert main(["fig5", "--scale", "small", "--obs-prom", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_kernel_calls_total counter" in text
        assert "repro_span_seconds_count" in text

    def test_no_obs_flags_writes_nothing(self, tmp_path, capsys):
        assert main(["fig5", "--scale", "small"]) == 0
        assert "observability payload" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_fig1_parallel_kernel_counts_match_workload_exactly(
        self, tmp_path, capsys
    ):
        """Acceptance check: fig1 --jobs 4 --obs-out merges the worker
        metrics into kernel call/pair counts that match the workload
        (schemes x distances grid over the small network population)."""
        from repro.experiments.config import (
            ExperimentConfig,
            get_enterprise_dataset,
            make_schemes,
        )

        out = tmp_path / "obs.json"
        assert (
            main(
                [
                    "fig1", "--scale", "small", "--jobs", "4",
                    "--obs-out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert validate_payload(payload) == []

        config = ExperimentConfig(scale="small")
        population = len(get_enterprise_dataset("small").local_hosts)
        num_schemes = len(make_schemes(1, config.reset_probability, config.rwr_hops))
        counters = payload["counters"]
        for distance in config.distances:
            # Uniqueness: one all-pairs batch kernel per (scheme, distance).
            base = f"metric={distance},op=pairwise,path=batch"
            assert counters[f"kernel.calls{{{base}}}"] == num_schemes
            assert (
                counters[f"kernel.pairs{{{base}}}"]
                == num_schemes * population * population
            )
            # Persistence: one diagonal pair kernel per (scheme, distance).
            base = f"metric={distance},op=pairs,path=batch"
            assert counters[f"kernel.calls{{{base}}}"] == num_schemes
            assert counters[f"kernel.pairs{{{base}}}"] == num_schemes * population
        # The merged span tree nests worker cells under the CLI root.
        [root] = payload["spans"]
        assert root["name"] == "cli.fig1"
        [experiment] = root["children"]
        assert experiment["name"] == "experiment.fig1{dataset=network}"
        cells = {child["name"] for child in experiment["children"]}
        assert len(cells) == num_schemes
        assert all(name.startswith("fig1.cell{scheme=") for name in cells)


class TestPipelineCli:
    @pytest.fixture
    def trace(self, tmp_path):
        from repro.graph.stream import EdgeRecord, write_edge_records

        path = tmp_path / "trace.csv"
        records = [
            EdgeRecord(time=float(w), src=f"h{i % 4}", dst=f"e{i % 9}", weight=1.0)
            for w in range(2)
            for i in range(20)
        ]
        write_edge_records(records, path)
        return path

    def test_pipeline_requires_input_and_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["pipeline", "run"])

    def test_pipeline_run(self, trace, tmp_path, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "run",
                    "--input",
                    str(trace),
                    "--checkpoint-dir",
                    str(tmp_path / "ckpt"),
                    "--scheme",
                    "tt",
                    "--k",
                    "5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "pipeline run: 2 windows" in output
        assert "exact" in output

    def test_pipeline_resume_replays_checkpoints(self, trace, tmp_path, capsys):
        argv_tail = [
            "--input", str(trace), "--checkpoint-dir", str(tmp_path / "ckpt"),
        ]
        assert main(["pipeline", "run", *argv_tail]) == 0
        capsys.readouterr()
        assert main(["pipeline", "resume", *argv_tail]) == 0
        output = capsys.readouterr().out
        assert "resumed: windows 0..1 replayed from checkpoint" in output

    def test_pipeline_quarantine_policy(self, trace, tmp_path, capsys):
        trace.write_text(trace.read_text() + "garbage,row,here\n")
        assert (
            main(
                [
                    "pipeline",
                    "run",
                    "--input",
                    str(trace),
                    "--checkpoint-dir",
                    str(tmp_path / "ckpt"),
                    "--errors",
                    "quarantine",
                    "--quarantine",
                    str(tmp_path / "q.csv"),
                ]
            )
            == 0
        )
        assert "1 rejected" in capsys.readouterr().out
        assert (tmp_path / "q.csv").exists()

    def test_list_mentions_pipeline(self, capsys):
        assert main(["list"]) == 0
        assert "pipeline run" in capsys.readouterr().out


class TestLiveObservabilityCli:
    def test_obs_log_writes_parseable_events(self, tmp_path, capsys):
        from repro.obs import read_events

        log_path = tmp_path / "events.jsonl"
        assert main(["fig5", "--scale", "small", "--obs-log", str(log_path)]) == 0
        output = capsys.readouterr().out
        assert f"event log appended to {log_path}" in output
        events = read_events(log_path)
        assert events, "no events recorded"
        run_ids = {event["run_id"] for event in events}
        assert len(run_ids) == 1
        assert all("ts" in event and "seq" in event for event in events)

    def test_obs_serve_ephemeral_port_for_experiment_command(
        self, tmp_path, capsys
    ):
        # Port 0: bind an ephemeral port and report it.  The server runs
        # only during the body (no linger), so this just checks the
        # lifecycle messages and a clean exit.
        assert main(["fig5", "--scale", "small", "--obs-serve", "0"]) == 0
        assert "obs server listening on http://127.0.0.1:" in capsys.readouterr().out

    def test_obs_serve_validation(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig5", "--obs-serve", "65536"])
        assert "--obs-serve must be a TCP port" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["fig5", "--obs-serve", "0", "--obs-serve-linger", "-1"])
        assert "--obs-serve-linger must be >= 0" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["fig5", "--obs-sample", "0"])
        assert "--obs-sample must be positive" in capsys.readouterr().err

    def test_pipeline_obs_log_routes_run_events(self, tmp_path, capsys):
        from repro.graph.stream import EdgeRecord, write_edge_records
        from repro.obs import read_events

        trace = tmp_path / "trace.csv"
        records = [
            EdgeRecord(time=float(w), src=f"h{i % 4}", dst=f"e{i % 9}", weight=1.0)
            for w in range(2)
            for i in range(20)
        ]
        write_edge_records(records, trace)
        log_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "pipeline", "run",
                    "--input", str(trace),
                    "--checkpoint-dir", str(tmp_path / "ckpt"),
                    "--obs-log", str(log_path),
                ]
            )
            == 0
        )
        names = [event["event"] for event in read_events(log_path)]
        assert "pipeline.run.start" in names
        assert "pipeline.window" in names
        assert "pipeline.run.finish" in names

    def test_obs_sample_records_series_alongside_snapshot(self, tmp_path, capsys):
        out = tmp_path / "obs.json"
        assert (
            main(
                [
                    "fig5", "--scale", "small",
                    "--obs-sample", "0.01",
                    "--obs-out", str(out),
                ]
            )
            == 0
        )
        assert out.exists()


class TestServeCli:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.shards == 4
        assert args.window_records == 256
        assert args.queue_capacity == 4096
        assert args.serve_max_restarts == 2
        assert args.serve_distance == "sdice"
        assert args.serve_for is None

    def test_serve_flags_land_in_namespace(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "9000", "--shards", "8",
                "--window-records", "64", "--queue-capacity", "512",
                "--serve-max-restarts", "0", "--serve-distance", "jaccard",
                "--serve-for", "1.5", "--scheme", "ut", "--k", "20",
            ]
        )
        assert args.port == 9000
        assert args.shards == 8
        assert args.window_records == 64
        assert args.queue_capacity == 512
        assert args.serve_max_restarts == 0
        assert args.serve_distance == "jaccard"
        assert args.serve_for == 1.5
        assert args.scheme == "ut"
        assert args.k == 20

    def test_serve_rejects_bad_port_and_duration(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "70000", "--serve-for", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--serve-for", "-1"])

    def test_serve_rejects_unknown_distance(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--serve-distance", "cosine"])

    def test_list_mentions_serve(self, capsys):
        assert main(["list"]) == 0
        assert "serve" in capsys.readouterr().out

    def test_serve_replays_trace_and_serves_http(self, tmp_path, capsys):
        import threading
        import urllib.request

        from repro.graph.stream import EdgeRecord, write_edge_records

        trace = tmp_path / "trace.csv"
        records = [
            EdgeRecord(time=float(i), src=f"h{i % 5}", dst=f"e{i % 9}", weight=1.0)
            for i in range(64)
        ]
        write_edge_records(records, trace)

        statuses = {}

        def probe():
            # Wait for the "listening on" line to learn the ephemeral port.
            for _ in range(400):
                output = capsys.readouterr()
                statuses.setdefault("stdout", "")
                statuses["stdout"] += output.out
                if "listening on" in statuses["stdout"]:
                    break
                threading.Event().wait(0.01)
            for line in statuses["stdout"].splitlines():
                if "listening on" in line:
                    url = line.rsplit(" ", 1)[-1]
                    with urllib.request.urlopen(f"{url}/status", timeout=5) as reply:
                        statuses["code"] = reply.status
                    return

        prober = threading.Thread(target=probe, daemon=True)
        prober.start()
        assert (
            main(
                [
                    "serve", "--input", str(trace), "--port", "0",
                    "--window-records", "32", "--serve-for", "1.0",
                ]
            )
            == 0
        )
        prober.join(timeout=5)
        assert "replayed" in statuses["stdout"]
        assert statuses.get("code") == 200
