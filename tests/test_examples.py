"""Every shipped example must run to completion.

The examples are part of the public contract (README links them); this
guard executes each one's ``main()`` in-process so API drift breaks CI
rather than users.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_directory_populated():
    names = {path.stem for path in EXAMPLE_SCRIPTS}
    assert "quickstart" in names
    assert len(names) >= 7


@pytest.mark.parametrize(
    "path", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs(path, capsys):
    module = load_example(path)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"
