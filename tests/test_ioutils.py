"""Durability contracts of the shared IO primitives.

The interesting property is *which* file descriptors get fsynced, not just
that the bytes land: a rename is only crash-durable once the containing
directory's inode is flushed, so these tests record every ``os.fsync``
call and assert the directory was among them.
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.ioutils import append_line, atomic_write, file_sha256, fsync_dir


class FsyncRecorder:
    """Monkeypatch target: remembers what kind of fd each fsync flushed."""

    def __init__(self):
        self.calls = []
        self._real = os.fsync

    def __call__(self, fd):
        kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
        self.calls.append(kind)
        self._real(fd)


@pytest.fixture
def recorder(monkeypatch):
    rec = FsyncRecorder()
    monkeypatch.setattr(os, "fsync", rec)
    return rec


class TestAtomicWriteDurability:
    def test_fsyncs_file_then_directory(self, tmp_path, recorder):
        # The rename itself is atomic, but only the directory fsync makes
        # it durable — a crash right after os.replace() must not lose the
        # new name.  Regression test: the directory flush must happen and
        # must come after the file flush.
        with atomic_write(tmp_path / "out.json", "w") as handle:
            handle.write("{}")
        assert "file" in recorder.calls
        assert "dir" in recorder.calls
        assert recorder.calls.index("file") < recorder.calls.index("dir")

    def test_fsyncs_directory_on_overwrite_too(self, tmp_path, recorder):
        target = tmp_path / "out.json"
        target.write_text("old")
        recorder.calls.clear()
        with atomic_write(target, "w") as handle:
            handle.write("new")
        assert "dir" in recorder.calls
        assert target.read_text() == "new"

    def test_no_directory_fsync_when_body_raises(self, tmp_path, recorder):
        # On error the temp file is discarded and the destination untouched;
        # there is no rename to make durable.
        with pytest.raises(RuntimeError):
            with atomic_write(tmp_path / "out.json", "w") as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert "dir" not in recorder.calls
        assert not (tmp_path / "out.json").exists()
        assert list(tmp_path.iterdir()) == []


class TestAppendLineDurability:
    def test_first_append_fsyncs_directory(self, tmp_path, recorder):
        append_line(tmp_path / "log.jsonl", "one")
        assert recorder.calls and recorder.calls[-1] == "dir"

    def test_later_appends_fsync_file_only(self, tmp_path, recorder):
        path = tmp_path / "log.jsonl"
        append_line(path, "one")
        recorder.calls.clear()
        append_line(path, "two")
        assert "file" in recorder.calls
        assert "dir" not in recorder.calls
        assert path.read_text() == "one\ntwo\n"


class TestFsyncDir:
    def test_flushes_a_directory_fd(self, tmp_path, recorder):
        fsync_dir(tmp_path)
        assert recorder.calls == ["dir"]


class TestFileSha256:
    def test_matches_known_digest(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"abc")
        assert file_sha256(path) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
