"""Calibration harness for the enterprise generator.

Searches the generator's parameter space for settings that reproduce all
of the paper's qualitative shape checks at once (Figure 3a orderings,
Figure 4 robustness ordering, Figure 5 TT dominance, Figure 6 behaviour).
The committed `EnterpriseParams` defaults came out of runs of this script;
it is kept for re-calibration when the generator evolves.

Run:  python tools/tune_enterprise.py
"""

import itertools
import numpy as np

from repro.datasets.enterprise import EnterpriseFlowGenerator, EnterpriseParams
from repro.experiments.config import make_schemes, application_schemes
from repro.experiments.fig2_roc import identity_roc_for_schemes
from repro.core.distances import get_distance
from repro.core.roc import roc_set_query
from repro.apps.masquerading import MasqueradeDetector, masquerade_accuracy
from repro.perturb.edge_perturbation import perturb_graph
from repro.perturb.masquerade import apply_masquerade


def evaluate(params: EnterpriseParams) -> dict:
    data = EnterpriseFlowGenerator(params).generate()
    g0, g1 = data.graphs[0], data.graphs[1]
    hosts = data.local_hosts
    shel = get_distance("shel")

    # F3a: identity AUC (shel)
    schemes = make_schemes(10, 0.1, (3, 5, 7))
    ident = identity_roc_for_schemes(g0, g1, schemes, "shel", hosts)
    f3 = {k: v.mean_auc for k, v in ident.items()}

    apps = application_schemes(10, 0.1)
    sigs0 = {label: scheme.compute_all(g0, hosts) for label, scheme in apps.items()}

    # F4: direct robustness at both intensities
    rob = {}
    for intensity in (0.1, 0.4):
        perturbed = perturb_graph(g0, intensity, intensity, rng=5)
        rob[intensity] = {}
        for label, scheme in apps.items():
            sh = scheme.compute_all(perturbed, hosts)
            rob[intensity][label] = float(
                np.mean([1 - shel(sigs0[label][h], sh[h]) for h in hosts])
            )

    # F5: multiusage AUC (shel)
    positives = data.positives_by_query()
    f5 = {
        label: roc_set_query(sigs0[label], positives, shel, candidates=hosts).mean_auc
        for label in apps
    }

    # F6: masquerading accuracy at small f (l=5, c=5) and l-monotonicity probe
    f6 = {}
    f6_l1 = {}
    masq, plan = apply_masquerade(g1, fraction=0.05, candidates=hosts, seed=99)
    for label, scheme in apps.items():
        sig_next = scheme.compute_all(masq, hosts)
        for budget, sink in ((1, f6_l1), (5, f6)):
            det = MasqueradeDetector(scheme, shel, top_matches=budget, threshold_scale=5)
            res = det.detect(g0, masq, population=hosts,
                             signatures_now=sigs0[label], signatures_next=sig_next)
            sink[label] = masquerade_accuracy(res, plan)

    checks = {
        "f3_rwr3_ge_tt": f3["RWR^3"] >= f3["TT"] - 0.003,
        "f3_ut_last": f3["UT"] <= min(f3["TT"], f3["RWR^3"]),
        "f3_ut_sane": f3["UT"] >= 0.8,
        "f3_rwr3_best_rwr": f3["RWR^3"] >= max(f3["RWR^5"], f3["RWR^7"]),
        "f4_tt_first": all(rob[i]["TT"] >= max(rob[i].values()) - 1e-9 for i in rob),
        "f4_ut_last": all(rob[i]["UT"] <= min(rob[i].values()) + 1e-9 for i in rob),
        "f5_tt_first": f5["TT"] >= max(f5.values()) - 1e-9,
        "f6_rwr_first": f6["RWR"] >= max(f6.values()) - 1e-9,
        "f6_l_monotone": all(f6[l] >= f6_l1[l] - 0.02 for l in f6),
    }
    return {"f3": f3, "rob": rob, "f5": f5, "f6": f6, "f6_l1": f6_l1,
            "checks": checks, "score": sum(checks.values())}


def main():
    base = dict(num_hosts=200, num_external=1700, num_windows=2,
                num_alias_users=14, seed=7)
    grid = itertools.product(
        [0.2, 0.35, 0.5],   # pool_tail_fraction
        [35, 45],           # mean_sessions
        [0.1, 0.2],         # noise_share
        [0.2, 0.3],         # drift
    )
    best = []
    for tail, sessions, noise, drift in grid:
        params = EnterpriseParams(
            pool_tail_fraction=tail, mean_sessions=sessions,
            noise_share=noise, drift=drift, **base)
        result = evaluate(params)
        failed = [k for k, v in result["checks"].items() if not v]
        print(f"tail={tail} sess={sessions} noise={noise} drift={drift} "
              f"score={result['score']}/9 failed={failed}", flush=True)
        print(f"   f3={ {k: round(v,3) for k,v in result['f3'].items()} }")
        print(f"   rob={ {i: {k: round(v,3) for k,v in r.items()} for i,r in result['rob'].items()} }")
        print(f"   f5={ {k: round(v,3) for k,v in result['f5'].items()} } "
              f"f6={ {k: round(v,3) for k,v in result['f6'].items()} } "
              f"f6_l1={ {k: round(v,3) for k,v in result['f6_l1'].items()} }")
        best.append((result["score"], tail, sessions, noise, drift))
    best.sort(reverse=True)
    print("TOP:", best[:5])


if __name__ == "__main__":
    main()
