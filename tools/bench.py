#!/usr/bin/env python
"""Perf regression harness: scalar vs. batch distance kernels.

Times the vectorized kernels in :mod:`repro.core.packed` against the
scalar fallback loops *through the same call sites* (the scalar side runs
under :func:`repro.core.packed.batch_disabled`), asserts numerical
agreement, and writes a machine-readable record to
``benchmarks/perf/BENCH_distance_kernels.json``.

Benchmarked operations:

- ``uniqueness_all_pairs``: all-pairs uniqueness over a synthetic window
  (the acceptance gate: >= 10x at n=2000 for every distance)
- ``cross_identification``: the n x n identity score matrix between two
  consecutive windows (the fig2/fig3 inner loop)
- ``fig1_end_to_end`` / ``fig3_end_to_end``: full experiment drivers at
  small scale, serial vs. batch

A second stage (``--stage incremental``) benchmarks the incremental
sliding-window signature engine against per-window full recomputation on a
backbone-plus-churn trace, asserts byte-identical outputs, and writes
``benchmarks/perf/BENCH_incremental_engine.json``.

A third stage (``--stage shm``) benchmarks the zero-copy shared-memory
recompute engine (:mod:`repro.parallel.shm`) against both the serial path
and a pickle-per-task ``parallel_map`` baseline at 1/2/4/8 workers,
asserts byte-identical signatures, and writes
``benchmarks/perf/BENCH_shared_memory.json``.  The vs-pickle gate (>= 2x
at 4 workers) is core-count independent and always enforced; the
vs-serial scaling gate only fires on hosts with >= 4 CPUs.

A fourth stage (``--stage sketch``) maps the memory-budgeted sketch
tier's accuracy-vs-memory curve (:mod:`repro.streaming.tier`) on a
large-external-universe enterprise trace (100k+ graph nodes in full
mode), measures top-k overlap and persistence error against the exact
signatures at each budget, benchmarks the merge-based
``SketchTier.advance`` against the old full re-observation path, and
writes ``benchmarks/perf/BENCH_sketch_tier.json``.  Gates (full mode):
mean top-k overlap >= 0.9 at the default budget, and tier bytes >= 4x
below the exact graph's adjacency at the same per-entry cost.

A fifth stage (``--stage service_slo``) drives a deterministic seeded
load profile (:mod:`repro.service.loadgen`) through an in-process
:class:`~repro.service.http.SignatureService`, writes per-endpoint
p50/p95/p99 latency, the cross-shard merge of the per-shard breaker
digests, the service's own ``/slo`` burn-rate verdicts and a
``/trace/<id>`` round-trip to ``BENCH_service_slo.json``, and gates on
every digest quantile landing within its advertised relative accuracy of
the exact order statistic.

A sixth stage (``--stage history``) fills a
:class:`~repro.store.history.HistoryStore` with windows of synthetic
signatures (>= 100k stored rows in full mode), then times "who looked
like X" queries through the on-disk LSH band index against the
brute-force decode of the whole window.  Gates: every planted exact
duplicate must surface at distance 0 through both paths, the indexed
path must be at least MIN_HISTORY_INDEX_SPEEDUP faster at full scale,
and compaction must leave every query answer byte-identical.

Usage::

    python tools/bench.py                 # full run, n=2000 windows
    python tools/bench.py --quick         # CI smoke: small n, agreement only
    python tools/bench.py --stage incremental   # delta-engine stage only
    python tools/bench.py --stage shm           # shared-memory stage only
    python tools/bench.py --stage sketch        # sketch-tier stage only
    python tools/bench.py --stage service_slo   # service SLO/latency stage
    python tools/bench.py --stage history       # history-store query stage
    python tools/bench.py --stage all
    python tools/bench.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import obs
from repro.core.distances import available_distances
from repro.core.packed import SignaturePack, batch_disabled, cross_matrix
from repro.core.properties import uniqueness_values
from repro.core.signature import Signature

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_distance_kernels.json"
INCREMENTAL_OUTPUT = (
    REPO_ROOT / "benchmarks" / "perf" / "BENCH_incremental_engine.json"
)
SHM_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_shared_memory.json"
SKETCH_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_sketch_tier.json"
SERVICE_SLO_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_service_slo.json"
HISTORY_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_history_store.json"
AGREEMENT_TOLERANCE = 1e-9

#: History-store acceptance gate (full mode): with >= HISTORY_GATE_ROWS
#: signatures stored, an LSH-indexed lookalike query must beat the
#: brute-force decode of the queried window by this factor.
MIN_HISTORY_INDEX_SPEEDUP = 5.0
HISTORY_GATE_ROWS = 100_000

#: Incremental-engine acceptance gate: schemes whose mean dirty fraction is
#: at most MAX_DIRTY_FRACTION must show at least MIN_INCREMENTAL_SPEEDUP.
MIN_INCREMENTAL_SPEEDUP = 3.0
MAX_DIRTY_FRACTION = 0.10

#: Shared-memory engine acceptance gates, both measured at
#: SHM_GATE_WORKERS workers.  The vs-pickle ratio compares equal
#: parallelism (only the transport differs), so it transfers across core
#: counts and is enforced everywhere; the vs-serial ratio needs real
#: cores and is only enforced when the host has >= SHM_GATE_WORKERS CPUs.
MIN_SHM_SPEEDUP = 2.0
SHM_GATE_WORKERS = 4

#: Sketch-tier acceptance gates, both evaluated at the tier's default
#: budget on the full-mode trace: mean top-k overlap with the exact
#: signatures, and how far tier state sits below the exact graph's
#: adjacency (both sides priced at HOT_ENTRY_BYTES per entry, so the
#: ratio compares like with like).
MIN_SKETCH_OVERLAP = 0.9
MIN_SKETCH_MEMORY_RATIO = 4.0

#: Service-SLO stage gate: a LatencyDigest built from the load run's exact
#: latencies must land every reported quantile within its advertised
#: relative accuracy of the true order statistic (plus float slop).
DIGEST_ERROR_SLOP = 1e-6


def synthetic_window(count: int, k: int, seed: int, churn: float = 0.0) -> dict:
    """A seeded window of ``count`` signatures with ``k`` entries each.

    Members are drawn from a shared vocabulary sized for realistic overlap
    (a few percent of pairs share members, like hosts sharing peers).
    ``churn`` resamples that fraction of each signature's members — use it
    to derive a correlated "next window" from the same seed.
    """
    rng = random.Random(seed)
    vocab = [f"peer{i}" for i in range(max(4 * k, count // 2))]
    signatures = {}
    for i in range(count):
        owner = f"host{i}"
        members = rng.sample(vocab, k)
        if churn:
            fresh = rng.sample(vocab, k)
            members = [
                fresh[j] if rng.random() < churn else member
                for j, member in enumerate(members)
            ]
        signatures[owner] = Signature(
            owner, {member: rng.uniform(0.5, 20.0) for member in set(members)}
        )
    return signatures


def timed(function, repeats: int = 1):
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def check_agreement(op: str, distance: str, batch_values, scalar_values) -> float:
    batch_array = np.asarray(batch_values, dtype=np.float64)
    scalar_array = np.asarray(scalar_values, dtype=np.float64)
    worst = float(np.abs(batch_array - scalar_array).max()) if batch_array.size else 0.0
    if worst > AGREEMENT_TOLERANCE:
        raise AssertionError(
            f"{op}/{distance}: batch and scalar disagree by {worst:.3e} "
            f"(tolerance {AGREEMENT_TOLERANCE:.0e})"
        )
    return worst


def bench_uniqueness(n: int, k: int, repeats: int, records: list) -> None:
    """All-pairs uniqueness: the paper's O(n^2) property measurement."""
    signatures = synthetic_window(n, k, seed=7)
    nodes = sorted(signatures)
    for distance in available_distances():
        batch_wall, batch_result = timed(
            lambda: uniqueness_values(signatures, distance, nodes=nodes),
            repeats=repeats,
        )
        with batch_disabled():
            scalar_wall, scalar_result = timed(
                lambda: uniqueness_values(signatures, distance, nodes=nodes)
            )
        worst = check_agreement(
            "uniqueness_all_pairs", distance, batch_result, scalar_result
        )
        records.append(
            {
                "op": "uniqueness_all_pairs",
                "distance": distance,
                "n": n,
                "pairs": n * (n - 1) // 2,
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
                "max_abs_diff": worst,
            }
        )


def bench_cross_identification(n: int, k: int, repeats: int, records: list) -> None:
    """The n x n score matrix between two windows (fig2/fig3 inner loop)."""
    signatures_now = synthetic_window(n, k, seed=7)
    signatures_next = synthetic_window(n, k, seed=7, churn=0.3)
    order = sorted(signatures_now)
    pack_now = SignaturePack.from_signatures(signatures_now, order=order)
    pack_next = SignaturePack.from_signatures(signatures_next, order=order)
    for distance in available_distances():
        batch_wall, batch_matrix = timed(
            lambda: cross_matrix(pack_now, pack_next, distance), repeats=repeats
        )
        with batch_disabled():
            scalar_wall, scalar_matrix = timed(
                lambda: cross_matrix(pack_now, pack_next, distance)
            )
        worst = check_agreement(
            "cross_identification", distance, batch_matrix, scalar_matrix
        )
        records.append(
            {
                "op": "cross_identification",
                "distance": distance,
                "n": n,
                "pairs": n * n,
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
                "max_abs_diff": worst,
            }
        )


def bench_experiments(records: list) -> None:
    """End-to-end fig1/fig3 at small scale, scalar vs. batch paths."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.fig1_properties import run_fig1
    from repro.experiments.fig3_auc import run_fig3

    config = ExperimentConfig(scale="small")
    for op, runner in [
        ("fig1_end_to_end", lambda: run_fig1("network", config)),
        ("fig3_end_to_end", lambda: run_fig3("network", config)),
    ]:
        batch_wall, _ = timed(runner)
        with batch_disabled():
            scalar_wall, _ = timed(runner)
        records.append(
            {
                "op": op,
                "distance": "all",
                "n": "small-scale",
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
            }
        )


def bench_obs_overhead(n: int, k: int, repeats: int, records: list) -> None:
    """Cost of the observability instrumentation on the hot kernel path.

    ``disabled`` times the instrumented kernels under the default no-op
    registry (the zero-overhead contract); ``enabled`` times them under a
    collecting :class:`repro.obs.MetricsRegistry`.
    """
    signatures = synthetic_window(n, k, seed=7)
    nodes = sorted(signatures)

    def run() -> dict:
        return uniqueness_values(signatures, "jaccard", nodes=nodes)

    disabled_wall, _ = timed(run, repeats=repeats)
    registry = obs.MetricsRegistry()

    def run_enabled() -> dict:
        with obs.use_registry(registry):
            return run()

    enabled_wall, _ = timed(run_enabled, repeats=repeats)
    records.append(
        {
            "op": "obs_overhead",
            "distance": "jaccard",
            "n": n,
            "scalar_wall_s": round(enabled_wall, 6),
            "batch_wall_s": round(disabled_wall, 6),
            "speedup": round(enabled_wall / disabled_wall, 2),
            "note": "scalar=collecting registry, batch=no-op registry; "
            "speedup column is the enabled/disabled overhead ratio",
        }
    )


#: Scheme line-up for the incremental-engine stage.
INCREMENTAL_SCHEMES = [
    ("tt", {}),
    ("ut", {}),
    ("it", {}),
    ("rwr", {"max_hops": 3}),
    ("rwr-push", {}),
]


def incremental_trace(
    num_nodes: int, num_windows: int, churn_fraction: float, seed: int
) -> list:
    """A backbone-plus-churn record trace for the incremental engine.

    Every window repeats a stable weighted ring ``v_i -> v_{i+1}`` (so the
    node set and dangling set never change and unchanged edges produce no
    delta entries), plus a rotating block of ``churn_fraction * num_nodes``
    extra edges whose position shifts each window — the sparse per-window
    change a sliding deployment actually sees.
    """
    from repro.graph.stream import EdgeRecord

    rng = random.Random(seed)
    churn_size = max(1, int(num_nodes * churn_fraction))
    records = []
    for window in range(num_windows):
        t = window + 0.5
        for i in range(num_nodes):
            records.append(
                EdgeRecord(
                    time=t,
                    src=f"v{i}",
                    dst=f"v{(i + 1) % num_nodes}",
                    weight=1.0 + (i % 7) * 0.25,
                )
            )
        start = (window * churn_size) % num_nodes
        for j in range(churn_size):
            records.append(
                EdgeRecord(
                    time=t,
                    src=f"v{(start + j) % num_nodes}",
                    dst=f"v{(start + j + num_nodes // 2) % num_nodes}",
                    weight=rng.uniform(0.5, 3.0),
                )
            )
    records.sort()
    return records


def bench_incremental(
    num_nodes: int, num_windows: int, k: int, repeats: int, records_out: list
) -> None:
    """Incremental chained recompute vs. per-window full recompute.

    Both passes run over identically-constructed sliding sequences and the
    resulting signature maps are asserted equal window by window (the
    engine's byte-identity contract).  ``dirty_fraction`` is the mean
    fraction of the population each scheme recomputes per transition —
    the quantity the speedup gate conditions on.
    """
    from repro.core.scheme import create_scheme
    from repro.graph.windows import GraphSequence

    trace = incremental_trace(num_nodes, num_windows, churn_fraction=0.01, seed=23)

    def build_sequence() -> GraphSequence:
        return GraphSequence.from_sliding_records(trace, num_windows=num_windows)

    for name, params in INCREMENTAL_SCHEMES:
        scheme = create_scheme(name, k=k, **params)
        # Separate sequences per pass so neither benefits from matrix
        # caches warmed by the other.
        seq_full = build_sequence()
        seq_inc = build_sequence()

        full_wall, full_maps = timed(
            lambda: [scheme.compute_all(graph) for graph in seq_full.graphs],
            repeats=repeats,
        )

        def run_incremental():
            maps = [scheme.compute_all(seq_inc.graphs[0])]
            for t in range(1, len(seq_inc)):
                maps.append(
                    scheme.compute_all(
                        seq_inc.graphs[t],
                        delta=seq_inc.deltas[t - 1],
                        previous=maps[-1],
                    )
                )
            return maps

        inc_wall, inc_maps = timed(run_incremental, repeats=repeats)
        if full_maps != inc_maps:
            raise AssertionError(
                f"incremental engine diverged from full recompute for {name}"
            )

        dirty_total = 0
        for t in range(1, len(seq_inc)):
            dirty = scheme.dirty_nodes(seq_inc.graphs[t], seq_inc.deltas[t - 1])
            dirty_total += num_nodes if dirty is None else len(dirty)
        dirty_fraction = dirty_total / (num_nodes * (len(seq_inc) - 1))

        records_out.append(
            {
                "op": "incremental_vs_full",
                "scheme": scheme.describe(),
                "n": num_nodes,
                "windows": num_windows,
                "dirty_fraction": round(dirty_fraction, 4),
                "scalar_wall_s": round(full_wall, 6),
                "batch_wall_s": round(inc_wall, 6),
                "speedup": round(full_wall / inc_wall, 2),
                "note": "scalar=full per-window recompute, batch=delta engine",
            }
        )


#: Scheme line-up for the shared-memory stage (the fig1/fig3 recompute
#: kernels plus the service's push scheme; unbounded RWR is excluded on
#: purpose — it is not partition-safe, so the engine runs it whole-batch
#: and there is nothing to parallelize).  The third element names the
#: gates the scheme can physically demonstrate: transport-bound schemes
#: (cheap per-node compute, the graph dominates the wire) gate on
#: vs-pickle, compute-bound schemes gate on vs-serial scaling.
SHM_SCHEMES = [
    ("tt", {}, ("pickle",)),
    ("ut", {}, ("pickle",)),
    ("it", {}, ("pickle",)),
    ("rwr", {"max_hops": 3}, ("serial",)),
    ("rwr-push", {}, ("serial",)),
]


def shm_graph(num_nodes: int, out_degree: int, seed: int):
    """A seeded communication graph heavy enough to expose transport cost."""
    from repro.graph.comm_graph import CommGraph

    rng = random.Random(seed)
    graph = CommGraph()
    for i in range(num_nodes):
        src = f"h{i}"
        for _ in range(out_degree):
            dst = f"h{rng.randrange(num_nodes)}"
            if dst != src:
                graph.add_edge(src, dst, rng.uniform(0.5, 8.0))
    return graph


def _pickle_chunk(task):
    """parallel_map baseline worker: the whole graph rides in the pickle.

    This is exactly what a naive ``parallel_map`` port of the recompute
    loop pays per chunk — the cost the shared-memory engine exists to
    remove.  Returns the same compact rows the shm workers return, so the
    two baselines merge identically.
    """
    graph, scheme, chunk = task
    result = scheme._compute_batch(graph, chunk)
    return [(node, result[node].entries) for node in result]


def _pickle_parallel_compute(scheme, graph, targets, workers: int, message_size: int):
    """Pickle-transport equivalent of ``ShmEngine.compute_batch``.

    Same chunk geometry as the engine (so the only variable is how bytes
    reach the workers), merged in submission order for determinism.
    """
    from repro.core.signature import Signature as _Signature
    from repro.parallel import parallel_map

    chunk = max(1, min(message_size, -(-len(targets) // max(workers, 1))))
    tasks = [
        (graph, scheme, targets[start : start + chunk])
        for start in range(0, len(targets), chunk)
    ]
    merged = {}
    for rows in parallel_map(_pickle_chunk, tasks, jobs=workers):
        for node, entries in rows:
            merged[node] = _Signature(node, dict(entries))
    return {node: merged[node] for node in targets}


def bench_shm(
    num_nodes: int,
    out_degree: int,
    worker_counts,
    repeats: int,
    records_out: list,
    schemes=None,
) -> None:
    """Serial vs pickle-``parallel_map`` vs shared-memory batch recompute.

    All three paths are asserted byte-identical per scheme and worker
    count (``Signature.entries`` equality on the full population).  The
    shm engine is warmed with one untimed dispatch per worker count —
    steady-state is its honest number (a persistent engine forks its pool
    and publishes the graph once per run, not once per window), while the
    pickle baseline's per-call pool is inherent to ``parallel_map`` and
    stays inside its timing.
    """
    from repro.core.scheme import create_scheme
    from repro.parallel.shm import DEFAULT_MESSAGE_SIZE, ShmEngine

    graph = shm_graph(num_nodes, out_degree, seed=11)
    population = [node for node in graph.nodes() if graph.out_strength(node) > 0]

    for name, params, gates in schemes if schemes is not None else SHM_SCHEMES:
        scheme = create_scheme(name, k=10, **params)
        serial_wall, serial_map = timed(
            lambda: scheme.compute_all(graph, population), repeats=repeats
        )
        for workers in worker_counts:
            pickle_wall, pickle_map = timed(
                lambda: _pickle_parallel_compute(
                    scheme, graph, population, workers, DEFAULT_MESSAGE_SIZE
                ),
                repeats=repeats,
            )
            with ShmEngine(jobs=workers) as engine:
                engine.compute_batch(scheme, graph, population)  # warm pool
                shm_wall, shm_map = timed(
                    lambda: engine.compute_batch(scheme, graph, population),
                    repeats=repeats,
                )
            for label, candidate in (("pickle", pickle_map), ("shm", shm_map)):
                if list(candidate) != list(serial_map) or any(
                    candidate[node].entries != serial_map[node].entries
                    for node in serial_map
                ):
                    raise AssertionError(
                        f"{label} path diverged from serial for {name} "
                        f"at {workers} workers"
                    )
            records_out.append(
                {
                    "op": "shm_batch_recompute",
                    "scheme": scheme.describe(),
                    "n": num_nodes,
                    "workers": workers,
                    "gates": list(gates),
                    "serial_wall_s": round(serial_wall, 6),
                    "pickle_wall_s": round(pickle_wall, 6),
                    "shm_wall_s": round(shm_wall, 6),
                    "speedup_vs_serial": round(serial_wall / shm_wall, 2),
                    "speedup_vs_pickle": round(pickle_wall / shm_wall, 2),
                }
            )


def bench_shm_dirty(
    num_nodes: int, num_windows: int, workers: int, repeats: int, records_out: list
) -> None:
    """The pipeline's actual workload: dirty-set recompute across windows.

    Chains ``compute_all(delta=..., previous=...)`` over a sliding
    backbone-plus-churn trace under both strategies and asserts the chains
    byte-identical end to end.
    """
    from repro.core.scheme import create_scheme
    from repro.graph.windows import GraphSequence
    from repro.parallel.shm import ShmEngine

    trace = incremental_trace(num_nodes, num_windows, churn_fraction=0.05, seed=29)
    sequence = GraphSequence.from_sliding_records(trace, num_windows=num_windows)
    scheme = create_scheme("tt", k=10)

    def run_chain(strategy, engine=None):
        kwargs = {"strategy": strategy, "engine": engine} if engine else {}
        maps = [scheme.compute_all(sequence.graphs[0], **kwargs)]
        for t in range(1, len(sequence)):
            maps.append(
                scheme.compute_all(
                    sequence.graphs[t],
                    delta=sequence.deltas[t - 1],
                    previous=maps[-1],
                    **kwargs,
                )
            )
        return maps

    serial_wall, serial_maps = timed(lambda: run_chain("serial"), repeats=repeats)
    with ShmEngine(jobs=workers) as engine:
        shm_wall, shm_maps = timed(
            lambda: run_chain("shm", engine), repeats=repeats
        )
    if serial_maps != shm_maps:
        raise AssertionError("shm dirty-set chain diverged from serial")
    records_out.append(
        {
            "op": "shm_dirty_set_chain",
            "scheme": scheme.describe(),
            "n": num_nodes,
            "windows": num_windows,
            "workers": workers,
            "serial_wall_s": round(serial_wall, 6),
            "shm_wall_s": round(shm_wall, 6),
            "speedup_vs_serial": round(serial_wall / shm_wall, 2),
        }
    )


def _add_scanner_hosts(data, num_scanners, draws_per_window, universe, seed):
    """Graft scanner-style sources onto an enterprise trace.

    Scanners (vulnerability probes, crawlers, monitoring fleets) are the
    canonical reason a sketch tier exists: a handful of sources whose
    one-off probes inflate the distinct-destination universe far past
    what exact per-source state can hold, while the hundreds of ordinary
    hosts keep small, repetitive adjacencies.  Each scanner sprays
    ``draws_per_window`` uniform probes into its own ``wild-*`` address
    space, fresh every window.
    """
    rng = np.random.default_rng(seed)
    scanners = [f"scan-{index:03d}" for index in range(num_scanners)]
    for graph in data.graphs.graphs:
        for host in scanners:
            graph.add_left_node(host)
            targets, counts = np.unique(
                rng.integers(0, universe, size=draws_per_window),
                return_counts=True,
            )
            for address, count in zip(targets.tolist(), counts.tolist()):
                graph.add_edge(host, f"wild-{address:07d}", float(count))
    data.local_hosts.extend(scanners)
    return data


def sketch_trace(quick: bool):
    """A two-window enterprise trace plus scanner hosts.

    Full mode pushes the destination universe past 100k distinct graph
    nodes per window — the regime the budgeted tier exists for (exact
    per-source state tracks the universe; tier state tracks the budget).
    The mix is deliberate: ~400 repeat-talker hosts the hot-set knapsack
    can cover exactly, plus 20 scanners whose sprayed probes carry the
    bulk of the distinct-node mass and land in the sketched tail.
    """
    from repro.datasets.enterprise import EnterpriseFlowGenerator, EnterpriseParams

    if quick:
        params = EnterpriseParams(
            num_hosts=80,
            num_external=2500,
            num_windows=2,
            num_alias_users=5,
            seed=3,
        )
        data = EnterpriseFlowGenerator(params).generate()
        return _add_scanner_hosts(
            data, num_scanners=2, draws_per_window=1500, universe=30000, seed=17
        )
    params = EnterpriseParams(
        num_hosts=400,
        num_external=50000,
        mean_sessions=300.0,
        noise_share=0.15,
        num_windows=2,
        num_alias_users=20,
        seed=3,
    )
    data = EnterpriseFlowGenerator(params).generate()
    return _add_scanner_hosts(
        data, num_scanners=20, draws_per_window=16000, universe=1000000, seed=17
    )


def _mean_topk_overlap(exact: dict, approx: dict, hosts) -> float:
    overlaps = [
        len(exact[h].nodes & approx[h].nodes) / len(exact[h].nodes)
        for h in hosts
        if exact[h].nodes
    ]
    return sum(overlaps) / len(overlaps) if overlaps else 1.0


def _persistence_map(now: dict, prev: dict, hosts) -> dict:
    from repro.core.distances import get_distance

    sdice = get_distance("sdice")
    return {
        h: 1.0 - sdice(prev[h], now[h])
        for h in hosts
        if h in now and h in prev
    }


def bench_sketch_accuracy(data, budgets, repeats: int, records_out: list) -> dict:
    """Top-k overlap / persistence error / bytes across the budget curve.

    Returns the summary facts the gates need (exact adjacency bytes and
    the default-budget row).  The exact side is priced at the tier's own
    HOT_ENTRY_BYTES per adjacency entry, so the memory ratio compares
    idealized-compact state on both sides rather than flattering the
    sketch with Python dict overheads.
    """
    from repro.core.scheme import create_scheme
    from repro.streaming.tier import (
        DEFAULT_BUDGET_BYTES,
        HOT_ENTRY_BYTES,
        SketchTierEngine,
    )

    graph_now, graph_next = data.graphs.graphs[0], data.graphs.graphs[1]
    hosts = data.local_hosts
    scheme = create_scheme("tt", k=10)
    exact_now = scheme.compute_all(graph_now, hosts)
    exact_next = scheme.compute_all(graph_next, hosts)
    exact_persistence = _persistence_map(exact_next, exact_now, hosts)
    exact_bytes = (graph_now.num_nodes + graph_now.num_edges) * HOT_ENTRY_BYTES

    default_row = None
    for budget in budgets:
        engine = SketchTierEngine(budget_bytes=budget, seed=3)
        wall, approx_now = timed(
            lambda: scheme.compute_all(
                graph_now, hosts, strategy="sketch", engine=engine
            ),
            repeats=repeats,
        )
        stats = dict(engine.last_stats)
        approx_next = scheme.compute_all(
            graph_next, hosts, strategy="sketch", engine=engine
        )
        overlap = (
            _mean_topk_overlap(exact_now, approx_now, hosts)
            + _mean_topk_overlap(exact_next, approx_next, hosts)
        ) / 2.0
        approx_persistence = _persistence_map(approx_next, approx_now, hosts)
        errors = [
            abs(exact_persistence[h] - approx_persistence[h])
            for h in exact_persistence
            if h in approx_persistence
        ]
        row = {
            "op": "sketch_accuracy_vs_memory",
            "budget_bytes": budget,
            "bytes_used": int(stats["bytes_used"]),
            "hot_nodes": int(stats["hot_nodes"]),
            "tail_nodes": int(stats["tail_nodes"]),
            "cm_width": int(stats["cm_width"]),
            "topk_overlap": round(overlap, 4),
            "persistence_mae": round(
                sum(errors) / len(errors) if errors else 0.0, 4
            ),
            "exact_bytes": exact_bytes,
            "memory_ratio_vs_exact": round(exact_bytes / stats["bytes_used"], 2),
            "wall_s": round(wall, 6),
            "is_default_budget": budget == DEFAULT_BUDGET_BYTES,
        }
        records_out.append(row)
        if row["is_default_budget"]:
            default_row = row
    return {
        "exact_bytes": exact_bytes,
        "graph_nodes": graph_now.num_nodes,
        "graph_edges": graph_now.num_edges,
        "default_row": default_row,
    }


def sketch_advance_buckets(
    num_buckets: int, bucket_size: int, num_sources: int, seed: int
) -> list:
    """Seeded per-bucket record lists for the advance-throughput bench."""
    from repro.graph.stream import EdgeRecord

    rng = random.Random(seed)
    return [
        [
            EdgeRecord(
                time=float(b),
                src=f"h{rng.randrange(num_sources)}",
                dst=f"e{rng.randrange(8 * num_sources)}",
                weight=float(rng.randrange(1, 6)),
            )
            for _ in range(bucket_size)
        ]
        for b in range(num_buckets)
    ]


def bench_sketch_advance(quick: bool, repeats: int, records_out: list) -> None:
    """Merge-based ``SketchTier.advance`` vs the old full re-observation.

    The baseline reproduces the code this PR removed: every advance built
    a fresh window builder and re-observed all retained records —
    O(window_buckets x bucket) record updates per window, against the new
    path's one bucket observation plus sketch merges.
    """
    from collections import deque

    from repro.service.config import ServiceConfig
    from repro.service.shard import SketchTier
    from repro.streaming.stream_schemes import StreamingTopTalkers

    # The regime the merge path targets: shard-sized owner populations
    # with many records per bucket, where re-observation cost scales with
    # window_buckets x bucket while merging scales with owners.
    window_buckets = 4 if quick else 8
    buckets = sketch_advance_buckets(
        num_buckets=10 if quick else 24,
        bucket_size=1024 if quick else 4096,
        num_sources=16 if quick else 24,
        seed=41,
    )
    config = ServiceConfig(
        scheme="tt", k=10, window_buckets=window_buckets, window_records=1
    )

    def run_merge():
        tier = SketchTier(config)
        for bucket in buckets:
            tier.advance(bucket)
        return tier.current

    def run_rebuild():
        retained: deque = deque(maxlen=window_buckets)
        current = None
        for bucket in buckets:
            retained.append(sorted(bucket))
            builder = StreamingTopTalkers(
                k=config.k,
                epsilon=config.streaming_epsilon,
                delta=config.streaming_delta,
                seed=config.seed,
            )
            for part in retained:
                builder.observe_records(part)
            current = builder
        return current

    merge_wall, merge_builder = timed(run_merge, repeats=repeats)
    rebuild_wall, rebuild_builder = timed(run_rebuild, repeats=repeats)
    if set(merge_builder.sources) != set(rebuild_builder.sources):
        raise AssertionError(
            "merge-based advance tracks a different source set than rebuild"
        )
    records_out.append(
        {
            "op": "sketch_advance_throughput",
            "windows": len(buckets),
            "window_buckets": window_buckets,
            "records_per_bucket": len(buckets[0]),
            "rebuild_wall_s": round(rebuild_wall, 6),
            "merge_wall_s": round(merge_wall, 6),
            "speedup_vs_rebuild": round(rebuild_wall / merge_wall, 2),
            "rebuild_windows_per_s": round(len(buckets) / rebuild_wall, 1),
            "merge_windows_per_s": round(len(buckets) / merge_wall, 1),
        }
    )


def warm_up() -> None:
    """Prime BLAS threads / page caches so first-call cost is not timed."""
    signatures = synthetic_window(64, 10, seed=1)
    pack = SignaturePack.from_signatures(signatures)
    for distance in available_distances():
        cross_matrix(pack, pack, distance)
        uniqueness_values(signatures, distance)


def _write_payload(payload: dict, output: Path) -> None:
    """Write a bench payload and mirror it to the repo root.

    The mirror (``<repo>/BENCH_<name>.json``) keeps the cross-PR perf
    trajectory greppable without digging into benchmarks/; diff it across
    commits.
    """
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    root_output = REPO_ROOT / f"BENCH_{payload['benchmark']}.json"
    if root_output != output:
        root_output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"mirrored bench record to {root_output}")
    print(f"wrote {output}")


def _print_records(records: list, label_key: str) -> None:
    width = max(len(record["op"]) for record in records)
    label_width = max(len(str(record[label_key])) for record in records)
    for record in records:
        print(
            f"{record['op']:<{width}}  {str(record[label_key]):<{label_width}}"
            f"  scalar {record['scalar_wall_s']:>9.4f}s"
            f"  batch {record['batch_wall_s']:>9.4f}s"
            f"  speedup {record['speedup']:>8.2f}x"
        )


def _run_kernels_stage(args) -> int:
    n = 200 if args.quick else args.n
    repeats = 1 if args.quick else 3

    warm_up()
    records: list = []
    bench_registry = obs.MetricsRegistry() if args.obs_out else obs.NULL_REGISTRY
    with obs.use_registry(bench_registry):
        with obs.span("bench.distance_kernels"):
            bench_uniqueness(n, args.k, repeats, records)
            bench_cross_identification(min(n, 1000), args.k, repeats, records)
            if not args.quick:
                bench_experiments(records)
    bench_obs_overhead(n, args.k, repeats, records)
    if args.obs_out:
        obs.write_json(
            args.obs_out,
            bench_registry.snapshot(),
            meta={"command": "bench", "n": n, "k": args.k},
        )
        print(f"observability payload written to {args.obs_out}")

    payload = {
        "benchmark": "distance_kernels",
        "mode": "quick" if args.quick else "full",
        "window": {"n": n, "k": args.k},
        "agreement_tolerance": AGREEMENT_TOLERANCE,
        "results": records,
    }
    _write_payload(payload, args.output if args.output else DEFAULT_OUTPUT)
    _print_records(records, "distance")

    gate = [
        record
        for record in records
        if record["op"] == "uniqueness_all_pairs" and record["speedup"] < 10
    ]
    if not args.quick and gate:
        print(
            "FAIL: speedup below 10x for: "
            + ", ".join(record["distance"] for record in gate)
        )
        return 1
    return 0


def _run_incremental_stage(args) -> int:
    num_nodes = 200 if args.quick else 1200
    num_windows = 6 if args.quick else 10
    repeats = 1 if args.quick else 3

    records: list = []
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with obs.span("bench.incremental_engine"):
            bench_incremental(num_nodes, num_windows, args.k, repeats, records)
    counters = {
        key: value
        for key, value in registry.counters_flat().items()
        if key.startswith(("incremental.", "matrix_cache."))
    }

    payload = {
        "benchmark": "incremental_engine",
        "mode": "quick" if args.quick else "full",
        "trace": {"nodes": num_nodes, "windows": num_windows, "churn_fraction": 0.01},
        "gate": {
            "min_speedup": MIN_INCREMENTAL_SPEEDUP,
            "max_dirty_fraction": MAX_DIRTY_FRACTION,
        },
        "results": records,
        "obs_counters": counters,
    }
    output = (
        args.output
        if args.output and args.stage == "incremental"
        else INCREMENTAL_OUTPUT
    )
    _write_payload(payload, output)
    _print_records(records, "scheme")
    for record in records:
        print(
            f"  {record['scheme']}: dirty_fraction={record['dirty_fraction']:.3f}"
        )

    gate = [
        record
        for record in records
        if record["dirty_fraction"] <= MAX_DIRTY_FRACTION
        and record["speedup"] < MIN_INCREMENTAL_SPEEDUP
    ]
    if not args.quick and gate:
        print(
            f"FAIL: incremental speedup below {MIN_INCREMENTAL_SPEEDUP}x at "
            f"<= {MAX_DIRTY_FRACTION:.0%} dirty for: "
            + ", ".join(record["scheme"] for record in gate)
        )
        return 1
    return 0


def _run_shm_stage(args) -> int:
    from repro.parallel import available_cpus
    from repro.parallel.shm import active_segment_names

    num_nodes = 800 if args.quick else 1500
    out_degree = 16 if args.quick else 20
    worker_counts = (1, 2, 4) if args.quick else (1, 2, 4, 8)
    repeats = 3
    cores = available_cpus()
    # rwr-push is compute-bound (seconds per window even on small graphs):
    # skipped in the CI smoke, and in the full run it gets its own small
    # graph and single repeat so the stage stays in minutes, not hours.
    cheap_schemes = [entry for entry in SHM_SCHEMES if entry[0] != "rwr-push"]
    heavy_schemes = [] if args.quick else [
        entry for entry in SHM_SCHEMES if entry[0] == "rwr-push"
    ]

    records: list = []
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with obs.span("bench.shared_memory"):
            bench_shm(
                num_nodes, out_degree, worker_counts, repeats, records,
                cheap_schemes,
            )
            if heavy_schemes:
                bench_shm(300, 12, worker_counts, 1, records, heavy_schemes)
            bench_shm_dirty(
                num_nodes // 2,
                4 if args.quick else 8,
                SHM_GATE_WORKERS,
                repeats,
                records,
            )
    counters = {
        key: value
        for key, value in registry.counters_flat().items()
        if key.startswith("shm.")
    }
    leaked = active_segment_names()
    if leaked:
        raise AssertionError(f"bench leaked shared-memory segments: {leaked}")

    serial_gate_active = cores >= SHM_GATE_WORKERS
    payload = {
        "benchmark": "shared_memory",
        "mode": "quick" if args.quick else "full",
        "host_cpus": cores,
        "graph": {"nodes": num_nodes, "out_degree": out_degree},
        "gate": {
            "min_speedup": MIN_SHM_SPEEDUP,
            "workers": SHM_GATE_WORKERS,
            "vs_pickle": "enforced (transport-bound schemes)",
            "vs_serial": (
                "enforced (compute-bound schemes)"
                if serial_gate_active
                else f"skipped ({cores} CPUs < {SHM_GATE_WORKERS})"
            ),
        },
        "results": records,
        "obs_counters": counters,
    }
    output = args.output if args.output and args.stage == "shm" else SHM_OUTPUT
    _write_payload(payload, output)
    for record in records:
        vs_pickle = record.get("speedup_vs_pickle")
        print(
            f"{record['op']}  {record['scheme']:<12}  workers={record['workers']}"
            f"  serial {record['serial_wall_s']:>8.4f}s"
            f"  shm {record['shm_wall_s']:>8.4f}s"
            f"  vs-serial {record['speedup_vs_serial']:>6.2f}x"
            + (f"  vs-pickle {vs_pickle:>6.2f}x" if vs_pickle is not None else "")
        )

    failures = []
    for record in records:
        if record["op"] != "shm_batch_recompute":
            continue
        if record["workers"] != SHM_GATE_WORKERS:
            continue
        gates = record["gates"]
        if "pickle" in gates and record["speedup_vs_pickle"] < MIN_SHM_SPEEDUP:
            failures.append(
                f"{record['scheme']}: vs-pickle {record['speedup_vs_pickle']}x"
            )
        if (
            serial_gate_active
            and "serial" in gates
            and record["speedup_vs_serial"] < MIN_SHM_SPEEDUP
        ):
            failures.append(
                f"{record['scheme']}: vs-serial {record['speedup_vs_serial']}x"
            )
    if failures:
        print(
            f"FAIL: shm speedup below {MIN_SHM_SPEEDUP}x at "
            f"{SHM_GATE_WORKERS} workers for: " + ", ".join(failures)
        )
        return 1
    return 0


def _run_sketch_stage(args) -> int:
    from repro.streaming.tier import DEFAULT_BUDGET_BYTES

    repeats = 1 if args.quick else 2
    budgets = (
        (1 << 14, 1 << 17, DEFAULT_BUDGET_BYTES)
        if args.quick
        else (1 << 16, 1 << 18, 1 << 20, DEFAULT_BUDGET_BYTES, 1 << 22)
    )

    records: list = []
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        with obs.span("bench.sketch_tier"):
            data = sketch_trace(args.quick)
            facts = bench_sketch_accuracy(data, budgets, repeats, records)
            bench_sketch_advance(args.quick, repeats, records)
    counters = {
        key: value
        for key, value in registry.counters_flat().items()
        if key.startswith("sketch.")
    }

    payload = {
        "benchmark": "sketch_tier",
        "mode": "quick" if args.quick else "full",
        "trace": {
            "hosts": len(data.local_hosts),
            "graph_nodes": facts["graph_nodes"],
            "graph_edges": facts["graph_edges"],
            "exact_bytes": facts["exact_bytes"],
        },
        "gate": {
            "default_budget_bytes": DEFAULT_BUDGET_BYTES,
            "min_topk_overlap": MIN_SKETCH_OVERLAP,
            "min_memory_ratio": MIN_SKETCH_MEMORY_RATIO,
            "min_graph_nodes": 100000,
        },
        "results": records,
        "obs_counters": counters,
    }
    output = args.output if args.output and args.stage == "sketch" else SKETCH_OUTPUT
    _write_payload(payload, output)
    for record in records:
        if record["op"] == "sketch_accuracy_vs_memory":
            print(
                f"sketch_accuracy  budget {record['budget_bytes']:>9}"
                f"  used {record['bytes_used']:>9}"
                f"  hot {record['hot_nodes']:>4}  tail {record['tail_nodes']:>5}"
                f"  overlap {record['topk_overlap']:.3f}"
                f"  persist-mae {record['persistence_mae']:.4f}"
                f"  mem-ratio {record['memory_ratio_vs_exact']:>6.2f}x"
            )
        else:
            print(
                f"sketch_advance   {record['windows']} windows x "
                f"{record['window_buckets']} buckets"
                f"  rebuild {record['rebuild_wall_s']:.4f}s"
                f"  merge {record['merge_wall_s']:.4f}s"
                f"  speedup {record['speedup_vs_rebuild']:.2f}x"
            )

    if args.quick:
        return 0
    failures = []
    default_row = facts["default_row"]
    if facts["graph_nodes"] < 100000:
        failures.append(
            f"trace too small for the memory gate: {facts['graph_nodes']} "
            f"graph nodes < 100000"
        )
    if default_row is None:
        failures.append("default budget missing from the curve")
    else:
        if default_row["topk_overlap"] < MIN_SKETCH_OVERLAP:
            failures.append(
                f"top-k overlap {default_row['topk_overlap']} < "
                f"{MIN_SKETCH_OVERLAP} at the default budget"
            )
        if default_row["memory_ratio_vs_exact"] < MIN_SKETCH_MEMORY_RATIO:
            failures.append(
                f"memory ratio {default_row['memory_ratio_vs_exact']}x < "
                f"{MIN_SKETCH_MEMORY_RATIO}x at the default budget"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


def _run_service_slo_stage(args) -> int:
    from repro.obs.digest import (
        EXPORT_QUANTILES,
        merge_digest_states,
        quantile_from_state,
    )
    from repro.service import (
        LoadGenerator,
        LoadProfile,
        ServiceConfig,
        SignatureService,
        exact_quantile,
    )

    if args.quick:
        config = ServiceConfig(num_shards=2, window_records=64)
        profile = LoadProfile(requests=200, warmup_records=256, seed=0)
    else:
        config = ServiceConfig(num_shards=4, window_records=128)
        profile = LoadProfile(requests=2000, warmup_records=1024, seed=0)

    service = SignatureService(config)
    failures = []
    try:
        report = LoadGenerator(service, profile).run()
        summary = report.endpoint_summary()

        # ------------------------------------------------------------------
        # Digest accuracy gate: replay each endpoint's exact measured
        # latencies through a fresh digest and demand every exported
        # quantile lands within the advertised relative accuracy of the
        # true order statistic.
        alpha = config.digest_relative_accuracy
        digest_checks = []
        for kind, values in sorted(report.latencies.items()):
            digest = obs.LatencyDigest(alpha)
            digest.observe_many(values)
            for q in EXPORT_QUANTILES:
                exact = exact_quantile(values, q)
                estimate = digest.quantile(q)
                rel_error = abs(estimate - exact) / exact if exact else 0.0
                digest_checks.append(
                    {
                        "endpoint": kind,
                        "quantile": q,
                        "exact_s": exact,
                        "digest_s": estimate,
                        "rel_error": rel_error,
                    }
                )
                if rel_error > alpha + DIGEST_ERROR_SLOP:
                    failures.append(
                        f"digest p{int(q * 100)} for {kind} off by "
                        f"{rel_error:.4f} > alpha {alpha}"
                    )

        # ------------------------------------------------------------------
        # The service's own merged view: per-endpoint quantiles from the
        # frontend digests, plus the cross-shard fold of the per-shard
        # breaker digests (merged exactly like counters).
        service_view = {}
        breaker_states = []
        for name, labels, state in report.snapshot.get("digests", []):
            if name == "service.latency_s":
                service_view[labels.get("endpoint", "?")] = {
                    f"p{int(q * 100)}_s": quantile_from_state(state, q)
                    for q in EXPORT_QUANTILES
                }
            elif name == "breaker.latency_s" and labels.get("outcome") == "success":
                breaker_states.append(state)
        cross_shard = merge_digest_states(breaker_states)
        cross_shard_quantiles = {
            f"p{int(q * 100)}_s": cross_shard.quantile(q) for q in EXPORT_QUANTILES
        }
        if cross_shard.count == 0:
            failures.append("no cross-shard breaker latency samples to merge")

        # ------------------------------------------------------------------
        # SLO verdicts must exist and carry burn rates.
        objectives = report.slo_report.get("objectives", [])
        if not objectives:
            failures.append("/slo returned no objectives")
        for objective in objectives:
            if "verdict" not in objective or "burn_rate" not in objective:
                failures.append(
                    f"objective {objective.get('name')} missing verdict/burn_rate"
                )

        # ------------------------------------------------------------------
        # Trace round-trip: a real /similar scatter-gather must come back
        # from /trace/<id> as a frontend -> shard span tree.
        status, headers, _body = service.respond("GET", "/similar/h1?k=3")
        trace_id = headers.get("X-Trace-Id", "")
        t_status, _t_headers, t_body = service.respond("GET", f"/trace/{trace_id}")
        trace_check = {"trace_id": trace_id, "status": t_status, "spans": None}
        if t_status != 200:
            failures.append(f"/trace/{trace_id} returned {t_status}")
        else:
            trace = json.loads(t_body)
            spans = trace.get("spans") or {}
            child_names = {c["name"] for c in spans.get("children", [])}
            trace_check["spans"] = spans
            if spans.get("name") != "service.request":
                failures.append("trace root span is not service.request")
            if status == 200 and "similar.gather" not in child_names:
                failures.append(
                    f"similar trace has no shard gather spans: {child_names}"
                )
    finally:
        service.close()

    payload = {
        "benchmark": "service_slo",
        "mode": "quick" if args.quick else "full",
        "config": {
            "num_shards": config.num_shards,
            "window_records": config.window_records,
            "digest_relative_accuracy": config.digest_relative_accuracy,
            "slo_similar_p99_s": config.slo_similar_p99_s,
            "slo_availability": config.slo_availability,
        },
        "profile": profile.to_dict(),
        "duration_s": report.duration_s,
        "endpoints": summary,
        "digest_checks": digest_checks,
        "cross_shard_breaker_latency": {
            "shards_merged": len(breaker_states),
            "count": cross_shard.count,
            **cross_shard_quantiles,
        },
        "slo": report.slo_report,
        "sample_traces": dict(report.sample_traces),
        "trace_roundtrip": trace_check,
        "gate": {
            "max_digest_rel_error": config.digest_relative_accuracy
            + DIGEST_ERROR_SLOP,
        },
        "failures": failures,
    }
    output = (
        args.output if args.output and args.stage == "service_slo"
        else SERVICE_SLO_OUTPUT
    )
    _write_payload(payload, output)

    for kind, entry in summary.items():
        print(
            f"service_slo  {kind:>9}  n {entry['count']:>5}"
            f"  p50 {entry['p50_s'] * 1e3:7.3f}ms"
            f"  p99 {entry['p99_s'] * 1e3:7.3f}ms"
            f"  ok {entry['ok']}/{entry['count']}"
        )
    for objective in objectives:
        print(
            f"service_slo  slo:{objective['name']:<14}"
            f" verdict {objective['verdict']}"
            f"  burn {objective['burn_rate']:.3f}"
        )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


def _history_population(num_windows: int, owners_per_window: int, seed: int):
    """Synthetic per-window signature maps with planted exact duplicates.

    Owner ``dup-of-<i>`` in the final window carries a byte-identical
    copy of ``owner-<i>``'s signature — the masquerade the indexed query
    must surface at distance 0.
    """
    rng = random.Random(seed)
    universe = [f"svc-{i:04d}" for i in range(512)]
    windows = []
    duplicates = []
    for window in range(num_windows):
        signatures = {}
        for i in range(owners_per_window):
            owner = f"owner-{window}-{i:06d}"
            entries = {
                dst: 1.0 + rng.random() * 4.0
                for dst in rng.sample(universe, 8)
            }
            signatures[owner] = Signature(owner, entries)
        if window == num_windows - 1:
            originals = sorted(signatures)[:8]
            for original in originals:
                dup = f"dup-of-{original}"
                signatures[dup] = Signature(
                    dup, dict(signatures[original].entries)
                )
                duplicates.append((original, dup))
        windows.append((window, signatures))
    return windows, duplicates


def _run_history_stage(args) -> int:
    import tempfile

    from repro.store import HistoryStore

    num_windows = 4 if args.quick else 10
    owners_per_window = 500 if args.quick else 10_000
    query_count = 8 if args.quick else 24
    k = 5

    windows, duplicates = _history_population(num_windows, owners_per_window, 41)
    failures: list = []
    with tempfile.TemporaryDirectory() as tmp:
        store = HistoryStore(Path(tmp) / "history")
        append_started = time.perf_counter()
        for window, signatures in windows:
            store.append([(window, signatures)])
        append_wall = time.perf_counter() - append_started
        total_rows = sum(record.rows for record in store.segment_records())
        total_bytes = sum(record.nbytes for record in store.segment_records())
        last = store.max_window()
        if not args.quick and total_rows < HISTORY_GATE_ROWS:
            failures.append(
                f"population too small for the gate: {total_rows} rows "
                f"< {HISTORY_GATE_ROWS}"
            )

        # Queries: every planted duplicate's original, padded with ordinary
        # owners so timings cover the non-matching case too.
        last_signatures = dict(windows[-1][1])
        query_owners = [original for original, _ in duplicates]
        for owner in sorted(last_signatures):
            if len(query_owners) >= query_count:
                break
            if not owner.startswith("dup-of-"):
                query_owners.append(owner)
        queries = [last_signatures[owner] for owner in query_owners]

        def run_queries(exhaustive: bool):
            return [
                [
                    (match.owner, match.distance)
                    for match in store.query(
                        query, last, k=k, exhaustive=exhaustive
                    )
                ]
                for query in queries
            ]

        indexed_wall, indexed = timed(lambda: run_queries(False))
        brute_wall, brute = timed(lambda: run_queries(True))
        speedup = brute_wall / indexed_wall if indexed_wall > 0 else float("inf")

        # Correctness: both paths must put every planted duplicate (and the
        # query's own row) at distance 0, in identical order.
        by_owner = dict(zip(query_owners, zip(indexed, brute)))
        for original, dup in duplicates:
            idx_hits, brute_hits = by_owner[original]
            for label, hits in (("indexed", idx_hits), ("brute", brute_hits)):
                zero = {owner for owner, distance in hits if distance == 0.0}
                if not {original, dup} <= zero:
                    failures.append(
                        f"{label} query for {original} missed its planted "
                        f"duplicate at distance 0: {hits[:3]}"
                    )
        for owner, (idx_hits, brute_hits) in by_owner.items():
            if idx_hits and brute_hits and idx_hits[0] != brute_hits[0]:
                failures.append(
                    f"top hit disagrees for {owner}: "
                    f"indexed {idx_hits[0]} vs brute {brute_hits[0]}"
                )

        if not args.quick and speedup < MIN_HISTORY_INDEX_SPEEDUP:
            failures.append(
                f"indexed speedup {speedup:.2f}x below the "
                f"{MIN_HISTORY_INDEX_SPEEDUP:.1f}x gate at {total_rows} rows"
            )

        # Compaction must be query-invisible: supersede the last two
        # windows with byte-identical content (appending window m drops
        # every recorded window >= m), compact, and re-check both paths.
        redo = num_windows - 2
        store.append(
            [(redo, dict(windows[redo][1])), (last, last_signatures)]
        )
        before_compact = run_queries(False)
        removed = store.compact()
        after_compact = run_queries(False)
        if before_compact != after_compact:
            failures.append("indexed query answers changed across compact()")
        if run_queries(True) != brute:
            failures.append("brute-force answers changed across compact()")

        trajectory_probe = query_owners[0]
        trajectory_wall, trajectory = timed(
            lambda: store.trajectory(trajectory_probe)
        )

    payload = {
        "benchmark": "history_store",
        "mode": "quick" if args.quick else "full",
        "population": {
            "windows": num_windows,
            "owners_per_window": owners_per_window,
            "rows": total_rows,
            "bytes": total_bytes,
            "planted_duplicates": len(duplicates),
            "append_wall_s": append_wall,
        },
        "query": {
            "count": len(queries),
            "k": k,
            "window": last,
            "indexed_wall_s": indexed_wall,
            "brute_wall_s": brute_wall,
            "speedup": speedup,
        },
        "compaction": {
            "segments_removed": len(removed),
            "query_invisible": before_compact == after_compact,
        },
        "trajectory": {
            "owner": trajectory_probe,
            "points": len(trajectory),
            "wall_s": trajectory_wall,
        },
        "gate": {
            "min_speedup": MIN_HISTORY_INDEX_SPEEDUP,
            "min_rows": HISTORY_GATE_ROWS,
            "enforced": not args.quick,
        },
        "failures": failures,
    }
    output = (
        args.output if args.output and args.stage == "history" else HISTORY_OUTPUT
    )
    _write_payload(payload, output)

    print(
        f"history_store  rows {total_rows:>7}"
        f"  indexed {indexed_wall:>8.4f}s"
        f"  brute {brute_wall:>8.4f}s"
        f"  speedup {speedup:>7.2f}x"
        f"  compact-invisible {before_compact == after_compact}"
    )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small windows, agreement checks only",
    )
    parser.add_argument(
        "--stage",
        choices=(
            "kernels",
            "incremental",
            "shm",
            "sketch",
            "service_slo",
            "history",
            "all",
        ),
        default="kernels",
        help="which benchmark stage to run (default: kernels)",
    )
    parser.add_argument("--n", type=int, default=2000, help="window size (hosts)")
    parser.add_argument(
        "--k",
        type=int,
        default=10,
        help="signature length (default matches the experiments' NETWORK_K)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (single-stage runs only; defaults per stage)",
    )
    parser.add_argument(
        "--obs-out",
        type=Path,
        default=None,
        help="collect kernel metrics/spans during the bench run and write "
        "the repro.obs JSON payload here",
    )
    args = parser.parse_args(argv)

    exit_code = 0
    if args.stage in ("kernels", "all"):
        exit_code |= _run_kernels_stage(args)
    if args.stage in ("incremental", "all"):
        exit_code |= _run_incremental_stage(args)
    if args.stage in ("shm", "all"):
        exit_code |= _run_shm_stage(args)
    if args.stage in ("sketch", "all"):
        exit_code |= _run_sketch_stage(args)
    if args.stage in ("service_slo", "all"):
        exit_code |= _run_service_slo_stage(args)
    if args.stage in ("history", "all"):
        exit_code |= _run_history_stage(args)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
