#!/usr/bin/env python
"""Perf regression harness: scalar vs. batch distance kernels.

Times the vectorized kernels in :mod:`repro.core.packed` against the
scalar fallback loops *through the same call sites* (the scalar side runs
under :func:`repro.core.packed.batch_disabled`), asserts numerical
agreement, and writes a machine-readable record to
``benchmarks/perf/BENCH_distance_kernels.json``.

Benchmarked operations:

- ``uniqueness_all_pairs``: all-pairs uniqueness over a synthetic window
  (the acceptance gate: >= 10x at n=2000 for every distance)
- ``cross_identification``: the n x n identity score matrix between two
  consecutive windows (the fig2/fig3 inner loop)
- ``fig1_end_to_end`` / ``fig3_end_to_end``: full experiment drivers at
  small scale, serial vs. batch

Usage::

    python tools/bench.py                 # full run, n=2000 windows
    python tools/bench.py --quick         # CI smoke: small n, agreement only
    python tools/bench.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import obs
from repro.core.distances import available_distances
from repro.core.packed import SignaturePack, batch_disabled, cross_matrix
from repro.core.properties import uniqueness_values
from repro.core.signature import Signature

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "perf" / "BENCH_distance_kernels.json"
AGREEMENT_TOLERANCE = 1e-9


def synthetic_window(count: int, k: int, seed: int, churn: float = 0.0) -> dict:
    """A seeded window of ``count`` signatures with ``k`` entries each.

    Members are drawn from a shared vocabulary sized for realistic overlap
    (a few percent of pairs share members, like hosts sharing peers).
    ``churn`` resamples that fraction of each signature's members — use it
    to derive a correlated "next window" from the same seed.
    """
    rng = random.Random(seed)
    vocab = [f"peer{i}" for i in range(max(4 * k, count // 2))]
    signatures = {}
    for i in range(count):
        owner = f"host{i}"
        members = rng.sample(vocab, k)
        if churn:
            fresh = rng.sample(vocab, k)
            members = [
                fresh[j] if rng.random() < churn else member
                for j, member in enumerate(members)
            ]
        signatures[owner] = Signature(
            owner, {member: rng.uniform(0.5, 20.0) for member in set(members)}
        )
    return signatures


def timed(function, repeats: int = 1):
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def check_agreement(op: str, distance: str, batch_values, scalar_values) -> float:
    batch_array = np.asarray(batch_values, dtype=np.float64)
    scalar_array = np.asarray(scalar_values, dtype=np.float64)
    worst = float(np.abs(batch_array - scalar_array).max()) if batch_array.size else 0.0
    if worst > AGREEMENT_TOLERANCE:
        raise AssertionError(
            f"{op}/{distance}: batch and scalar disagree by {worst:.3e} "
            f"(tolerance {AGREEMENT_TOLERANCE:.0e})"
        )
    return worst


def bench_uniqueness(n: int, k: int, repeats: int, records: list) -> None:
    """All-pairs uniqueness: the paper's O(n^2) property measurement."""
    signatures = synthetic_window(n, k, seed=7)
    nodes = sorted(signatures)
    for distance in available_distances():
        batch_wall, batch_result = timed(
            lambda: uniqueness_values(signatures, distance, nodes=nodes),
            repeats=repeats,
        )
        with batch_disabled():
            scalar_wall, scalar_result = timed(
                lambda: uniqueness_values(signatures, distance, nodes=nodes)
            )
        worst = check_agreement(
            "uniqueness_all_pairs", distance, batch_result, scalar_result
        )
        records.append(
            {
                "op": "uniqueness_all_pairs",
                "distance": distance,
                "n": n,
                "pairs": n * (n - 1) // 2,
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
                "max_abs_diff": worst,
            }
        )


def bench_cross_identification(n: int, k: int, repeats: int, records: list) -> None:
    """The n x n score matrix between two windows (fig2/fig3 inner loop)."""
    signatures_now = synthetic_window(n, k, seed=7)
    signatures_next = synthetic_window(n, k, seed=7, churn=0.3)
    order = sorted(signatures_now)
    pack_now = SignaturePack.from_signatures(signatures_now, order=order)
    pack_next = SignaturePack.from_signatures(signatures_next, order=order)
    for distance in available_distances():
        batch_wall, batch_matrix = timed(
            lambda: cross_matrix(pack_now, pack_next, distance), repeats=repeats
        )
        with batch_disabled():
            scalar_wall, scalar_matrix = timed(
                lambda: cross_matrix(pack_now, pack_next, distance)
            )
        worst = check_agreement(
            "cross_identification", distance, batch_matrix, scalar_matrix
        )
        records.append(
            {
                "op": "cross_identification",
                "distance": distance,
                "n": n,
                "pairs": n * n,
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
                "max_abs_diff": worst,
            }
        )


def bench_experiments(records: list) -> None:
    """End-to-end fig1/fig3 at small scale, scalar vs. batch paths."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.fig1_properties import run_fig1
    from repro.experiments.fig3_auc import run_fig3

    config = ExperimentConfig(scale="small")
    for op, runner in [
        ("fig1_end_to_end", lambda: run_fig1("network", config)),
        ("fig3_end_to_end", lambda: run_fig3("network", config)),
    ]:
        batch_wall, _ = timed(runner)
        with batch_disabled():
            scalar_wall, _ = timed(runner)
        records.append(
            {
                "op": op,
                "distance": "all",
                "n": "small-scale",
                "scalar_wall_s": round(scalar_wall, 6),
                "batch_wall_s": round(batch_wall, 6),
                "speedup": round(scalar_wall / batch_wall, 2),
            }
        )


def bench_obs_overhead(n: int, k: int, repeats: int, records: list) -> None:
    """Cost of the observability instrumentation on the hot kernel path.

    ``disabled`` times the instrumented kernels under the default no-op
    registry (the zero-overhead contract); ``enabled`` times them under a
    collecting :class:`repro.obs.MetricsRegistry`.
    """
    signatures = synthetic_window(n, k, seed=7)
    nodes = sorted(signatures)

    def run() -> dict:
        return uniqueness_values(signatures, "jaccard", nodes=nodes)

    disabled_wall, _ = timed(run, repeats=repeats)
    registry = obs.MetricsRegistry()

    def run_enabled() -> dict:
        with obs.use_registry(registry):
            return run()

    enabled_wall, _ = timed(run_enabled, repeats=repeats)
    records.append(
        {
            "op": "obs_overhead",
            "distance": "jaccard",
            "n": n,
            "scalar_wall_s": round(enabled_wall, 6),
            "batch_wall_s": round(disabled_wall, 6),
            "speedup": round(enabled_wall / disabled_wall, 2),
            "note": "scalar=collecting registry, batch=no-op registry; "
            "speedup column is the enabled/disabled overhead ratio",
        }
    )


def warm_up() -> None:
    """Prime BLAS threads / page caches so first-call cost is not timed."""
    signatures = synthetic_window(64, 10, seed=1)
    pack = SignaturePack.from_signatures(signatures)
    for distance in available_distances():
        cross_matrix(pack, pack, distance)
        uniqueness_values(signatures, distance)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small windows, agreement checks only",
    )
    parser.add_argument("--n", type=int, default=2000, help="window size (hosts)")
    parser.add_argument(
        "--k",
        type=int,
        default=10,
        help="signature length (default matches the experiments' NETWORK_K)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path"
    )
    parser.add_argument(
        "--obs-out",
        type=Path,
        default=None,
        help="collect kernel metrics/spans during the bench run and write "
        "the repro.obs JSON payload here",
    )
    args = parser.parse_args(argv)

    n = 200 if args.quick else args.n
    repeats = 1 if args.quick else 3

    warm_up()
    records: list = []
    bench_registry = obs.MetricsRegistry() if args.obs_out else obs.NULL_REGISTRY
    with obs.use_registry(bench_registry):
        with obs.span("bench.distance_kernels"):
            bench_uniqueness(n, args.k, repeats, records)
            bench_cross_identification(min(n, 1000), args.k, repeats, records)
            if not args.quick:
                bench_experiments(records)
    bench_obs_overhead(n, args.k, repeats, records)
    if args.obs_out:
        obs.write_json(
            args.obs_out,
            bench_registry.snapshot(),
            meta={"command": "bench", "n": n, "k": args.k},
        )
        print(f"observability payload written to {args.obs_out}")

    payload = {
        "benchmark": "distance_kernels",
        "mode": "quick" if args.quick else "full",
        "window": {"n": n, "k": args.k},
        "agreement_tolerance": AGREEMENT_TOLERANCE,
        "results": records,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    # Mirror the record to the repo root so the cross-PR perf trajectory is
    # greppable without digging into benchmarks/ (BENCH_*.json is the
    # per-benchmark convention; diff it across commits).
    root_output = REPO_ROOT / f"BENCH_{payload['benchmark']}.json"
    if root_output != args.output:
        root_output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"mirrored bench record to {root_output}")

    width = max(len(record["op"]) for record in records)
    for record in records:
        print(
            f"{record['op']:<{width}}  {record['distance']:<8}"
            f"  scalar {record['scalar_wall_s']:>9.4f}s"
            f"  batch {record['batch_wall_s']:>9.4f}s"
            f"  speedup {record['speedup']:>8.2f}x"
        )
    print(f"\nwrote {args.output}")

    gate = [
        record
        for record in records
        if record["op"] == "uniqueness_all_pairs" and record["speedup"] < 10
    ]
    if not args.quick and gate:
        print(
            "FAIL: speedup below 10x for: "
            + ", ".join(record["distance"] for record in gate)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
